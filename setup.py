"""Shim for editable installs on environments without the wheel package.

All real metadata lives in pyproject.toml; this file only lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path when PEP 660 editable wheels are
unavailable offline.
"""

from setuptools import setup

setup()
