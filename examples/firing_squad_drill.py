"""Firing squad drill: simultaneous action from scattered stimuli.

The firing squad problem (named in the paper's introduction) asks a
Byzantine-tolerant system to act *in unison*: GO stimuli reach
different nodes in different rounds — or only some nodes — yet every
correct node must fire in the very same round, and never without a
genuine stimulus.  Think coordinated failover: individual replicas
notice the primary is gone at different times, but the switchover must
be one atomic instant.

Run:  python examples/firing_squad_drill.py
"""

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.agreement.firing_squad import fire_deadline, firing_squad_factory
from repro.analysis.report import format_table
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom


def main() -> None:
    config = SystemConfig(n=7, t=2)
    rows = []

    scenarios = [
        (
            "staggered GOs (rounds 1..3), silent faults",
            {1: 1, 2: 2, 3: 3, 4: 1, 5: 2, 6: BOTTOM, 7: BOTTOM},
            SilentAdversary([6, 7]),
        ),
        (
            "everyone gets GO at round 2, equivocating faults",
            {p: 2 for p in config.process_ids},
            EquivocatingAdversary([3, 6], 0, 1),
        ),
        (
            "no stimulus at all, noisy faults (must NOT fire)",
            {p: BOTTOM for p in config.process_ids},
            EquivocatingAdversary([3, 6], 0, 1),
        ),
    ]

    for description, inputs, adversary in scenarios:
        result = run_protocol(
            firing_squad_factory(),
            config,
            inputs,
            adversary=adversary,
            run_full_rounds=10,
        )
        fire_rounds = {
            r
            for p, r in result.decision_rounds.items()
            if result.decisions[p] == "FIRE"
        }
        fired = bool(fire_rounds)
        rows.append(
            {
                "scenario": description,
                "fired": "yes" if fired else "no",
                "fire round": fire_rounds.pop() if len(fire_rounds) == 1 else (
                    "SPLIT!" if fire_rounds else "-"
                ),
            }
        )

    print(format_table(rows, title="Byzantine firing squad (n=7, t=2)"))
    print()
    go_round = 3
    print(
        f"Guarantee: unanimous GO by round {go_round} fires by round "
        f"{fire_deadline(go_round, config.t)}; firing is always "
        f"simultaneous, and silence is guaranteed when no correct node "
        f"was stimulated."
    )


if __name__ == "__main__":
    main()
