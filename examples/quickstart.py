"""Quickstart: communication-efficient Byzantine agreement.

Runs Corollary 10's protocol — the compact full-information protocol
driving the classic EIG decision rule — on a 7-processor system with 2
Byzantine processors, and compares it with the exponential baseline it
simulates.

Run:  python examples/quickstart.py
"""

from repro.adversary import EquivocatingAdversary
from repro.agreement.eig_agreement import run_eig_agreement
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.types import SystemConfig


def main() -> None:
    # A system of n = 7 processors tolerating t = 2 Byzantine faults
    # (the tight bound n = 3t + 1).
    config = SystemConfig(n=7, t=2)

    # Each processor starts with a binary input.
    inputs = {1: 1, 2: 0, 3: 1, 4: 0, 5: 1, 6: 0, 7: 1}

    # Processors 3 and 6 are Byzantine: they tell half the system "0"
    # and the other half "1".
    adversary = EquivocatingAdversary([3, 6], value_a=0, value_b=1)

    print("=== compact protocol (Corollary 10), eps = 1 -> k = 2 ===")
    result = run_compact_byzantine_agreement(
        config,
        inputs,
        value_alphabet=[0, 1],
        epsilon=1.0,
        adversary=adversary,
    )
    for process_id in sorted(result.decisions):
        print(
            f"  processor {process_id}: decided "
            f"{result.decisions[process_id]} in round "
            f"{result.decision_rounds[process_id]}"
        )
    print(f"  rounds: {result.rounds}  (guarantee: (1+eps)(t+1) = 6)")
    print(f"  message bits: {result.metrics.total_bits}")

    print()
    print("=== exponential baseline (Lamport et al.), t + 1 rounds ===")
    baseline = run_eig_agreement(
        config,
        inputs,
        [0, 1],
        adversary=EquivocatingAdversary([3, 6], value_a=0, value_b=1),
    )
    print(f"  decisions: {sorted(set(baseline.decisions.values()))}")
    print(f"  rounds: {baseline.rounds}")
    print(f"  message bits: {baseline.metrics.total_bits}")

    print()
    print(
        "Both decide identically; at this toy size the exponential\n"
        "protocol is still cheap — run examples/epsilon_tradeoff.py to\n"
        "see where the curves cross."
    )


if __name__ == "__main__":
    main()
