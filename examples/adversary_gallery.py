"""A gallery of Byzantine strategies versus the compact protocol.

The paper's proofs quantify over *all* faulty behaviours; this example
makes that concrete by throwing every adversary in the library — from
plain silence to full collusion with well-formed but mutually
inconsistent messages — at one run of the compact Byzantine agreement
protocol, and showing agreement and validity survive each of them.

Run:  python examples/adversary_gallery.py
"""

from repro.adversary import (
    CollusionAdversary,
    EquivocatingAdversary,
    MalformedArrayAdversary,
    RandomGarbageAdversary,
    SilentAdversary,
    StrategyTable,
    VoteSplitterAdversary,
)
from repro.analysis.report import format_table
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.types import SystemConfig


def gallery(faulty):
    return [
        ("silent", SilentAdversary(faulty)),
        ("random garbage", RandomGarbageAdversary(faulty)),
        ("equivocator", EquivocatingAdversary(faulty, 0, 1)),
        ("vote splitter", VoteSplitterAdversary(faulty)),
        ("malformed arrays", MalformedArrayAdversary(faulty)),
        ("collusion (mimicry)", CollusionAdversary(faulty)),
        (
            "mixed table",
            StrategyTable(
                {
                    faulty[0]: VoteSplitterAdversary([]),
                    faulty[1]: MalformedArrayAdversary([]),
                }
            ),
        ),
    ]


def main() -> None:
    config = SystemConfig(n=7, t=2)
    inputs = {1: 1, 2: 0, 3: 1, 4: 0, 5: 1, 6: 0, 7: 1}
    faulty = [3, 6]

    rows = []
    for name, adversary in gallery(faulty):
        result = run_compact_byzantine_agreement(
            config,
            inputs,
            value_alphabet=[0, 1],
            k=1,
            adversary=adversary,
            seed=13,
        )
        decisions = sorted(result.decided_values())
        rows.append(
            {
                "adversary": name,
                "agreement": "yes" if len(decisions) == 1 else "NO!",
                "decision": decisions[0] if len(decisions) == 1 else decisions,
                "rounds": result.rounds,
                "bits": result.metrics.total_bits,
            }
        )
        assert len(decisions) == 1

    print(
        format_table(
            rows,
            title=(
                "compact Byzantine agreement (n=7, t=2, k=1) vs the "
                "adversary gallery — faulty = {3, 6}"
            ),
        )
    )
    print()
    print("Agreement held against every strategy.")


if __name__ == "__main__":
    main()
