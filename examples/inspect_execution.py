"""Look inside one adversarial execution, round by round.

Runs a small compact Byzantine agreement with a two-faced adversary
and renders the full message matrix for every round, then the decision
timeline — the view you want when studying how the CORE compresses,
when avalanche batches fire, and what the adversary actually injected.

Run:  python examples/inspect_execution.py
"""

from repro.adversary import EquivocatingAdversary
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.runtime.render import render_execution
from repro.types import SystemConfig


def main() -> None:
    config = SystemConfig(n=4, t=1)
    inputs = {1: 1, 2: 0, 3: 1, 4: 1}

    result = run_compact_byzantine_agreement(
        config,
        inputs,
        value_alphabet=[0, 1],
        k=2,
        adversary=EquivocatingAdversary([4], 0, 1),
        record_trace=True,
    )

    print(
        "compact Byzantine agreement, n=4 t=1 k=2; processor 4 is a\n"
        "two-faced equivocator (marked 'x').  Cells summarise payload\n"
        "shapes: 'core:…' is the compressed state, 'votes:…' counts\n"
        "active avalanche batches.\n"
    )
    print(render_execution(result))
    print()
    print(f"total message bits (correct senders): {result.metrics.total_bits}")
    print(
        "\nReading guide: round 1 exchanges bare inputs; round 2 builds\n"
        "depth-2 COREs; round 3 re-broadcasts the block's CORE; round 4\n"
        "carries only avalanche votes (no main component); the decision\n"
        "lands at the first progress round where t + 1 = 2 simulated\n"
        "rounds are complete."
    )


if __name__ == "__main__":
    main()
