"""Transform *your own* protocol into the canonical form.

The paper's headline result is not one protocol but a compiler: give
it any synchronous consensus protocol as a system of automata
(Section 3.1) and it emits a communication-efficient protocol with the
same correctness guarantees (Theorem 1).  This example writes a small
custom protocol — "agree on the maximum input any correct processor
can prove was seen by everyone" flavoured as repeated max-gossip with
a majority decision — and runs it through the transformation.

Run:  python examples/transform_your_protocol.py
"""

from repro.adversary import EquivocatingAdversary
from repro.core.automaton import AutomatonProtocol, automaton_factory
from repro.core.transform import canonical_form, full_information_form
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig


class IteratedMedianProtocol(AutomatonProtocol):
    """Toy consensus: t + 1 rounds of exchanging values, each round
    moving to the median of received values; decide the final value.

    (Median gossip is not a correct Byzantine agreement protocol in
    general — it is here to show the *mechanics* of transforming an
    arbitrary automaton protocol, not to add a new agreement result;
    use :class:`repro.agreement.eig_agreement.ExponentialAgreementAutomaton`
    when you need the real thing.)
    """

    def message(self, sender, receiver, state):
        return state if not isinstance(state, tuple) else state[1]

    def transition(self, process_id, messages):
        legal = sorted(
            message for message in messages if message in self.input_values
        )
        median = legal[len(legal) // 2] if legal else self.input_values[0]
        previous_round = 0
        return (previous_round + 1, median)

    def decision(self, process_id, state):
        if isinstance(state, tuple):
            return state[1]
        return BOTTOM

    @property
    def rounds_to_decide(self):
        return self.config.t + 1


def main() -> None:
    config = SystemConfig(n=7, t=2)
    protocol = IteratedMedianProtocol(config, input_values=list(range(10)))
    inputs = {1: 3, 2: 9, 3: 1, 4: 7, 5: 5, 6: 2, 7: 8}

    print("=== the source protocol, run natively ===")
    native = run_protocol(
        automaton_factory(protocol), config, inputs, max_rounds=config.t + 2
    )
    print(f"  decisions: {dict(sorted(native.decisions.items()))}")
    print(f"  rounds: {native.rounds}")

    print()
    print("=== Theorem 2: the full-information form ===")
    fullinfo = full_information_form(protocol).run(inputs)
    print(f"  decisions: {dict(sorted(fullinfo.decisions.items()))}")
    print(f"  rounds: {fullinfo.rounds}, bits: {fullinfo.metrics.total_bits}")

    print()
    print("=== Theorem 9: the compact canonical form (eps = 1) ===")
    form = canonical_form(protocol, epsilon=1.0)
    compact = form.run(
        inputs, adversary=EquivocatingAdversary([3, 6], 1, 9)
    )
    print(f"  k = {form.k}, deadline = {form.deadline} rounds")
    print(f"  decisions: {dict(sorted(compact.decisions.items()))}")
    print(f"  rounds: {compact.rounds}, bits: {compact.metrics.total_bits}")

    print()
    print(
        "Fault-free, all three agree decision-for-decision (the\n"
        "simulations are exact); under faults the canonical form keeps\n"
        "whatever correctness predicate the source protocol satisfied."
    )
    assert native.decisions == fullinfo.decisions


if __name__ == "__main__":
    main()
