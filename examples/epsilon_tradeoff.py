"""The time/communication tradeoff knob (Corollary 10).

The transformation takes one numerical parameter.  Accept a round
inflation of ``1 + eps`` and you get messages of size ``O(n^k log|V|)``
with ``k = ceil(2/eps)``: more patience, smaller k, bigger messages —
less patience, more rounds saved, and the message polynomial's degree
climbs.  This example sweeps eps on a live system and prints measured
rounds and bits next to the paper's guarantees, plus the model-level
crossover against the exponential baseline.

Run:  python examples/epsilon_tradeoff.py
"""

from repro.adversary import VoteSplitterAdversary
from repro.analysis.complexity import compact_bits_estimate, eig_total_bits
from repro.analysis.report import format_table
from repro.analysis.tradeoff import epsilon_table
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.types import SystemConfig


def main() -> None:
    config = SystemConfig(n=7, t=2)
    inputs = {p: p % 2 for p in config.process_ids}

    rows = []
    for epsilon in (2.0, 1.0, 0.5):
        result = run_compact_byzantine_agreement(
            config,
            inputs,
            value_alphabet=[0, 1],
            epsilon=epsilon,
            adversary=VoteSplitterAdversary([2, 5]),
        )
        rows.append(
            {
                "eps": epsilon,
                "rounds (measured)": result.rounds,
                "guarantee": (1 + epsilon) * (config.t + 1),
                "bits (measured)": result.metrics.total_bits,
                "decision": sorted(result.decided_values())[0],
            }
        )
    print(format_table(rows, title="measured sweep on n=7, t=2, vote-splitter faults"))

    print()
    print(format_table(epsilon_table((2.0, 1.0, 0.5, 0.25), t=6),
                       title="analytic tradeoff at t = 6"))

    print()
    crossover_rows = []
    for t in range(1, 8):
        n = 3 * t + 1
        eig = eig_total_bits(n, t, 2)
        compact = compact_bits_estimate(n, t, 1, 2)
        crossover_rows.append(
            {
                "t": t,
                "n": n,
                "EIG bits (exact model)": eig,
                "compact bits (O-bound, c=1)": compact,
                "winner": "compact" if compact < eig else "EIG",
            }
        )
    print(format_table(crossover_rows,
                       title="where exponential communication loses"))


if __name__ == "__main__":
    main()
