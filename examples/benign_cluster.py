"""Crash-tolerant configuration agreement with zero round overhead.

A story-shaped demo of the benign-model variant (Section 1's claim):
a 7-node cluster must agree on which configuration epoch to activate.
Nodes only ever fail by crashing — possibly mid-broadcast, reaching
just a prefix of their peers — so the compact protocol sheds both
overhead rounds and decides in exactly ``t + 1`` rounds, the same as
an uncompressed protocol, while keeping every message polynomial.

Run:  python examples/benign_cluster.py
"""

from repro.adversary.crash import CrashAdversary
from repro.adversary.omission import OmissionAdversary
from repro.analysis.report import format_table
from repro.compact.crash_variant import crash_compact_factory, crash_sizer
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

EPOCHS = [40, 41, 42, 43]  # configuration epochs nodes might propose


def main() -> None:
    config = SystemConfig(n=7, t=2)
    # Nodes disagree about the freshest epoch (a lagging replica
    # proposes 40; most have 42; one already saw 43).
    inputs = {1: 42, 2: 40, 3: 42, 4: 43, 5: 42, 6: 41, 7: 42}
    factory = crash_compact_factory(k=2, value_alphabet=EPOCHS, t=config.t)

    rows = []
    scenarios = [
        (
            "node 2 crashes mid-broadcast in round 1, node 6 in round 2",
            CrashAdversary({2: 1, 6: 2}, factory, cut_fraction=0.5),
        ),
        (
            "nodes 3 and 7 drop 40% of their messages (omission)",
            OmissionAdversary([3, 7], factory, drop_probability=0.4),
        ),
        (
            "clean crash of node 4 before it ever speaks",
            CrashAdversary({4: 1}, factory, cut_fraction=0.0),
        ),
    ]
    for description, adversary in scenarios:
        result = run_protocol(
            factory,
            config,
            inputs,
            adversary=adversary,
            max_rounds=config.t + 2,
            sizer=crash_sizer(config, len(EPOCHS)),
            seed=21,
        )
        decision = sorted(result.decided_values())[0]
        rows.append(
            {
                "scenario": description,
                "decision": decision,
                "rounds": result.rounds,
                "t+1": config.t + 1,
                "bits": result.metrics.total_bits,
            }
        )
        assert result.rounds == config.t + 1

    print(format_table(rows, title="benign-model compact agreement (n=7, t=2, k=2)"))
    print()
    print(
        "Every scenario decided in exactly t + 1 = 3 rounds — the paper's\n"
        "'no increase in the number of rounds' for benign fault models —\n"
        "with compressed (depth-capped) messages throughout."
    )


if __name__ == "__main__":
    main()
