"""The README's code blocks must actually run.

Documentation rot is a bug: every ``python`` fenced block in README.md
is extracted and executed in one shared namespace (blocks may build on
earlier ones, as the README's do).
"""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"


def python_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_and_has_code():
    text = README.read_text()
    assert python_blocks(text), "README lost its code examples"


def test_readme_code_blocks_execute(capsys):
    namespace = {}
    for block in python_blocks(README.read_text()):
        exec(compile(block, str(README), "exec"), namespace)  # noqa: S102
    # The quickstart block prints decisions/rounds/bits.
    output = capsys.readouterr().out
    assert output.strip(), "README quickstart produced no output"


def test_readme_mentions_every_package():
    """The architecture section stays in sync with the source tree."""
    text = README.read_text()
    src = pathlib.Path(__file__).parent.parent / "src" / "repro"
    for package in sorted(p.name for p in src.iterdir() if p.is_dir()):
        if package == "__pycache__":
            continue
        assert f"{package}/" in text, f"README omits package {package}/"


def test_examples_headers_in_readme():
    """Every example script is listed in the README's table."""
    text = README.read_text()
    examples = pathlib.Path(__file__).parent.parent / "examples"
    missing = [
        path.name
        for path in sorted(examples.glob("*.py"))
        if path.name not in text
    ]
    # Newer examples may lag the table; at least the core five must be
    # present, and nothing in the table may point nowhere.
    core = {
        "quickstart.py",
        "epsilon_tradeoff.py",
        "transform_your_protocol.py",
        "adversary_gallery.py",
        "benign_cluster.py",
    }
    assert not (core & set(missing)), f"README omits {core & set(missing)}"
    for name in re.findall(r"`(\w+\.py)`", text):
        assert (examples / name).exists(), f"README references missing {name}"
