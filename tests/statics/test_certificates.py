"""The committed certificate catalog stays in sync with the analysis.

``tools/protoflow_certificates.json`` is a build artifact with a
pinned regeneration path (``repro lint --certificates``); this test
re-derives it from the tree + baseline and fails on any drift, so a
protocol edit that changes a verdict must re-commit the catalog.
"""

import json
import pathlib

import pytest

from repro.statics.baseline import Baseline
from repro.statics.flow.certificates import (
    certify_tree,
    is_certified_canonical,
    render_certificates,
)
from repro.statics.runner import default_package_root, find_default_baseline

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
COMMITTED = REPO_ROOT / "tools" / "protoflow_certificates.json"


@pytest.fixture(scope="module")
def regenerated():
    root = default_package_root()
    baseline_path = find_default_baseline(root)
    baseline = (
        Baseline.load(baseline_path)
        if baseline_path is not None
        else Baseline()
    )
    return certify_tree(root, baseline)


def test_committed_catalog_matches_regeneration(regenerated):
    committed = COMMITTED.read_text(encoding="utf-8")
    assert committed == render_certificates(regenerated), (
        "tools/protoflow_certificates.json is stale — regenerate with "
        "`repro lint --certificates tools/protoflow_certificates.json`"
    )


def test_every_catalog_protocol_is_certified_canonical(regenerated):
    open_protocols = [
        key
        for key, entry in regenerated["protocols"].items()
        if not is_certified_canonical(entry)
    ]
    assert open_protocols == []


def test_catalog_covers_the_full_protocol_set(regenerated):
    keys = set(regenerated["protocols"])
    assert len(keys) == 20
    for expected in (
        "repro/agreement/phase_king.py::PhaseKingProcess",
        "repro/agreement/dolev_strong.py::DolevStrongProcess",
        "repro/compact/protocol.py::CompactProcess",
        "repro/fullinfo/protocol.py::FullInformationProcess",
        "repro/avalanche/protocol.py::AvalancheProcess",
    ):
        assert expected in keys


def test_waivers_and_history_bounds_are_recorded_not_hidden(regenerated):
    protocols = regenerated["protocols"]
    dolev = protocols["repro/agreement/dolev_strong.py::DolevStrongProcess"]
    assert dolev["flow"]["verdict"] == "waived"
    assert dolev["flow"]["waived"]  # the outbox-swap drain
    assert dolev["size"]["verdict"] == "history"
    assert dolev["size"]["justified"] is True

    fullinfo = protocols["repro/fullinfo/protocol.py::FullInformationAutomaton"]
    assert fullinfo["taint"]["verdict"] == "waived"
    assert fullinfo["size"]["inferred"] == "history"

    king = protocols["repro/agreement/phase_king.py::PhaseKingProcess"]
    assert king["flow"]["verdict"] == "closed"
    assert king["taint"]["verdict"] == "sanitized"
    assert king["size"]["verdict"] == "bounded"
    assert "_as_bit" in king["taint"]["sanitizers"]


def test_is_certified_canonical_rejects_open_verdicts():
    entry = {
        "flow": {"verdict": "closed"},
        "taint": {"verdict": "open"},
        "size": {"verdict": "bounded"},
    }
    assert not is_certified_canonical(entry)
    entry["taint"]["verdict"] = "waived"
    assert is_certified_canonical(entry)
    entry["size"]["verdict"] = "open"
    assert not is_certified_canonical(entry)


def test_committed_catalog_is_canonical_json():
    committed = COMMITTED.read_text(encoding="utf-8")
    parsed = json.loads(committed)
    assert committed == json.dumps(parsed, indent=2, sort_keys=True) + "\n"
    assert parsed["version"] == 1
