"""The contract pass: fixture-tree violations and real-catalog parsing."""

import pathlib

from repro.statics.contracts import (
    parse_catalog,
    parse_exemptions,
    run_contract_pass,
    tree_factories,
)

FIXTURE_TREE = pathlib.Path(__file__).parent / "fixtures" / "tree"
REAL_INTERFACES = (
    pathlib.Path(__file__).parent.parent.parent
    / "src"
    / "repro"
    / "agreement"
    / "interfaces.py"
)


class TestFixtureTree:
    def test_reports_each_contract_violation(self):
        by_rule = {}
        for finding in run_contract_pass(FIXTURE_TREE):
            by_rule.setdefault(finding.rule, []).append(finding)
        assert {f.symbol for f in by_rule["CON001"]} == {"orphan_factory"}
        assert {f.symbol for f in by_rule["CON002"]} == {"ghost_factory"}
        assert {f.symbol for f in by_rule["CON003"]} == {"registered"}
        assert {f.symbol for f in by_rule["CON004"]} == {"registered"}

    def test_unregistered_factory_points_at_its_module(self):
        (finding,) = [
            f for f in run_contract_pass(FIXTURE_TREE) if f.rule == "CON001"
        ]
        assert finding.path == "tree/agreement/orphan.py"

    def test_catalog_entry_findings_carry_the_entry_line(self):
        con003 = [
            f for f in run_contract_pass(FIXTURE_TREE) if f.rule == "CON003"
        ]
        source = (FIXTURE_TREE / "agreement" / "interfaces.py").read_text()
        entry_line = source.splitlines().index(
            "        ProtocolEntry(  # noqa: F821 - parsed, never run"
        ) + 1
        assert [f.line for f in con003] == [entry_line]


class TestRealCatalogParsing:
    def test_every_entry_is_extracted(self):
        entries = parse_catalog(REAL_INTERFACES.read_text())
        names = {entry.name for entry in entries}
        assert "compact BA (k=1)" in names
        assert "Ben-Or" in names
        assert len(entries) >= 10

    def test_bounds_are_classified(self):
        entries = {
            entry.name: entry
            for entry in parse_catalog(REAL_INTERFACES.read_text())
        }
        assert entries["compact BA (k=1)"].bound == "3t + 1"
        assert entries["Phase Queen"].bound == "4t + 1"
        assert entries["Dolev-Strong (authenticated)"].bound == "2t + 1"

    def test_randomized_and_rounds_flags(self):
        entries = {
            entry.name: entry
            for entry in parse_catalog(REAL_INTERFACES.read_text())
        }
        assert entries["Ben-Or"].randomized
        assert entries["Ben-Or"].rounds_is_none
        assert not entries["compact BA (k=2)"].rounds_is_none

    def test_helper_indirection_resolves_to_factory(self):
        entries = {
            entry.name: entry
            for entry in parse_catalog(REAL_INTERFACES.read_text())
        }
        assert "auth_compact_ba_factory" in entries[
            "compact BA (authenticated, k=1)"
        ].factories

    def test_exemptions_parse(self):
        exemptions = parse_exemptions(REAL_INTERFACES.read_text())
        assert "avalanche_factory" in exemptions
        assert all(reason.strip() for reason in exemptions.values())

    def test_tree_factories_finds_known_modules(self):
        factories = tree_factories(REAL_INTERFACES.parent.parent)
        assert "ben_or_factory" in factories
        assert "compact_ba_factory" in factories
        assert "avalanche_factory" in factories
