"""Protoflow over the seeded non-canonical fixture tree.

Each fixture module under ``fixtures/flowtree/agreement`` deliberately
violates exactly one rule family; these tests pin that every FLOW,
COM, and TAINT rule fires where intended and nowhere else.
"""

import pathlib

import pytest

from repro.statics.flow.lattice import Size
from repro.statics.flow.passes import analyze_tree

FIXTURE_ROOT = pathlib.Path(__file__).parent / "fixtures" / "flowtree"


@pytest.fixture(scope="module")
def analysis():
    return analyze_tree(FIXTURE_ROOT)


def _findings(analysis, rule):
    return [f for f in analysis.findings if f.rule == rule]


def test_flow_fixture_flags_all_three_flow_rules(analysis):
    assert [f.symbol for f in _findings(analysis, "FLOW001")] == [
        "UnclosedProcess.receive"
    ]
    assert [f.symbol for f in _findings(analysis, "FLOW002")] == [
        "UnclosedProcess.outgoing"
    ]
    assert [f.symbol for f in _findings(analysis, "FLOW003")] == [
        "UnclosedProcess.outgoing"
    ]


def test_com_fixture_flags_undeclared_and_underdeclared(analysis):
    com002 = _findings(analysis, "COM002")
    assert [f.symbol for f in com002] == ["ChattyProcess"]
    assert "size interpreter infers" in com002[0].message
    assert [f.symbol for f in _findings(analysis, "COM003")] == [
        "UndeclaredProcess"
    ]


def test_com_fixture_infers_history_for_accumulating_payload(analysis):
    by_name = {r.cls.name: r for r in analysis.reports}
    assert by_name["ChattyProcess"].inferred_bound is Size.HISTORY
    assert by_name["UndeclaredProcess"].inferred_bound is Size.CONSTANT


def test_taint_fixture_flags_decision_payload_and_dead_sanitizer(analysis):
    assert [f.symbol for f in _findings(analysis, "TAINT001")] == [
        "GullibleProcess.receive"
    ]
    assert [f.symbol for f in _findings(analysis, "TAINT002")] == [
        "GullibleProcess.outgoing"
    ]
    taint003 = _findings(analysis, "TAINT003")
    assert len(taint003) == 1
    assert "_missing_check" in taint003[0].message


def test_fixture_tree_has_no_unexpected_findings(analysis):
    rules = sorted({f.rule for f in analysis.findings})
    assert rules == [
        "COM002",
        "COM003",
        "FLOW001",
        "FLOW002",
        "FLOW003",
        "TAINT001",
        "TAINT002",
        "TAINT003",
    ]
    assert len(analysis.findings) == 8


def test_fixture_paths_are_posix_relative(analysis):
    for finding in analysis.findings:
        assert finding.path.startswith("flowtree/agreement/")
        assert "\\" not in finding.path
