"""The purity pass flags every planted violation, at the right place."""

import pathlib

from repro.statics.purity import run_purity_pass

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "tree"
SOURCE = (FIXTURES / "agreement" / "bad_purity.py").read_text()


def findings():
    return run_purity_pass(SOURCE, "tree/agreement/bad_purity.py")


def test_reports_every_planted_violation():
    got = {(f.rule, f.line) for f in findings()}
    assert got == {
        ("PUR003", 10),  # message(..., extras=[])
        ("PUR001", 11),  # print(state)
        ("PUR004", 12),  # self.last = state
        ("PUR002", 16),  # global CACHE
        ("PUR002", 17),  # CACHE[process_id] = ...
        ("PUR001", 21),  # open(...)
        ("PUR003", 25),  # impure_factory(..., log=[])
        ("PUR001", 26),  # print("building")
    }


def test_symbols_name_method_and_factory():
    symbols = {f.symbol for f in findings()}
    assert "ImpureAutomaton.message" in symbols
    assert "ImpureAutomaton.transition" in symbols
    assert "ImpureAutomaton.decision" in symbols
    assert "impure_factory" in symbols


def test_non_automaton_methods_are_out_of_scope():
    source = (
        "class Helper:\n"
        "    def message(self, sender, receiver, state):\n"
        "        print(state)  # not an AutomatonProtocol subclass\n"
    )
    assert run_purity_pass(source, "x.py") == []


def test_transitive_subclass_in_same_file_is_in_scope():
    source = (
        "class Base(AutomatonProtocol):\n"
        "    pass\n"
        "class Derived(Base):\n"
        "    def decision(self, process_id, state):\n"
        "        self.cache = state\n"
        "        return state\n"
    )
    findings = run_purity_pass(source, "x.py")
    assert [(f.rule, f.symbol) for f in findings] == [
        ("PUR004", "Derived.decision")
    ]


def test_pure_automaton_is_clean():
    source = (
        "class Clean(AutomatonProtocol):\n"
        "    def message(self, sender, receiver, state):\n"
        "        return state\n"
        "    def transition(self, process_id, messages):\n"
        "        return tuple(messages)\n"
        "    def decision(self, process_id, state):\n"
        "        return state[0]\n"
        "def clean_factory(default=0):\n"
        "    def factory(process_id, config, input_value):\n"
        "        return (process_id, input_value, default)\n"
        "    return factory\n"
    )
    assert run_purity_pass(source, "x.py") == []


class TestAllFunctionsMode:
    """Worker modules get every module-level function checked."""

    IMPURE_WORKER = (
        "_CONTEXT = None\n"
        "def run_chunk(cells):\n"
        "    global _CONTEXT\n"
        "    _CONTEXT = cells\n"
    )

    def test_plain_functions_skipped_by_default(self):
        assert run_purity_pass(self.IMPURE_WORKER, "x.py") == []

    def test_all_functions_flags_global_mutation(self):
        findings = run_purity_pass(
            self.IMPURE_WORKER, "x.py", all_functions=True
        )
        assert {(f.rule, f.symbol) for f in findings} == {
            ("PUR002", "run_chunk")
        }

    def test_factories_still_checked_in_all_functions_mode(self):
        source = "def thing_factory(log=[]):\n    return log\n"
        findings = run_purity_pass(source, "x.py", all_functions=True)
        assert [f.rule for f in findings] == ["PUR003"]


class TestPurityExempt:
    def test_justified_exemption_suppresses(self):
        source = (
            'PURITY_EXEMPT = {"run_chunk": "fork-pool context plumbing"}\n'
            "_CONTEXT = None\n"
            "def run_chunk(cells):\n"
            "    global _CONTEXT\n"
            "    _CONTEXT = cells\n"
        )
        assert run_purity_pass(source, "x.py", all_functions=True) == []

    def test_exemption_is_per_symbol(self):
        source = (
            'PURITY_EXEMPT = {"run_chunk": "fork-pool context plumbing"}\n'
            "_CONTEXT = None\n"
            "def run_chunk(cells):\n"
            "    global _CONTEXT\n"
            "def other(cells):\n"
            "    global _CONTEXT\n"
        )
        findings = run_purity_pass(source, "x.py", all_functions=True)
        assert [(f.rule, f.symbol) for f in findings] == [
            ("PUR002", "other")
        ]

    def test_exemption_covers_automaton_methods_by_qualified_name(self):
        source = (
            'PURITY_EXEMPT = {"Weird.decision": "test double"}\n'
            "class Weird(AutomatonProtocol):\n"
            "    def decision(self, process_id, state):\n"
            "        self.cache = state\n"
            "        return state\n"
        )
        assert run_purity_pass(source, "x.py") == []

    def test_empty_justification_is_pur005(self):
        source = (
            'PURITY_EXEMPT = {"run_chunk": ""}\n'
            "def run_chunk(cells):\n"
            "    global STATE\n"
        )
        findings = run_purity_pass(source, "x.py", all_functions=True)
        rules = sorted((f.rule, f.symbol) for f in findings)
        # The unjustified entry does NOT suppress: the PUR002 survives.
        assert rules == [
            ("PUR002", "run_chunk"), ("PUR005", "run_chunk"),
        ]

    def test_dead_entry_is_pur005(self):
        source = (
            'PURITY_EXEMPT = {"no_such_function": "stale"}\n'
            "def fine(x):\n"
            "    return x\n"
        )
        findings = run_purity_pass(source, "x.py", all_functions=True)
        assert [(f.rule, f.symbol) for f in findings] == [
            ("PUR005", "no_such_function")
        ]
        assert "dead entry" in findings[0].message

    def test_non_dict_declaration_is_pur005(self):
        source = 'PURITY_EXEMPT = ["run_chunk"]\n'
        findings = run_purity_pass(source, "x.py")
        assert [f.rule for f in findings] == ["PUR005"]
        assert "literal dict" in findings[0].message

    def test_non_string_key_is_pur005(self):
        source = 'PURITY_EXEMPT = {3: "why"}\n'
        findings = run_purity_pass(source, "x.py")
        assert [f.rule for f in findings] == ["PUR005"]

    def test_parallel_module_declaration_is_valid(self):
        """The shipped worker module's own exemptions lint clean."""
        import pathlib

        import repro.analysis.parallel as parallel_module

        path = pathlib.Path(parallel_module.__file__)
        findings = run_purity_pass(
            path.read_text(), "repro/analysis/parallel.py",
            all_functions=True,
        )
        assert findings == []
