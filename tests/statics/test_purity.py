"""The purity pass flags every planted violation, at the right place."""

import pathlib

from repro.statics.purity import run_purity_pass

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "tree"
SOURCE = (FIXTURES / "agreement" / "bad_purity.py").read_text()


def findings():
    return run_purity_pass(SOURCE, "tree/agreement/bad_purity.py")


def test_reports_every_planted_violation():
    got = {(f.rule, f.line) for f in findings()}
    assert got == {
        ("PUR003", 10),  # message(..., extras=[])
        ("PUR001", 11),  # print(state)
        ("PUR004", 12),  # self.last = state
        ("PUR002", 16),  # global CACHE
        ("PUR002", 17),  # CACHE[process_id] = ...
        ("PUR001", 21),  # open(...)
        ("PUR003", 25),  # impure_factory(..., log=[])
        ("PUR001", 26),  # print("building")
    }


def test_symbols_name_method_and_factory():
    symbols = {f.symbol for f in findings()}
    assert "ImpureAutomaton.message" in symbols
    assert "ImpureAutomaton.transition" in symbols
    assert "ImpureAutomaton.decision" in symbols
    assert "impure_factory" in symbols


def test_non_automaton_methods_are_out_of_scope():
    source = (
        "class Helper:\n"
        "    def message(self, sender, receiver, state):\n"
        "        print(state)  # not an AutomatonProtocol subclass\n"
    )
    assert run_purity_pass(source, "x.py") == []


def test_transitive_subclass_in_same_file_is_in_scope():
    source = (
        "class Base(AutomatonProtocol):\n"
        "    pass\n"
        "class Derived(Base):\n"
        "    def decision(self, process_id, state):\n"
        "        self.cache = state\n"
        "        return state\n"
    )
    findings = run_purity_pass(source, "x.py")
    assert [(f.rule, f.symbol) for f in findings] == [
        ("PUR004", "Derived.decision")
    ]


def test_pure_automaton_is_clean():
    source = (
        "class Clean(AutomatonProtocol):\n"
        "    def message(self, sender, receiver, state):\n"
        "        return state\n"
        "    def transition(self, process_id, messages):\n"
        "        return tuple(messages)\n"
        "    def decision(self, process_id, state):\n"
        "        return state[0]\n"
        "def clean_factory(default=0):\n"
        "    def factory(process_id, config, input_value):\n"
        "        return (process_id, input_value, default)\n"
        "    return factory\n"
    )
    assert run_purity_pass(source, "x.py") == []
