"""Integration: ``repro lint`` on the real tree and on the fixtures.

This is the acceptance contract of the subsystem: exit 0 with zero
unsuppressed findings on the repository itself, exit 1 on the planted
violations, machine-readable JSON, and a working baseline workflow.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.statics.baseline import Baseline, write_baseline
from repro.statics.runner import lint_tree

REPO = pathlib.Path(__file__).parent.parent.parent
PACKAGE_ROOT = REPO / "src" / "repro"
BASELINE = REPO / "tools" / "lint_baseline.json"
FIXTURE_TREE = pathlib.Path(__file__).parent / "fixtures" / "tree"


def run_lint(capsys, *argv):
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


class TestRealTree:
    def test_exits_zero_with_committed_baseline(self, capsys):
        code, out = run_lint(
            capsys, "--root", str(PACKAGE_ROOT), "--baseline", str(BASELINE)
        )
        assert code == 0, out
        assert "clean" in out

    def test_no_unused_baseline_entries(self):
        result = lint_tree(PACKAGE_ROOT, Baseline.load(BASELINE))
        assert result.unused_suppressions == []

    def test_every_suppression_still_matches_a_real_finding(self):
        # Several findings can share one suppression key (a drain
        # method with multiple flagged writes), so compare key sets,
        # not counts.
        result = lint_tree(PACKAGE_ROOT, Baseline.load(BASELINE))
        suppressed_keys = {f.suppression_key for f in result.suppressed}
        baseline_keys = {
            f"{e['rule']}:{e['path']}:{e['symbol']}"
            for e in json.loads(BASELINE.read_text())["suppressions"]
        }
        assert suppressed_keys == baseline_keys

    def test_arrays_kernel_is_registered(self):
        from repro.statics.runner import PROTOCOL_PACKAGES, WORKER_MODULES

        assert "arrays" in PROTOCOL_PACKAGES
        # The store's module-level registry functions carry exemptions
        # that only the all-functions worker pass can see, so the file
        # must be listed there (and skipped by the default purity pass).
        assert "arrays/store.py" in WORKER_MODULES


class TestFixtureTree:
    def test_exits_nonzero(self, capsys):
        code, out = run_lint(capsys, "--root", str(FIXTURE_TREE))
        assert code == 1
        assert "DET001" in out and "PUR001" in out and "CON001" in out

    def test_json_schema(self, capsys):
        code, out = run_lint(
            capsys, "--root", str(FIXTURE_TREE), "--format", "json"
        )
        assert code == 1
        report = json.loads(out)
        assert report["version"] == 2
        assert report["stale_suppressions"] == []
        assert report["findings"], "fixture tree must produce findings"
        for finding in report["findings"]:
            assert set(finding) == {
                "rule",
                "path",
                "line",
                "col",
                "symbol",
                "message",
            }
            assert finding["rule"].rstrip("0123456789") in (
                "DET", "PUR", "CON", "FLOW", "COM", "TAINT",
            )
            assert finding["line"] >= 1
        rules = {finding["rule"] for finding in report["findings"]}
        assert {"DET001", "DET004", "PUR003", "CON001"} <= rules

    def test_update_baseline_then_clean(self, capsys, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        code, out = run_lint(
            capsys,
            "--root",
            str(FIXTURE_TREE),
            "--baseline",
            str(baseline_path),
            "--update-baseline",
        )
        assert code == 0  # creates the baseline file
        assert "TODO" in out
        code, out = run_lint(
            capsys, "--root", str(FIXTURE_TREE), "--baseline", str(baseline_path)
        )
        assert code == 0, out
        assert "suppressed by baseline" in out

    def test_suppressed_findings_are_reported_in_json(self, capsys, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_tree(FIXTURE_TREE).findings)
        code, out = run_lint(
            capsys,
            "--root",
            str(FIXTURE_TREE),
            "--baseline",
            str(baseline_path),
            "--format",
            "json",
        )
        assert code == 0
        report = json.loads(out)
        assert report["findings"] == []
        assert report["suppressed"]


class TestErrorHandling:
    def test_bad_root_exits_two(self, capsys):
        code, out = run_lint(capsys, "--root", "/nonexistent/path")
        assert code == 2
        assert "error" in out

    def test_unknown_rule_in_baseline_warns_but_does_not_fail(
        self, capsys, tmp_path
    ):
        # A stale entry (rule id from another checkout) is skipped
        # with a warning, not a load error — see docs/statics.md.
        bad = tmp_path / "baseline.json"
        bad.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {
                            "rule": "NOPE99",
                            "path": "x.py",
                            "symbol": "f",
                            "justification": "bogus",
                        }
                    ],
                }
            )
        )
        code, out = run_lint(
            capsys, "--root", str(FIXTURE_TREE), "--baseline", str(bad)
        )
        assert code == 1  # the planted findings still fail the run
        assert "stale baseline entry" in out
        assert "unknown rule id 'NOPE99'" in out

    def test_missing_justification_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {
                            "rule": "DET001",
                            "path": "x.py",
                            "symbol": "f",
                            "justification": "  ",
                        }
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(bad)


class TestToolsEntryPoint:
    def test_run_lint_script_on_real_tree(self, capsys):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "run_lint", REPO / "tools" / "run_lint.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main([]) == 0
        assert "clean" in capsys.readouterr().out


class TestObservabilityRegistration:
    """repro.obs is inside the protolint perimeter, with its carve-outs."""

    def test_obs_is_a_scanned_package(self):
        from repro.statics.runner import PROTOCOL_PACKAGES

        assert "obs" in PROTOCOL_PACKAGES

    def test_observer_module_gets_worker_purity_mode(self):
        from repro.statics.runner import WORKER_MODULES

        assert "obs/core.py" in WORKER_MODULES

    def test_spans_is_the_only_clock_module(self):
        from repro.statics.runner import CLOCK_MODULES

        assert CLOCK_MODULES == ("obs/spans.py",)

    def test_obs_tree_is_lint_clean(self):
        # the spans carve-out plus the PURITY_EXEMPT declarations must
        # cover everything: no obs finding may need the baseline
        result = lint_tree()
        assert [
            finding
            for finding in result.findings + result.suppressed
            if "/obs/" in finding.path
        ] == []

    def test_clock_import_outside_spans_is_a_finding(self, tmp_path):
        package = tmp_path / "repro" / "obs"
        package.mkdir(parents=True)
        (package / "rogue.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        result = lint_tree(package_root=tmp_path / "repro")
        assert any(
            "time" in finding.message for finding in result.findings
        )
