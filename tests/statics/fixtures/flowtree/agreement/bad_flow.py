"""Deliberately non-canonical fixture: violates every FLOW rule.

``outgoing`` mutates state (FLOW003) and reads an attribute nothing
ever writes (FLOW002); ``receive`` captures the raw incoming map into
persistent state (FLOW001).  Taint and size are kept clean so the
fixture exercises exactly the closedness pass.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.runtime.node import Process
from repro.types import ProcessId, Round, SystemConfig, Value

TAINT_SANITIZERS = {
    "_clip": "clamps any received object to the binary alphabet",
}

MESSAGE_BOUNDS = {"UnclosedProcess": "constant"}


def _clip(value: Any) -> int:
    return 1 if value == 1 else 0


class UnclosedProcess(Process):
    """Breaks communication-closedness in all three checkable ways."""

    def __init__(
        self, process_id: ProcessId, config: SystemConfig, input_value: Value
    ):
        super().__init__(process_id, config)
        self.value = _clip(input_value)
        self.sent_log: list = []

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        self.sent_log.append(round_number)
        payload = (self.value, self.late_hint)
        return {pid: payload for pid in self.config.process_ids}

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        self.history = incoming
        self.value = _clip(incoming[self.config.process_ids[0]])
