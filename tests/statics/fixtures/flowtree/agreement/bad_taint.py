"""Deliberately non-canonical fixture: violates the TAINT rule family.

``GullibleProcess`` relays a received value verbatim (TAINT002) and
decides on it without any sanitizer (TAINT001); the module also
declares a sanitizer that does not exist (TAINT003).  Flow and size
are kept clean.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.runtime.node import Process
from repro.types import ProcessId, Round, SystemConfig, Value

TAINT_SANITIZERS = {
    "_missing_check": "claims to validate receptions but is never defined",
}

MESSAGE_BOUNDS = {"GullibleProcess": "constant"}


class GullibleProcess(Process):
    """Echoes whatever the lowest-id sender said, then decides on it."""

    def __init__(
        self, process_id: ProcessId, config: SystemConfig, input_value: Value
    ):
        super().__init__(process_id, config)
        self.echo: Any = input_value

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        return {pid: self.echo for pid in self.config.process_ids}

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        self.echo = incoming[self.config.process_ids[0]]
        if round_number >= 2 and not self.has_decided():
            self.decide(self.echo, round_number)
