"""Deliberately non-canonical fixture: violates the COM rule family.

``ChattyProcess`` broadcasts its whole reception log every round while
declaring a ``constant`` bound with no justification (COM002);
``UndeclaredProcess`` is a certified protocol with no MESSAGE_BOUNDS
entry at all (COM003).  Flow and taint are kept clean.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.runtime.node import Process
from repro.types import ProcessId, Round, SystemConfig, Value

TAINT_SANITIZERS = {
    "_legal": "maps any received object onto the binary alphabet",
}

MESSAGE_BOUNDS = {"ChattyProcess": "constant"}


def _legal(value: Any) -> int:
    return 1 if value == 1 else 0


class ChattyProcess(Process):
    """Accumulates every reception and rebroadcasts the full log."""

    def __init__(
        self, process_id: ProcessId, config: SystemConfig, input_value: Value
    ):
        super().__init__(process_id, config)
        self.log: List[int] = [_legal(input_value)]

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        payload = tuple(self.log)
        return {pid: payload for pid in self.config.process_ids}

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        for sender in self.config.process_ids:
            self.log.append(_legal(incoming[sender]))


class UndeclaredProcess(Process):
    """Constant-size sender that never declared its bound."""

    def __init__(
        self, process_id: ProcessId, config: SystemConfig, input_value: Value
    ):
        super().__init__(process_id, config)
        self.value = _legal(input_value)

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        return {pid: self.value for pid in self.config.process_ids}

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        return None
