"""Fixture catalog: one entry violating CON003 and CON004, one stale
exemption violating CON002."""

CATALOG_EXEMPT = {
    "ghost_factory": "exempts a factory that does not exist (CON002)",
    "impure_factory": "a valid exemption: the purity fixture's factory "
    "is deliberately uncatalogued",
}


def catalog():
    return [
        ProtocolEntry(  # noqa: F821 - parsed, never run
            name="registered",
            build=lambda config, alphabet, seed: registered_factory(),  # noqa: F821
            rounds=lambda t: None,
            supports=lambda config: True,
        ),
    ]
