"""Fixture: purity violations in an automaton subclass and a factory.

Never imported — ``AutomatonProtocol`` here is resolved by name only.
"""

CACHE = {}


class ImpureAutomaton(AutomatonProtocol):  # noqa: F821 - parsed, never run
    def message(self, sender, receiver, state, extras=[]):
        print(state)
        self.last = state
        return state

    def transition(self, process_id, messages):
        global CACHE
        CACHE[process_id] = messages
        return messages

    def decision(self, process_id, state):
        open("decisions.log")
        return state


def impure_factory(config, log=[]):
    print("building")

    def factory(process_id, config, input_value):
        return None

    return factory
