"""Fixture: ``orphan_factory`` is neither registered nor exempted."""


def orphan_factory():
    """An agreement factory the catalog forgot (CON001)."""


def registered_factory():
    """The factory the fixture catalog registers."""
