"""Fixture: every determinism rule fires in this module.

Never imported — the lint tests feed it to the passes as text.
"""

import random
import time
from os import urandom

import numpy as np


def coin():
    random.random()
    time.time()
    urandom(8)
    return np.random.default_rng()


def first(values):
    for value in set(values):
        return value
    return next(iter(values))


class Tracker:
    def __init__(self):
        self.pending: set = set()

    def drain(self):
        return self.pending.pop()
