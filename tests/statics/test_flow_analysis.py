"""Protoflow over the real protocol catalog (satellite of ISSUE 6).

These tests run the interprocedural analysis over the shipped tree
and pin what it concludes about representative protocols: the clean
canonical ones (turpin_coan, phase_king), the justified-waiver ones
(srikanth_toueg's drain idiom, dolev_strong's signature chains), and
the structural classification of the compact protocol.
"""

import pytest

from repro.statics.flow.lattice import Size
from repro.statics.flow.passes import analyze_tree
from repro.statics.runner import default_package_root


@pytest.fixture(scope="module")
def analysis():
    return analyze_tree(default_package_root())


@pytest.fixture(scope="module")
def by_name(analysis):
    return {report.cls.name: report for report in analysis.reports}


def test_catalog_coverage(by_name):
    expected = {
        "ApproximateAgreementAutomaton",
        "ApproximateProcess",
        "AutomatonProcess",
        "AuthCompactProcess",
        "AvalancheProcess",
        "BenOrProcess",
        "CompactProcess",
        "CrashCompactProcess",
        "CrusaderProcess",
        "DolevStrongProcess",
        "EarlyStoppingCrashProcess",
        "ExponentialAgreementAutomaton",
        "FiringSquadProcess",
        "FullInformationAutomaton",
        "FullInformationProcess",
        "PhaseKingProcess",
        "PhaseQueenProcess",
        "STAgreementProcess",
        "TurpinCoanProcess",
        "WeakAgreementProcess",
    }
    assert set(by_name) == expected


def test_turpin_coan_is_fully_canonical(by_name):
    # Clean without any sanitizer declaration: every reception is
    # laundered through counting + threshold comparisons, which the
    # taint lattice recognizes as filtering on its own.
    report = by_name["TurpinCoanProcess"]
    assert report.findings == []
    assert report.inferred_bound is Size.CONSTANT
    assert report.structure == "lockstep"


def test_phase_king_and_queen_are_fully_canonical(by_name):
    for name in ("PhaseKingProcess", "PhaseQueenProcess"):
        report = by_name[name]
        assert report.findings == []
        assert "_as_bit" in report.sanitizers_used
        assert report.inferred_bound is Size.CONSTANT


def test_srikanth_toueg_drain_idiom_is_the_only_violation(by_name):
    report = by_name["STAgreementProcess"]
    assert report.inferred_bound is Size.CONSTANT
    assert "_well_formed" in report.sanitizers_used
    assert report.taint_findings == []
    keys = {f.suppression_key for f in report.flow_findings}
    assert keys == {
        "FLOW003:repro/agreement/srikanth_toueg.py:"
        "WitnessedBroadcast.outgoing_items"
    }


def test_dolev_strong_history_bound_is_declared_and_justified(by_name):
    report = by_name["DolevStrongProcess"]
    assert report.inferred_bound is Size.HISTORY
    assert report.declared is not None
    assert report.declared.bound == "history"
    assert report.declared.justification
    assert report.com_findings == []
    flow_rules = {f.rule for f in report.flow_findings}
    assert flow_rules == {"FLOW003"}  # the outbox-swap drain


def test_compact_protocol_is_blocked_structure(by_name):
    assert by_name["CompactProcess"].structure == "block(k)"
    assert by_name["FullInformationProcess"].structure == "lockstep"


def test_full_information_baseline_is_flagged_not_silently_passed(by_name):
    automaton = by_name["FullInformationAutomaton"]
    assert automaton.inferred_bound is Size.HISTORY
    rules = {f.rule for f in automaton.taint_findings}
    assert "TAINT002" in rules  # Protocol 1 relays state by definition


def test_every_certified_protocol_declares_a_bound(analysis):
    undeclared = [
        report.cls.name
        for report in analysis.reports
        if report.declared is None
    ]
    assert undeclared == []
