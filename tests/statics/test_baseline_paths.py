"""Baseline path normalization and stale-entry tolerance (satellite 2)."""

import json

import pytest

from repro.statics.baseline import Baseline, normalize_path
from repro.statics.findings import Finding


def _write(tmp_path, suppressions):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps({"version": 1, "suppressions": suppressions})
    )
    return path


def _entry(**overrides):
    entry = {
        "rule": "FLOW003",
        "path": "repro/agreement/x.py",
        "symbol": "X.outgoing",
        "justification": "drain idiom, reviewed",
    }
    entry.update(overrides)
    return entry


def test_normalize_path_forms():
    assert normalize_path("repro/agreement/x.py") == "repro/agreement/x.py"
    assert normalize_path("repro\\agreement\\x.py") == "repro/agreement/x.py"
    assert normalize_path("./repro/agreement/x.py") == "repro/agreement/x.py"
    assert normalize_path("src/repro/agreement/x.py") == (
        "repro/agreement/x.py"
    )
    assert normalize_path(".\\src\\repro\\x.py") == "repro/x.py"
    # Only the repo-root src/repro prefix is rewritten — an unrelated
    # src/ directory is someone's package name, not our layout.
    assert normalize_path("src/other/x.py") == "src/other/x.py"


@pytest.mark.parametrize(
    "written",
    [
        "repro/agreement/x.py",
        "src/repro/agreement/x.py",
        "./repro/agreement/x.py",
        "repro\\agreement\\x.py",
    ],
)
def test_denormalized_baseline_paths_still_match(tmp_path, written):
    baseline = Baseline.load(_write(tmp_path, [_entry(path=written)]))
    finding = Finding(
        path="repro/agreement/x.py", line=1, col=0,
        rule="FLOW003", symbol="X.outgoing", message="m",
    )
    assert baseline.match(finding) is not None
    assert baseline.unused() == []


def test_unknown_rule_id_is_stale_not_fatal(tmp_path):
    path = _write(
        tmp_path,
        [_entry(), _entry(rule="NOPE999", symbol="X.receive")],
    )
    baseline = Baseline.load(path)
    assert len(baseline.stale) == 1
    assert "NOPE999" in baseline.stale[0]
    assert "stale entry ignored" in baseline.stale[0]
    # The valid entry still works.
    finding = Finding(
        path="repro/agreement/x.py", line=1, col=0,
        rule="FLOW003", symbol="X.outgoing", message="m",
    )
    assert baseline.match(finding) is not None


def test_missing_justification_is_still_a_hard_error(tmp_path):
    path = _write(tmp_path, [_entry(justification="  ")])
    with pytest.raises(ValueError, match="no\\s+justification"):
        Baseline.load(path)


def test_unsupported_version_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "suppressions": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)
