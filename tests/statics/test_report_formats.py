"""Rendering: SARIF 2.1.0 output and stale-baseline warnings."""

import json

from repro.statics.findings import Finding
from repro.statics.report import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_sarif,
    render_text,
)
from repro.statics.rules import RULES
from repro.statics.runner import LintResult


def _finding(rule="FLOW003", path="repro/agreement/x.py", symbol="X.outgoing"):
    return Finding(
        path=path, line=7, col=4, rule=rule, symbol=symbol,
        message="send path writes self.outbox",
    )


def test_sarif_shape_and_schema():
    result = LintResult(
        findings=[_finding()],
        suppressed=[_finding(rule="TAINT002", symbol="Y.outgoing")],
        unused_suppressions=[],
    )
    sarif = json.loads(render_sarif(result))
    assert sarif["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in sarif["$schema"]
    (run,) = sarif["runs"]
    assert run["tool"]["driver"]["name"] == "protolint"
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(RULES)
    assert {"FLOW003", "COM001", "TAINT001"} <= set(rule_ids)
    assert len(run["results"]) == 2


def test_sarif_result_fields_and_suppressions():
    result = LintResult(
        findings=[_finding()],
        suppressed=[_finding(rule="TAINT002", symbol="Y.outgoing")],
        unused_suppressions=[],
    )
    live, waived = json.loads(render_sarif(result))["runs"][0]["results"]
    assert live["ruleId"] == "FLOW003"
    assert "suppressions" not in live
    location = live["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "repro/agreement/x.py"
    assert location["region"] == {"startLine": 7, "startColumn": 5}
    assert "X.outgoing" in live["message"]["text"]
    assert waived["suppressions"] == [{"kind": "external"}]


def test_sarif_over_clean_result_is_valid_and_empty():
    sarif = json.loads(render_sarif(LintResult([], [], [])))
    assert sarif["runs"][0]["results"] == []


def test_stale_suppressions_render_as_warnings():
    result = LintResult(
        findings=[],
        suppressed=[],
        unused_suppressions=[],
        stale_suppressions=["OLD001:repro/x.py:X: unknown rule id 'OLD001'"],
    )
    text = render_text(result)
    assert "warning: stale baseline entry OLD001:repro/x.py:X" in text
    assert text.endswith("clean (0 suppressed by baseline)")
    assert result.exit_code == 0  # stale entries warn, never fail

    payload = json.loads(render_json(result))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert JSON_SCHEMA_VERSION == 2
    assert payload["stale_suppressions"] == [
        "OLD001:repro/x.py:X: unknown rule id 'OLD001'"
    ]
