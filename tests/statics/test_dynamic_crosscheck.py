"""Static FLOW certificates vs dynamic closedness — the agreement gate.

Every corpus case replays under a tracing observer; the observed
execution must be communication-closed whenever protoflow certified
(or a human waived) the protocol text.  A disagreement here means
either the tracer, the static analysis, or the protocol regressed —
it fails the suite, it is never a warning.
"""

import pathlib

from repro.fuzz.case import load_corpus
from repro.statics.crosscheck import (
    DEFAULT_CERTIFICATES,
    PROTOCOL_CERTIFICATES,
    check_case,
    cross_check_corpus,
    load_certificates,
    render_cross_check,
)

CORPUS = pathlib.Path("tests/fuzz/corpus")


class TestCertificateCatalog:
    def test_committed_catalog_loads(self):
        certificates = load_certificates()
        assert certificates

    def test_every_fuzz_protocol_maps_to_known_certificates(self):
        certificates = load_certificates()
        for protocol, keys in PROTOCOL_CERTIFICATES.items():
            for key in keys:
                entry = certificates.get(key)
                assert entry is not None, (protocol, key)
                assert entry["flow"]["verdict"] in (
                    "closed", "waived", "open"
                )


class TestCorpusCrossCheck:
    def test_every_corpus_case_agrees_with_its_certificate(self):
        """The acceptance gate: no static/dynamic disagreement."""
        report = cross_check_corpus(CORPUS)
        assert report["cases"], "corpus unexpectedly empty"
        rendered = render_cross_check(report)
        assert report["ok"], rendered
        assert report["disagreements"] == []

    def test_replays_produce_real_traces(self):
        certificates = load_certificates(DEFAULT_CERTIFICATES)
        for _path, case in load_corpus(CORPUS):
            entry = check_case(case, certificates)
            assert entry["deliver_edges"] > 0, entry["case"]
            assert entry["static"], entry["case"]

    def test_certified_closed_case_reports_closed_dynamics(self):
        certificates = load_certificates()
        checked = [
            check_case(case, certificates)
            for _path, case in load_corpus(CORPUS)
        ]
        certified = [
            entry for entry in checked
            if any(v == "closed" for v in entry["static"].values())
        ]
        assert certified
        for entry in certified:
            assert entry["dynamic"] == "closed", entry
            assert entry["problems"] == []
