"""The determinism pass flags every planted violation, at the right place."""

import pathlib

from repro.statics.determinism import run_determinism_pass

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "tree"
SOURCE = (FIXTURES / "core" / "bad_determinism.py").read_text()


def findings():
    return run_determinism_pass(SOURCE, "tree/core/bad_determinism.py")


def test_reports_every_planted_violation():
    got = {(f.rule, f.line) for f in findings()}
    assert got == {
        ("DET001", 6),   # import random
        ("DET001", 7),   # import time
        ("DET001", 8),   # from os import urandom
        ("DET002", 14),  # random.random()
        ("DET002", 15),  # time.time()
        ("DET002", 16),  # urandom(8)
        ("DET003", 17),  # np.random.default_rng()
        ("DET004", 21),  # for value in set(values)
        ("DET005", 23),  # next(iter(values))
        ("DET005", 31),  # self.pending.pop()
    }


def test_symbols_name_the_enclosing_scope():
    by_line = {f.line: f for f in findings()}
    assert by_line[14].symbol == "coin"
    assert by_line[21].symbol == "first"
    assert by_line[31].symbol == "Tracker.drain"
    assert by_line[6].symbol == "<module>"


def test_path_is_passed_through():
    assert {f.path for f in findings()} == {"tree/core/bad_determinism.py"}


def test_clean_constructs_stay_clean():
    clean = (
        "import numpy as np\n"
        "from repro.runtime.rng import derive_rng\n"
        "def run(seed, items):\n"
        "    rng: np.random.Generator = derive_rng(seed, 'x')\n"
        "    for item in sorted(set(items)):\n"
        "        rng.integers(0, 2)\n"
        "    return {k: v for k, v in sorted(items)}\n"
    )
    assert run_determinism_pass(clean, "clean.py") == []


def test_numpy_generator_annotation_is_not_a_call():
    source = (
        "import numpy as np\n"
        "def f(rng: np.random.Generator):\n"
        "    return rng.integers(0, 2)\n"
    )
    assert run_determinism_pass(source, "ann.py") == []
