"""Tests for Byzantine adversary strategies."""

import pytest

from repro.adversary import (
    CollusionAdversary,
    EquivocatingAdversary,
    MalformedArrayAdversary,
    PassiveAdversary,
    RandomGarbageAdversary,
    SilentAdversary,
    StrategyTable,
    VoteSplitterAdversary,
)
from repro.adversary.base import RoundContext
from repro.errors import ConfigurationError
from repro.runtime.rng import make_rng
from repro.types import BOTTOM, SystemConfig


def context_for(config, correct_outgoing=None, inputs=None):
    return RoundContext(
        config=config,
        round_number=1,
        correct_outgoing=correct_outgoing or {},
        processes={},
        inputs=inputs or {p: 0 for p in config.process_ids},
    )


@pytest.fixture
def config():
    return SystemConfig(n=7, t=2)


def bound(adversary, config, seed=0):
    adversary.bind(config, make_rng(seed))
    return adversary


class TestBinding:
    def test_too_many_faulty_rejected(self, config):
        with pytest.raises(ConfigurationError):
            bound(SilentAdversary([1, 2, 3]), config)

    def test_out_of_range_id_rejected(self, config):
        with pytest.raises(ConfigurationError):
            bound(SilentAdversary([99]), config)

    def test_passive_owns_nothing(self, config):
        adversary = bound(PassiveAdversary(), config)
        assert adversary.faulty_ids == frozenset()


class TestSilent(object):
    def test_sends_nothing(self, config):
        adversary = bound(SilentAdversary([1]), config)
        assert adversary.outgoing(1, 1, context_for(config)) == {}


class TestRandomGarbage:
    def test_palette_respected(self, config):
        adversary = bound(RandomGarbageAdversary([1], palette=["x", "y"]), config)
        messages = adversary.outgoing(1, 1, context_for(config))
        assert set(messages) == set(config.process_ids)
        assert set(messages.values()) <= {"x", "y"}

    def test_defaults_to_input_values(self, config):
        adversary = bound(RandomGarbageAdversary([1]), config)
        inputs = {p: "iv" for p in config.process_ids}
        messages = adversary.outgoing(1, 1, context_for(config, inputs=inputs))
        assert set(messages.values()) == {"iv"}

    def test_deterministic_per_seed(self, config):
        runs = []
        for _ in range(2):
            adversary = bound(
                RandomGarbageAdversary([1], palette=list(range(50))), config, seed=3
            )
            runs.append(adversary.outgoing(1, 1, context_for(config)))
        assert runs[0] == runs[1]


class TestEquivocating:
    def test_two_faces(self, config):
        adversary = bound(EquivocatingAdversary([1], "a", "b"), config)
        messages = adversary.outgoing(1, 1, context_for(config))
        values = set(messages.values())
        assert values == {"a", "b"}
        # Low half gets a, high half gets b.
        assert messages[1] == "a"
        assert messages[config.n] == "b"


class TestVoteSplitter:
    def test_splits_leading_values(self, config):
        outgoing = {
            sender: {receiver: sender % 2 for receiver in config.process_ids}
            for sender in (2, 3, 4, 5, 6, 7)
        }
        adversary = bound(VoteSplitterAdversary([1]), config)
        messages = adversary.outgoing(1, 1, context_for(config, outgoing))
        assert set(messages.values()) == {0, 1}

    def test_silent_when_no_votes(self, config):
        adversary = bound(VoteSplitterAdversary([1]), config)
        assert adversary.outgoing(1, 1, context_for(config)) == {}


class TestMalformed:
    def test_payloads_are_structurally_bad(self, config):
        from repro.arrays.value_array import validate_array

        adversary = bound(MalformedArrayAdversary([1]), config)
        for round_number in range(1, 6):
            for payload in adversary.outgoing(
                round_number, 1, context_for(config)
            ).values():
                assert not validate_array(payload, config.n, depth=1)


class TestCollusion:
    def test_mirrors_correct_traffic(self, config):
        outgoing = {
            sender: {receiver: f"m{sender}" for receiver in config.process_ids}
            for sender in (2, 3, 4, 5, 6, 7)
        }
        adversary = bound(CollusionAdversary([1], mimic_a=2, mimic_b=7), config)
        messages = adversary.outgoing(1, 1, context_for(config, outgoing))
        assert messages[1] == "m2"
        assert messages[config.n] == "m7"

    def test_silent_with_no_correct_traffic(self, config):
        adversary = bound(CollusionAdversary([1]), config)
        assert adversary.outgoing(1, 1, context_for(config)) == {}


class TestStrategyTable:
    def test_per_processor_strategies(self, config):
        table = StrategyTable(
            {
                1: SilentAdversary([]),
                2: EquivocatingAdversary([], "a", "b"),
            }
        )
        bound(table, config)
        assert table.outgoing(1, 1, context_for(config)) == {}
        assert set(table.outgoing(1, 2, context_for(config)).values()) == {"a", "b"}

    def test_faulty_ids_union(self, config):
        table = StrategyTable({1: SilentAdversary([]), 2: SilentAdversary([])})
        assert table.faulty_ids == frozenset({1, 2})


class TestRoundContext:
    def test_sample_correct_message(self, config):
        outgoing = {3: {1: "hello"}}
        context = context_for(config, outgoing)
        assert context.sample_correct_message(1) == "hello"
        assert context.sample_correct_message(2) is BOTTOM

    def test_correct_message_lookup(self, config):
        outgoing = {3: {1: "hello"}}
        context = context_for(config, outgoing)
        assert context.correct_message(3, 1) == "hello"
        assert context.correct_message(3, 2) is BOTTOM
        assert context.correct_message(9, 1) is BOTTOM
