"""Tests for the benign fault models (ghost-process semantics)."""

import pytest

from repro.adversary.crash import CrashAdversary
from repro.adversary.omission import OmissionAdversary
from repro.runtime.engine import run_protocol
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, SystemConfig, is_bottom


class GossipProcess(Process):
    """Broadcasts everything it has seen; decides after 3 rounds."""

    def __init__(self, process_id, config, input_value):
        super().__init__(process_id, config)
        self.seen = {input_value}

    def outgoing(self, round_number):
        return broadcast(frozenset(self.seen), self.config)

    def receive(self, round_number, incoming):
        for message in incoming.values():
            if isinstance(message, frozenset):
                self.seen |= message
        if round_number >= 3:
            self.decide(min(self.seen), round_number)


def gossip_factory(process_id, config, input_value):
    return GossipProcess(process_id, config, input_value)


@pytest.fixture
def config():
    return SystemConfig(n=5, t=2)


@pytest.fixture
def inputs(config):
    return {process_id: process_id for process_id in config.process_ids}


class TestCrashAdversary:
    def test_behaves_correctly_before_crash(self, config, inputs):
        adversary = CrashAdversary({5: 3}, gossip_factory, cut_fraction=1.0)
        result = run_protocol(
            gossip_factory, config, inputs, adversary=adversary, max_rounds=4
        )
        # Processor 5 never actually deviates (crashes after round 3's
        # full broadcast), so everyone learns its input.
        assert all(decision == 1 for decision in result.decisions.values())
        assert all(5 in proc.seen for proc in result.processes.values())

    def test_silent_after_crash(self, config, inputs):
        adversary = CrashAdversary({5: 1}, gossip_factory, cut_fraction=0.0)
        result = run_protocol(
            gossip_factory, config, inputs, adversary=adversary, max_rounds=4
        )
        # A clean round-1 crash means nobody ever hears value 5.
        assert all(5 not in proc.seen for proc in result.processes.values())

    def test_partial_crash_round_reaches_prefix(self, config, inputs):
        adversary = CrashAdversary({5: 1}, gossip_factory, cut_fraction=0.5)
        result = run_protocol(
            gossip_factory, config, inputs, adversary=adversary, max_rounds=4
        )
        # Prefix recipients (ids 1, 2) got round 1; gossip then spreads
        # value 5 to everyone — the classic crash asymmetry resolved by
        # flooding.
        assert all(5 in proc.seen for proc in result.processes.values())

    def test_ghost_follows_protocol(self, config, inputs):
        adversary = CrashAdversary({5: 3}, gossip_factory, cut_fraction=1.0)
        run_protocol(
            gossip_factory, config, inputs, adversary=adversary, max_rounds=4
        )
        ghost = adversary.ghost(5)
        assert ghost is not None
        assert ghost.seen >= {1, 2, 3, 4, 5}

    def test_invalid_cut_fraction(self):
        with pytest.raises(ValueError):
            CrashAdversary({1: 1}, gossip_factory, cut_fraction=1.5)


class TestOmissionAdversary:
    def test_never_lies(self, config, inputs):
        adversary = OmissionAdversary([5], gossip_factory, drop_probability=0.5)
        result = run_protocol(
            gossip_factory,
            config,
            inputs,
            adversary=adversary,
            max_rounds=4,
            record_trace=True,
            seed=3,
        )
        ghost = adversary.ghost(5)
        for envelope in result.trace.messages_from(5):
            assert isinstance(envelope.payload, frozenset)
            assert envelope.payload <= ghost.seen

    def test_drop_probability_zero_is_correct_behaviour(self, config, inputs):
        adversary = OmissionAdversary([5], gossip_factory, drop_probability=0.0)
        result = run_protocol(
            gossip_factory, config, inputs, adversary=adversary, max_rounds=4
        )
        assert all(5 in proc.seen for proc in result.processes.values())

    def test_drop_probability_one_is_silence(self, config, inputs):
        adversary = OmissionAdversary([5], gossip_factory, drop_probability=1.0)
        result = run_protocol(
            gossip_factory, config, inputs, adversary=adversary, max_rounds=4
        )
        assert all(5 not in proc.seen for proc in result.processes.values())

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            OmissionAdversary([1], gossip_factory, drop_probability=-0.1)
