"""StrategyTable mixing fault *models*: Byzantine next to crash.

A realistic deployment fails heterogeneously — one node Byzantine, one
merely crashing.  The table must route the end-of-round hook to
ghost-running sub-strategies so the crashing node still follows its
protocol faithfully until its crash round.
"""

import pytest

from repro.adversary import StrategyTable, VoteSplitterAdversary
from repro.adversary.crash import CrashAdversary
from repro.avalanche.protocol import avalanche_factory
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.compact.protocol import compact_factory
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig, is_bottom

from tests.conftest import assert_agreement_and_validity


class TestMixedModels:
    def test_byzantine_plus_crash_on_avalanche(self, config7):
        inputs = {p: "v" for p in config7.process_ids}
        crash = CrashAdversary({6: 2}, avalanche_factory(), cut_fraction=0.5)
        table = StrategyTable(
            {3: VoteSplitterAdversary([]), 6: crash}
        )
        result = run_protocol(
            avalanche_factory(),
            config7,
            inputs,
            adversary=table,
            run_full_rounds=4,
        )
        # Unanimous correct input beats both failure styles.
        assert result.decided_values() == {"v"}

    def test_crash_ghost_actually_steps(self, config7):
        """The forwarded hook keeps the ghost alive: before its crash
        round it must have processed rounds like a real processor."""
        inputs = {p: p % 2 for p in config7.process_ids}
        factory = compact_factory(k=1, value_alphabet=[0, 1])
        crash = CrashAdversary({6: 3}, factory, cut_fraction=1.0)
        table = StrategyTable({3: VoteSplitterAdversary([]), 6: crash})
        run_protocol(
            factory,
            config7,
            inputs,
            adversary=table,
            run_full_rounds=4,
        )
        ghost = crash.ghost(6)
        assert ghost is not None
        assert ghost._last_round >= 2  # it really took steps

    def test_byzantine_plus_crash_on_compact_ba(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}

        def make_adversary():
            factory = compact_factory(k=1, value_alphabet=[0, 1])
            return StrategyTable(
                {
                    3: VoteSplitterAdversary([]),
                    6: CrashAdversary({6: 2}, factory, cut_fraction=0.5),
                }
            )

        result = run_compact_byzantine_agreement(
            config7,
            inputs,
            value_alphabet=[0, 1],
            k=1,
            adversary=make_adversary(),
        )
        assert_agreement_and_validity(result, inputs)
