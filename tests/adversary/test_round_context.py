"""RoundContext must expose correct traffic read-only.

The network delivers from the same per-sender dicts *after* the
adversary speaks, so a strategy writing through the context would
silently corrupt correct processors' sends.  Both the public
``correct_outgoing`` mapping and its per-sender rows are mappingproxy
views: writes raise ``TypeError`` and the underlying dicts stay
intact.
"""

import pytest

from repro.adversary.base import RoundContext
from repro.types import BOTTOM, SystemConfig


def _context():
    config = SystemConfig(n=4, t=1)
    outgoing = {
        1: {pid: "one" for pid in config.process_ids},
        3: {pid: "three" for pid in config.process_ids},
    }
    inputs = {pid: 0 for pid in config.process_ids}
    context = RoundContext(config, 1, outgoing, {}, inputs)
    return context, outgoing


def test_correct_outgoing_is_exposed():
    context, _ = _context()
    assert set(context.correct_outgoing) == {1, 3}
    assert context.correct_outgoing[1][2] == "one"
    assert context.correct_message(3, 4) == "three"
    assert context.correct_message(2, 4) is BOTTOM  # no such sender


def test_top_level_mapping_rejects_writes():
    context, outgoing = _context()
    with pytest.raises(TypeError):
        context.correct_outgoing[1] = {}
    with pytest.raises(TypeError):
        del context.correct_outgoing[3]
    assert outgoing[1][2] == "one"


def test_per_sender_rows_reject_writes():
    context, outgoing = _context()
    with pytest.raises(TypeError):
        context.correct_outgoing[1][2] = "forged"
    # mappingproxy omits mutators entirely: no .clear, no .pop, ...
    assert not hasattr(context.correct_outgoing[3], "clear")
    # The engine's delivery dicts are uncorrupted.
    assert outgoing[1] == {pid: "one" for pid in (1, 2, 3, 4)}
    assert outgoing[3] == {pid: "three" for pid in (1, 2, 3, 4)}


def test_private_view_is_also_read_only():
    """Even reaching for the underscore attribute cannot mutate sends."""
    context, outgoing = _context()
    with pytest.raises(TypeError):
        context._correct_outgoing[1] = {}
    with pytest.raises(TypeError):
        context._correct_outgoing[1][4] = "forged"
    assert outgoing[1][4] == "one"
