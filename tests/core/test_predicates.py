"""Tests for correctness predicates."""

from repro.core.predicates import (
    agreement_predicate,
    approximate_agreement_predicate,
    byzantine_agreement_predicate,
    conjunction,
    strong_validity_predicate,
    validity_predicate,
)
from repro.types import BOTTOM


class TestAgreement:
    def test_same_decisions_pass(self):
        predicate = agreement_predicate()
        assert predicate(("v", "v", "v"), frozenset(), ("a", "b", "c"))

    def test_faulty_entries_ignored(self):
        predicate = agreement_predicate()
        assert predicate(("v", "x", "v"), frozenset({2}), ("a", "b", "c"))

    def test_disagreement_fails(self):
        predicate = agreement_predicate()
        assert not predicate(("v", "w", "v"), frozenset(), ("a", "b", "c"))


class TestValidity:
    def test_unanimous_enforced(self):
        predicate = validity_predicate()
        assert predicate(("v", "v"), frozenset(), ("v", "v"))
        assert not predicate(("w", "w"), frozenset(), ("v", "v"))

    def test_mixed_inputs_unconstrained(self):
        predicate = validity_predicate()
        assert predicate(("w", "w"), frozenset(), ("v", "u"))

    def test_faulty_inputs_excluded_from_unanimity(self):
        predicate = validity_predicate()
        # Correct inputs are unanimous "v"; faulty input "z" ignored.
        assert not predicate(
            ("w", "w", BOTTOM), frozenset({3}), ("v", "v", "z")
        )


class TestCombinators:
    def test_conjunction(self):
        always = lambda ans, f, i: True  # noqa: E731
        never = lambda ans, f, i: False  # noqa: E731
        assert conjunction(always, always)((), frozenset(), ())
        assert not conjunction(always, never)((), frozenset(), ())

    def test_byzantine_agreement_is_both(self):
        predicate = byzantine_agreement_predicate()
        assert predicate(("v", "v"), frozenset(), ("v", "v"))
        assert not predicate(("v", "w"), frozenset(), ("v", "w"))
        assert not predicate(("w", "w"), frozenset(), ("v", "v"))


class TestStrongValidity:
    def test_decision_must_be_some_correct_input(self):
        predicate = strong_validity_predicate()
        assert predicate(("a", "b"), frozenset(), ("a", "b"))
        assert not predicate(("z", "z"), frozenset(), ("a", "b"))

    def test_faulty_input_cannot_justify(self):
        predicate = strong_validity_predicate()
        assert not predicate(("z", "z", BOTTOM), frozenset({3}), ("a", "b", "z"))


class TestApproximate:
    def test_close_decisions_in_range_pass(self):
        predicate = approximate_agreement_predicate(0.5)
        assert predicate((1.0, 1.3), frozenset(), (0.0, 2.0))

    def test_spread_beyond_epsilon_fails(self):
        predicate = approximate_agreement_predicate(0.1)
        assert not predicate((1.0, 1.3), frozenset(), (0.0, 2.0))

    def test_out_of_range_fails(self):
        predicate = approximate_agreement_predicate(10.0)
        assert not predicate((5.0, 5.0), frozenset(), (0.0, 2.0))

    def test_faulty_inputs_do_not_widen_range(self):
        predicate = approximate_agreement_predicate(10.0)
        assert not predicate(
            (5.0, 5.0, BOTTOM), frozenset({3}), (0.0, 2.0, 100.0)
        )

    def test_empty_decisions_pass(self):
        predicate = approximate_agreement_predicate(0.1)
        assert predicate((BOTTOM, BOTTOM), frozenset(), (0.0, 2.0))
