"""Property-based tests for :func:`check_fullinfo_consistency`.

Valid state families — built exactly the way the full-information
protocol builds them, with arbitrary legal faulty components — are
always accepted; each of the checker's three conditions is then
falsified by a targeted mutation and must raise
:class:`SimulationMismatch`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays.value_array import uniform_array
from repro.core.simulation import SimulationMismatch, check_fullinfo_consistency

N = 4
ALPHABET = (0, 1)

inputs_strategy = st.tuples(*[st.sampled_from(ALPHABET)] * N)
faulty_strategy = st.sampled_from([None, 1, 2, 3, 4])
rounds_strategy = st.integers(min_value=1, max_value=3)
leaves_strategy = st.lists(
    st.sampled_from(ALPHABET), min_size=20, max_size=20
)


def build_family(inputs, faulty_pid, rounds, leaves):
    """An honest full-information state family with legal faulty parts.

    ``leaves`` feeds the faulty components: component ``q`` of a
    round-``j`` state must be *some* depth-``j-1`` value array, so we
    use uniform arrays over drawn alphabet leaves (faulty senders may
    equivocate — each receiver draws its own leaf).
    """
    correct = [pid for pid in range(1, N + 1) if pid != faulty_pid]
    inputs_map = {pid: inputs[pid - 1] for pid in range(1, N + 1)}
    cursor = iter(leaves * (rounds * N + 1))

    states = {pid: [inputs_map[pid]] for pid in correct}
    for round_number in range(1, rounds + 1):
        fresh = {}
        for pid in correct:
            components = []
            for sender in range(1, N + 1):
                if sender == faulty_pid:
                    components.append(
                        uniform_array(next(cursor), round_number - 1, N)
                    )
                else:
                    components.append(states[sender][round_number - 1])
            fresh[pid] = tuple(components)
        for pid in correct:
            states[pid].append(fresh[pid])
    return states, correct, inputs_map


def check(states, correct, inputs_map):
    check_fullinfo_consistency(
        states, correct, inputs_map, N, value_alphabet=ALPHABET
    )


@settings(max_examples=60, deadline=None)
@given(inputs_strategy, faulty_strategy, rounds_strategy, leaves_strategy)
def test_honest_families_are_accepted(inputs, faulty_pid, rounds, leaves):
    states, correct, inputs_map = build_family(
        inputs, faulty_pid, rounds, leaves
    )
    check(states, correct, inputs_map)  # must not raise


@settings(max_examples=40, deadline=None)
@given(inputs_strategy, rounds_strategy, leaves_strategy)
def test_wrong_depth_faulty_component_rejected(inputs, rounds, leaves):
    faulty_pid = 2
    states, correct, inputs_map = build_family(
        inputs, faulty_pid, rounds, leaves
    )
    victim = correct[0]
    state = list(states[victim][rounds])
    # A round-r state's faulty component must have depth r-1; give it r.
    state[faulty_pid - 1] = uniform_array(leaves[0], rounds, N)
    states[victim][rounds] = tuple(state)
    with pytest.raises(SimulationMismatch):
        check(states, correct, inputs_map)


@settings(max_examples=40, deadline=None)
@given(inputs_strategy, faulty_strategy, rounds_strategy, leaves_strategy)
def test_mismatched_correct_component_rejected(
    inputs, faulty_pid, rounds, leaves
):
    states, correct, inputs_map = build_family(
        inputs, faulty_pid, rounds, leaves
    )
    victim, witness = correct[0], correct[1]
    state = list(states[victim][1])
    # Component for a correct sender must equal the sender's round-0
    # state (its input, a scalar here) — flip it within the alphabet.
    state[witness - 1] = 1 - inputs_map[witness]
    states[victim][1] = tuple(state)
    with pytest.raises(SimulationMismatch):
        check(states, correct, inputs_map)


@settings(max_examples=40, deadline=None)
@given(inputs_strategy, faulty_strategy, rounds_strategy, leaves_strategy)
def test_bad_round0_state_rejected(inputs, faulty_pid, rounds, leaves):
    states, correct, inputs_map = build_family(
        inputs, faulty_pid, rounds, leaves
    )
    victim = correct[0]
    states[victim][0] = 1 - inputs_map[victim]
    with pytest.raises(SimulationMismatch):
        check(states, correct, inputs_map)


@settings(max_examples=40, deadline=None)
@given(inputs_strategy, faulty_strategy, rounds_strategy, leaves_strategy)
def test_non_n_vector_state_rejected(inputs, faulty_pid, rounds, leaves):
    states, correct, inputs_map = build_family(
        inputs, faulty_pid, rounds, leaves
    )
    victim = correct[0]
    state = states[victim][rounds]
    states[victim][rounds] = state + (state[0],)  # width n+1
    with pytest.raises(SimulationMismatch):
        check(states, correct, inputs_map)


@settings(max_examples=40, deadline=None)
@given(inputs_strategy, rounds_strategy, leaves_strategy)
def test_out_of_alphabet_leaf_rejected(inputs, rounds, leaves):
    faulty_pid = 3
    states, correct, inputs_map = build_family(
        inputs, faulty_pid, rounds, leaves
    )
    victim = correct[0]
    state = list(states[victim][rounds])
    state[faulty_pid - 1] = uniform_array(7, rounds - 1, N)
    states[victim][rounds] = tuple(state)
    with pytest.raises(SimulationMismatch):
        check(states, correct, inputs_map)
