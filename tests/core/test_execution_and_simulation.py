"""Tests for execution records and the simulation checkers."""

import pytest

from repro.adversary import SilentAdversary
from repro.core.execution import ExecutionRecord
from repro.core.simulation import (
    SimulationWitness,
    check_fullinfo_consistency,
    check_simulation,
    states_by_round,
)
from repro.errors import SimulationMismatch
from repro.runtime.engine import run_protocol
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, SystemConfig


class TinyProcess(Process):
    def __init__(self, process_id, config, input_value):
        super().__init__(process_id, config)
        self.value = input_value

    def outgoing(self, round_number):
        return broadcast(self.value, self.config)

    def receive(self, round_number, incoming):
        if round_number >= 2:
            self.decide(self.value, round_number)


class TestExecutionRecord:
    def test_projection(self, config4):
        inputs = {p: p for p in config4.process_ids}
        result = run_protocol(
            lambda p, c, v: TinyProcess(p, c, v),
            config4,
            inputs,
            adversary=SilentAdversary([3]),
            record_trace=True,
        )
        record = ExecutionRecord.from_result(result)
        assert record.faulty == frozenset({3})
        assert record.inputs == (1, 2, 3, 4)
        assert record.answers[2] is BOTTOM
        assert record.is_deciding()
        assert record.correct_answers() == {1: 1, 2: 2, 4: 4}

    def test_faulty_messages_empty_without_trace(self, config4):
        inputs = {p: p for p in config4.process_ids}
        result = run_protocol(
            lambda p, c, v: TinyProcess(p, c, v), config4, inputs
        )
        record = ExecutionRecord.from_result(result)
        assert record.faulty_messages == ()


class TestCheckSimulation:
    def test_identity_simulation_passes(self):
        witness = SimulationWitness(
            simulation_functions={1: lambda state: state},
            scaling=lambda round_number: round_number,
        )
        states = {1: ["init", "a", "b"]}
        check_simulation(witness, states, states, correct_ids=[1], rounds=2)

    def test_mismatch_detected(self):
        witness = SimulationWitness(
            simulation_functions={1: lambda state: state},
            scaling=lambda round_number: round_number,
        )
        primed = {1: ["init", "a", "b"]}
        reference = {1: ["init", "a", "X"]}
        with pytest.raises(SimulationMismatch):
            check_simulation(
                witness, primed, reference, correct_ids=[1], rounds=2
            )

    def test_scaling_function_applied(self):
        witness = SimulationWitness(
            simulation_functions={1: lambda state: state},
            scaling=lambda round_number: 2 * round_number,
        )
        primed = {1: [None, "a"]}
        reference = {1: [None, "junk", "a"]}
        check_simulation(witness, primed, reference, correct_ids=[1], rounds=1)


class TestFullinfoConsistency:
    def make_states(self):
        """A consistent fault-free family for n=2 (ids 1, 2)."""
        inputs = {1: "a", 2: "b"}
        round1 = ("a", "b")
        round2 = (round1, round1)
        return {1: ["a", round1, round2], 2: ["b", round1, round2]}, inputs

    def test_consistent_family_passes(self):
        states, inputs = self.make_states()
        check_fullinfo_consistency(states, [1, 2], inputs, n=2)

    def test_wrong_round_zero_rejected(self):
        states, inputs = self.make_states()
        states[1][0] = "z"
        with pytest.raises(SimulationMismatch):
            check_fullinfo_consistency(states, [1, 2], inputs, n=2)

    def test_correct_component_mismatch_rejected(self):
        states, inputs = self.make_states()
        states[1][2] = (("a", "X"), states[1][1])
        with pytest.raises(SimulationMismatch):
            check_fullinfo_consistency(states, [1, 2], inputs, n=2)

    def test_faulty_component_may_differ_but_must_be_legal(self):
        # Processor 2 faulty: its components can vary between correct
        # processors, but must be well-shaped value arrays.
        inputs = {1: "a", 2: "b"}
        states = {1: ["a", ("a", "x")]}
        check_fullinfo_consistency(
            states, [1], inputs, n=2, value_alphabet=["a", "b", "x"]
        )

    def test_faulty_component_with_alien_leaf_rejected(self):
        inputs = {1: "a", 2: "b"}
        states = {1: ["a", ("a", "ALIEN")]}
        with pytest.raises(SimulationMismatch):
            check_fullinfo_consistency(
                states, [1], inputs, n=2, value_alphabet=["a", "b"]
            )

    def test_faulty_component_with_wrong_depth_rejected(self):
        inputs = {1: "a", 2: "b"}
        states = {1: ["a", ("a", ("b", "b"))]}
        with pytest.raises(SimulationMismatch):
            check_fullinfo_consistency(states, [1], inputs, n=2)

    def test_non_vector_state_rejected(self):
        inputs = {1: "a", 2: "b"}
        states = {1: ["a", "not-a-vector"]}
        with pytest.raises(SimulationMismatch):
            check_fullinfo_consistency(states, [1], inputs, n=2)


class TestStatesByRound:
    def test_pivot(self):
        snapshots = {
            1: {1: {"state": "a"}, 2: {"state": "b"}},
            2: {1: {"state": "c"}, 2: {"state": "d"}},
        }
        pivoted = states_by_round(snapshots, key="state")
        assert pivoted[1] == [None, "a", "c"]
        assert pivoted[2] == [None, "b", "d"]
