"""Tests for the round arithmetic of Section 5.1 — including Table 1."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rounds import (
    BlockSchedule,
    actual_rounds_for,
    block,
    k_for_epsilon,
    overhead_factor,
    phase,
    prior,
    simul,
)
from repro.errors import ConfigurationError

# Table 1 of the paper, reconstructed from the definitions (the printed
# table in our source text is OCR-damaged; the caption's invariants —
# 14 actual rounds, 8 simulated rounds, k = 2 — pin these values).
TABLE_1 = {
    "r":     [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    "block": [1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4],
    "prior": [0, 0, 0, 0, 4, 4, 4, 4, 8, 8, 8, 8, 12, 12],
    "phase": [1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4, 1, 2],
    "simul": [1, 2, 2, 2, 3, 4, 4, 4, 5, 6, 6, 6, 7, 8],
}


class TestTable1:
    def test_block_row(self):
        assert [block(r, 2) for r in TABLE_1["r"]] == TABLE_1["block"]

    def test_prior_row(self):
        assert [prior(r, 2) for r in TABLE_1["r"]] == TABLE_1["prior"]

    def test_phase_row(self):
        assert [phase(r, 2) for r in TABLE_1["r"]] == TABLE_1["phase"]

    def test_simul_row(self):
        assert [simul(r, 2) for r in TABLE_1["r"]] == TABLE_1["simul"]

    def test_caption_invariant(self):
        """14 actual rounds simulate exactly 8 rounds at k = 2."""
        assert simul(14, 2) == 8


class TestRoundFunctions:
    @given(st.integers(1, 500), st.integers(1, 6))
    def test_phase_in_range(self, round_number, k):
        assert 1 <= phase(round_number, k) <= k + 2

    @given(st.integers(1, 500), st.integers(1, 6))
    def test_prior_is_last_round_of_previous_block(self, round_number, k):
        assert prior(round_number, k) == (block(round_number, k) - 1) * (k + 2)

    @given(st.integers(1, 500), st.integers(1, 6))
    def test_simul_non_decreasing(self, round_number, k):
        assert simul(round_number + 1, k) >= simul(round_number, k)

    @given(st.integers(1, 500), st.integers(1, 6))
    def test_simul_gains_at_most_one(self, round_number, k):
        assert simul(round_number + 1, k) - simul(round_number, k) in (0, 1)

    @given(st.integers(1, 500), st.integers(1, 6))
    def test_simul_is_onto(self, target, k):
        """Every simulated round count is reached — scaling is onto."""
        round_number = actual_rounds_for(target, k)
        assert simul(round_number, k) == target

    @given(st.integers(1, 500), st.integers(1, 6))
    def test_exactly_k_progress_rounds_per_block(self, round_number, k):
        schedule = BlockSchedule(k)
        start = schedule.first_round_of_block(schedule.block(round_number))
        progress = sum(
            1
            for r in range(start, start + schedule.block_length)
            if schedule.is_progress_round(r)
        )
        assert progress == k

    def test_rounds_are_one_based(self):
        with pytest.raises(ConfigurationError):
            block(0, 2)

    def test_k_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            phase(1, 0)


class TestActualRounds:
    def test_single_block(self):
        assert actual_rounds_for(2, k=2) == 2

    def test_block_boundary(self):
        # 3 simulated rounds with k = 2: one full block (4) plus 1.
        assert actual_rounds_for(3, k=2) == 5

    def test_exact_multiple(self):
        assert actual_rounds_for(4, k=2) == 6  # 4 + 2 tail progress

    def test_overhead_one(self):
        assert actual_rounds_for(3, k=2, overhead=1) == 4

    @given(st.integers(1, 100), st.integers(1, 6))
    def test_corollary10_guarantee(self, simulated, k):
        """actual <= (1 + 2/k) * simulated — the Corollary 10 bound."""
        actual = actual_rounds_for(simulated, k)
        assert actual <= (1 + 2 / k) * simulated

    @given(st.integers(1, 100), st.integers(1, 6))
    def test_last_round_is_progress(self, simulated, k):
        """The decision round always lands on a progress phase."""
        schedule = BlockSchedule(k)
        assert schedule.is_progress_round(schedule.actual_rounds_for(simulated))


class TestEpsilon:
    def test_paper_values(self):
        assert k_for_epsilon(1.0) == 2
        assert k_for_epsilon(0.5) == 4
        assert k_for_epsilon(2.0) == 1

    def test_overhead_one_halves_k(self):
        assert k_for_epsilon(1.0, overhead=1) == 1

    @given(st.floats(min_value=0.05, max_value=4.0))
    def test_factor_within_epsilon(self, epsilon):
        k = k_for_epsilon(epsilon)
        assert overhead_factor(k) <= 1 + epsilon + 1e-9

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            k_for_epsilon(0)


class TestBlockSchedule:
    def test_structural_queries_standard(self):
        schedule = BlockSchedule(k=2)
        assert schedule.is_progress_round(1)
        assert schedule.is_progress_round(2)
        assert schedule.is_rebroadcast_round(3)
        assert schedule.is_agreement_start_round(4)
        assert schedule.is_block_start(5)

    def test_structural_queries_fast(self):
        schedule = BlockSchedule(k=2, overhead=1)
        assert schedule.block_length == 3
        assert schedule.is_rebroadcast_round(3)
        assert schedule.is_agreement_start_round(4)  # next block's phase 1
        assert not schedule.is_agreement_start_round(1)

    def test_table_method_matches_module_functions(self):
        schedule = BlockSchedule(k=2)
        rows = schedule.table(14)
        assert [row["simul"] for row in rows] == TABLE_1["simul"]

    def test_first_round_of_block(self):
        schedule = BlockSchedule(k=3)
        assert schedule.first_round_of_block(1) == 1
        assert schedule.first_round_of_block(2) == 6

    def test_progress_rounds_iterator(self):
        schedule = BlockSchedule(k=2)
        assert list(schedule.progress_rounds(8)) == [1, 2, 5, 6]

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockSchedule(k=2, overhead=3)
