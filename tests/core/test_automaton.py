"""Tests for the Section 3.1 automaton formalism."""

import pytest

from repro.adversary import SilentAdversary
from repro.core.automaton import (
    AutomatonProcess,
    AutomatonProtocol,
    automaton_factory,
    run_automaton_locally,
)
from repro.errors import ConfigurationError
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig


class MajorityOnce(AutomatonProtocol):
    """One exchange round, then decide the majority of inputs."""

    def message(self, sender, receiver, state):
        return state if not isinstance(state, tuple) else state[0]

    def transition(self, process_id, messages):
        tally = {}
        for message in messages:
            tally[message] = tally.get(message, 0) + 1
        winner = min(tally, key=lambda value: (-tally[value], repr(value)))
        return (winner, messages)

    def decision(self, process_id, state):
        return state[0] if isinstance(state, tuple) else BOTTOM

    @property
    def rounds_to_decide(self):
        return 1


@pytest.fixture
def protocol(config4):
    return MajorityOnce(config4, [0, 1])


class TestAutomatonProtocol:
    def test_initial_state_is_input(self, protocol):
        assert protocol.initial_state(1, 0) == 0

    def test_rejects_off_alphabet_input(self, protocol):
        with pytest.raises(ConfigurationError):
            protocol.initial_state(1, "x")

    def test_empty_alphabet_rejected(self, config4):
        with pytest.raises(ConfigurationError):
            MajorityOnce(config4, [])

    def test_default_message_coercion(self, protocol):
        assert protocol.coerce_message(1, 2, BOTTOM, 1) == 0  # first of V
        assert protocol.coerce_message(1, 2, "raw", 1) == "raw"


class TestAutomatonProcess:
    def test_runs_on_engine(self, config4, protocol):
        inputs = {1: 1, 2: 1, 3: 0, 4: 1}
        result = run_protocol(
            automaton_factory(protocol), config4, inputs, max_rounds=3
        )
        assert set(result.decisions.values()) == {1}
        assert result.rounds == 1

    def test_absent_faulty_message_coerced(self, config4, protocol):
        inputs = {1: 1, 2: 1, 3: 1, 4: 0}
        result = run_protocol(
            automaton_factory(protocol),
            config4,
            inputs,
            adversary=SilentAdversary([4]),
            max_rounds=3,
        )
        # The missing message became V[0] = 0; majority of (1,1,1,0)=1.
        assert set(result.decisions.values()) == {1}

    def test_later_gamma_values_ignored_after_decision(self, config4):
        class FlipFlop(MajorityOnce):
            def decision(self, process_id, state):
                if not isinstance(state, tuple):
                    return BOTTOM
                return state[1][0]  # varies round to round

        protocol = FlipFlop(config4, [0, 1])
        inputs = {1: 1, 2: 0, 3: 1, 4: 0}
        result = run_protocol(
            automaton_factory(protocol), config4, inputs, run_full_rounds=3
        )
        # Decisions were fixed in round 1 and never changed.
        assert all(r == 1 for r in result.decision_rounds.values())

    def test_snapshot_exposes_state(self, config4, protocol):
        process = AutomatonProcess(1, config4, 1, protocol)
        assert process.snapshot()["state"] == 1


class TestLocalRunner:
    def test_matches_engine_fault_free(self, config4, protocol):
        inputs = {1: 1, 2: 1, 3: 0, 4: 1}
        local = run_automaton_locally(protocol, inputs, rounds=2)
        engine = run_protocol(
            automaton_factory(protocol), config4, inputs, run_full_rounds=2
        )
        for process_id in config4.process_ids:
            assert local[process_id][2] == engine.processes[process_id].state

    def test_round_zero_states_are_inputs(self, config4, protocol):
        inputs = {1: 1, 2: 0, 3: 0, 4: 1}
        local = run_automaton_locally(protocol, inputs, rounds=1)
        for process_id, input_value in inputs.items():
            assert local[process_id][0] == input_value
