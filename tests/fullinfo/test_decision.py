"""Tests for Theorem 2's reconstruction and the EIG decision rule."""

import pytest

from repro.adversary import CollusionAdversary, EquivocatingAdversary
from repro.core.automaton import AutomatonProtocol, run_automaton_locally
from repro.errors import ProtocolViolation
from repro.fullinfo.decision import (
    DerivedDecisionRule,
    eig_byzantine_decision,
    make_eig_decision_rule,
    reconstruct_state,
)
from repro.fullinfo.protocol import full_information_factory
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig
from repro.arrays.value_array import uniform_array


class SumProtocol(AutomatonProtocol):
    """Toy consensus-ish protocol: state accumulates message sums."""

    def message(self, sender, receiver, state):
        return state if isinstance(state, int) else state[0]

    def transition(self, process_id, messages):
        return (sum(messages), process_id)

    def decision(self, process_id, state):
        return BOTTOM


class TestReconstruction:
    def test_depth_zero_is_initial_state(self, config4):
        protocol = SumProtocol(config4, [0, 1, 2, 3])
        assert reconstruct_state(protocol, 1, 2) == 2

    def test_matches_native_execution(self, config4):
        """f_p on the real full-information state equals running P."""
        protocol = SumProtocol(config4, [0, 1, 2, 3])
        inputs = {1: 0, 2: 1, 3: 2, 4: 3}
        native = run_automaton_locally(protocol, inputs, rounds=3)
        fullinfo = run_protocol(
            full_information_factory(value_alphabet=[0, 1, 2, 3]),
            config4,
            inputs,
            run_full_rounds=3,
        )
        for process_id in config4.process_ids:
            reconstructed = reconstruct_state(
                protocol, process_id, fullinfo.processes[process_id].state
            )
            assert reconstructed == native[process_id][3]

    def test_memoisation_handles_shared_subtrees(self, config4):
        protocol = SumProtocol(config4, [0, 1, 2, 3])
        # A deep state with heavy sharing must not blow up.
        state = uniform_array(1, depth=6, n=4)
        result = reconstruct_state(protocol, 1, state)
        assert isinstance(result, tuple)


class TestDerivedDecisionRule:
    def test_composes_gamma_with_reconstruction(self, config4):
        class DecideAtTwo(SumProtocol):
            def decision(self, process_id, state):
                if isinstance(state, tuple):
                    return state[0] % 7
                return BOTTOM

        protocol = DecideAtTwo(config4, [0, 1, 2, 3])
        rule = DerivedDecisionRule(protocol, horizon=2)
        inputs = {1: 0, 2: 1, 3: 2, 4: 3}
        native = run_automaton_locally(protocol, inputs, rounds=2)
        state = run_protocol(
            full_information_factory([0, 1, 2, 3]),
            config4,
            inputs,
            run_full_rounds=2,
        ).processes[1].state
        assert rule(state, 2, 1) == protocol.decision(1, native[1][2])

    def test_horizon_suppresses_early_evaluation(self, config4):
        protocol = SumProtocol(config4, [0, 1, 2, 3])
        rule = DerivedDecisionRule(protocol, horizon=5)
        assert rule((0, 1, 2, 3), 2, 1) is BOTTOM


class TestEIGDecision:
    def test_requires_correct_depth(self, config4):
        with pytest.raises(ProtocolViolation):
            eig_byzantine_decision((0, 1, 0, 1), n=4, t=1, process_id=1, default=0)

    def test_fault_free_unanimity(self, config4):
        state = uniform_array(1, depth=2, n=4)
        assert eig_byzantine_decision(state, 4, 1, 1, default=0) == 1

    def test_garbage_leaves_normalised(self, config4):
        state = uniform_array(1, depth=2, n=4)
        # poison one leaf with an alien value
        poisoned = (state[0], state[1], state[2], (1, 1, 1, "junk"))
        value = eig_byzantine_decision(
            poisoned, 4, 1, 1, default=0, alphabet=[0, 1]
        )
        assert value == 1

    def test_agreement_under_adversaries(self, config7):
        """All correct processors resolve identical decisions."""
        rule = make_eig_decision_rule(config7.t, default=0, alphabet=[0, 1])
        for adversary in (
            EquivocatingAdversary([3, 6], 0, 1),
            CollusionAdversary([1, 7]),
        ):
            inputs = {p: p % 2 for p in config7.process_ids}
            result = run_protocol(
                full_information_factory(
                    [0, 1], decision_rule=rule, horizon=config7.t + 1
                ),
                config7,
                inputs,
                adversary=adversary,
                max_rounds=config7.t + 2,
            )
            assert len(result.decided_values()) == 1

    def test_validity_under_adversaries(self, config7):
        rule = make_eig_decision_rule(config7.t, default=0, alphabet=[0, 1])
        inputs = {p: 1 for p in config7.process_ids}
        result = run_protocol(
            full_information_factory(
                [0, 1], decision_rule=rule, horizon=config7.t + 1
            ),
            config7,
            inputs,
            adversary=EquivocatingAdversary([2, 5], 0, 1),
            max_rounds=config7.t + 2,
        )
        assert result.decided_values() == {1}

    def test_rule_waits_for_horizon(self):
        rule = make_eig_decision_rule(2, default=0)
        assert rule((0, 1), 1, 1) is BOTTOM
