"""Tests for interactive consistency (the PSL vector problem)."""

import pytest

from repro.compact.protocol import compact_factory
from repro.errors import ProtocolViolation
from repro.fullinfo.interactive import (
    interactive_consistency_decision,
    make_interactive_consistency_rule,
)
from repro.fullinfo.protocol import full_information_factory
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig

from tests.conftest import byzantine_adversaries

ALPHABET = [0, 1, 2]


def run_ic_fullinfo(config, inputs, adversary=None, seed=0):
    rule = make_interactive_consistency_rule(
        config.t, default=0, alphabet=ALPHABET
    )
    return run_protocol(
        full_information_factory(
            ALPHABET, decision_rule=rule, horizon=config.t + 1
        ),
        config,
        inputs,
        adversary=adversary,
        max_rounds=config.t + 2,
        seed=seed,
    )


def run_ic_compact(config, inputs, k=2, adversary=None, seed=0):
    rule = make_interactive_consistency_rule(
        config.t, default=0, alphabet=ALPHABET
    )
    from repro.core.rounds import BlockSchedule

    deadline = BlockSchedule(k).actual_rounds_for(config.t + 1)
    return run_protocol(
        compact_factory(
            k=k,
            value_alphabet=ALPHABET,
            decision_rule=rule,
            horizon=config.t + 1,
        ),
        config,
        inputs,
        adversary=adversary,
        max_rounds=deadline + 1,
        seed=seed,
    )


def assert_ic_conditions(result, inputs):
    vectors = list(result.decisions.values())
    assert all(isinstance(vector, tuple) for vector in vectors)
    # (a) one common vector
    assert len(set(vectors)) == 1
    vector = vectors[0]
    # (b) correct components are the correct inputs
    for process_id in result.processes:
        assert vector[process_id - 1] == inputs[process_id]


class TestDecisionFunction:
    def test_requires_full_depth(self, config4):
        with pytest.raises(ProtocolViolation):
            interactive_consistency_decision((0, 1, 0, 1), 4, 1, default=0)

    def test_fault_free_vector_is_input_vector(self, config4):
        inputs = {1: 0, 2: 1, 3: 2, 4: 1}
        result = run_ic_fullinfo(config4, inputs)
        assert set(result.decisions.values()) == {(0, 1, 2, 1)}


class TestFullInformationIC:
    @pytest.mark.parametrize("faulty", [(1,), (3,)])
    def test_sweep_n4(self, config4, faulty):
        inputs = {p: p % 3 for p in config4.process_ids}
        for adversary in byzantine_adversaries(list(faulty), values=ALPHABET):
            result = run_ic_fullinfo(config4, inputs, adversary=adversary)
            assert_ic_conditions(result, inputs)

    @pytest.mark.parametrize("faulty", [(2, 6)])
    def test_sweep_n7(self, config7, faulty):
        inputs = {p: p % 3 for p in config7.process_ids}
        for adversary in byzantine_adversaries(list(faulty), values=ALPHABET):
            result = run_ic_fullinfo(config7, inputs, adversary=adversary)
            assert_ic_conditions(result, inputs)


class TestCompactIC:
    """Interactive consistency through the canonical form — a third
    application of the transformation."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_sweep(self, config4, k):
        inputs = {p: p % 3 for p in config4.process_ids}
        for adversary in byzantine_adversaries([2], values=ALPHABET):
            result = run_ic_compact(config4, inputs, k=k, adversary=adversary)
            assert_ic_conditions(result, inputs)

    def test_matches_fullinfo_fault_free(self, config4):
        inputs = {p: p % 3 for p in config4.process_ids}
        compact = run_ic_compact(config4, inputs)
        fullinfo = run_ic_fullinfo(config4, inputs)
        assert compact.decisions == fullinfo.decisions

    def test_majority_of_vector_gives_byzantine_agreement(self, config7):
        """IC subsumes BA: majority over the agreed vector."""
        inputs = {p: p % 2 for p in config7.process_ids}
        for adversary in byzantine_adversaries([3, 6]):
            result = run_ic_compact(config7, inputs, k=1, adversary=adversary)
            vector = next(iter(set(result.decisions.values())))
            tally = {}
            for value in vector:
                tally[value] = tally.get(value, 0) + 1
            majority = max(tally, key=lambda value: (tally[value], repr(value)))
            # agreement: every correct processor derives the same value
            assert majority in (0, 1)
