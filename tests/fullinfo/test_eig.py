"""Tests for the EIG tree view of full-information states."""

import pytest

from repro.errors import ProtocolViolation
from repro.fullinfo.eig import EIGView
from repro.fullinfo.protocol import full_information_factory
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig


@pytest.fixture
def view(config4):
    inputs = {1: "a", 2: "b", 3: "c", 4: "d"}
    result = run_protocol(
        full_information_factory(value_alphabet=["a", "b", "c", "d"]),
        config4,
        inputs,
        run_full_rounds=2,
    )
    return EIGView(result.processes[1].state, config4.n, owner=1), inputs


class TestStructure:
    def test_depth(self, view):
        tree, _ = view
        assert tree.depth == 2

    def test_leaf_paths_reverse_chronological(self, view):
        tree, inputs = view
        # Path (q1, q2): q1 said that q2's input was ...
        assert tree.leaf((3, 2)) == inputs[2]

    def test_subtree_is_senders_previous_state(self, view):
        tree, inputs = view
        assert tree.subtree((2,)) == ("a", "b", "c", "d")

    def test_wrong_length_leaf_path_rejected(self, view):
        tree, _ = view
        with pytest.raises(ProtocolViolation):
            tree.leaf((1,))

    def test_leaves_enumerates_all(self, view):
        tree, _ = view
        leaves = list(tree.leaves())
        assert len(leaves) == 4**2


class TestChronologicalChains:
    def test_full_chain(self, view):
        tree, inputs = view
        # sigma = (source, relayer): relayer said source's input was...
        assert tree.val((2, 3)) == inputs[2]

    def test_short_chain_via_self_padding(self, view):
        tree, inputs = view
        # What the owner itself heard from 3 in round 1: 3's input.
        assert tree.val((3,)) == inputs[3]

    def test_chain_length_bounds(self, view):
        tree, _ = view
        with pytest.raises(ProtocolViolation):
            tree.val(())
        with pytest.raises(ProtocolViolation):
            tree.val((1, 2, 3))

    def test_distinct_chains_count(self, view):
        tree, _ = view
        assert len(list(tree.distinct_chains(2))) == 4 * 3
        assert len(list(tree.distinct_chains(1))) == 4

    def test_distinct_chains_have_distinct_labels(self, view):
        tree, _ = view
        for chain in tree.distinct_chains(3):
            assert len(set(chain)) == len(chain)
