"""Interned vs. plain-tuple protocol runs: identical bytes, fewer walks.

The hash-consing kernel's promise to the protocols is that ``intern=``
is *purely* a performance switch.  These tests pin that promise at the
observable level — pickled sweep reports byte-identical across the two
modes — and pin the asymptotics at the mechanism level: the interned
receive path performs no per-round validation walks (zero
``validate_array`` calls) and the store holds O(rounds * n) nodes
after a deep run, not O(n ** rounds).
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.agreement.eig_agreement import eig_agreement_factory
from repro.analysis.sweeps import standard_adversary_makers, sweep
from repro.arrays.store import clear_shared_stores, shared_store
from repro.core.predicates import byzantine_agreement_predicate
from repro.fullinfo import protocol as fullinfo_protocol
from repro.fullinfo.decision import (
    DerivedDecisionRule,
    eig_byzantine_decision,
)
from repro.fullinfo.protocol import (
    FullInformationAutomaton,
    full_information_factory,
    full_information_sizer,
)
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig


@pytest.fixture(autouse=True)
def _fresh_shared_stores():
    clear_shared_stores()
    yield
    clear_shared_stores()


def _eig_sweep(config, intern, seeds=(0,)):
    return sweep(
        eig_agreement_factory(config, [0, 1], default=0, intern=intern),
        config,
        input_patterns=[{p: p % 2 for p in config.process_ids}],
        fault_sets=[(1,)],
        adversary_makers=standard_adversary_makers(),
        seeds=seeds,
        predicate=byzantine_agreement_predicate(),
        max_rounds=config.t + 2,
        sizer=full_information_sizer(2, config.n),
        workers=1,
    )


def test_interned_and_plain_sweeps_are_byte_identical():
    config = SystemConfig(n=4, t=1)
    interned = _eig_sweep(config, intern=True)
    plain = _eig_sweep(config, intern=False)
    assert pickle.dumps(interned) == pickle.dumps(plain)
    assert len(interned.violations) == 0
    assert interned.total_bits() == plain.total_bits()


def test_deep_run_matches_plain_where_plain_is_feasible():
    config = SystemConfig(n=3, t=0)
    states = {}
    for intern in (True, False):
        result = run_protocol(
            full_information_factory([0, 1], intern=intern),
            config,
            inputs={1: 0, 2: 1, 3: 1},
            run_full_rounds=6,
            sizer=full_information_sizer(2, config.n),
        )
        states[intern] = {
            pid: process.state for pid, process in result.processes.items()
        }
    assert states[True] == states[False]
    # Pickles decode to the plain structure (pickle *streams* may
    # differ: interning shares more objects, so memo refs land in
    # different spots — the decoded value is what must agree).
    revived = pickle.loads(pickle.dumps(states[True]))
    assert revived == states[False]

    def all_plain(value):
        if isinstance(value, tuple):
            assert type(value) is tuple
            for component in value:
                all_plain(component)

    for state in revived.values():
        all_plain(state)


def test_interned_receive_skips_validation_walks(monkeypatch):
    calls = {"n": 0}
    real = fullinfo_protocol.validate_array

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(fullinfo_protocol, "validate_array", counting)
    config = SystemConfig(n=3, t=0)
    rounds = 8
    run_protocol(
        full_information_factory([0, 1], intern=True),
        config,
        inputs={1: 0, 2: 1, 3: 1},
        run_full_rounds=rounds,
    )
    interned_calls = calls["n"]
    calls["n"] = 0
    run_protocol(
        full_information_factory([0, 1], intern=False),
        config,
        inputs={1: 0, 2: 1, 3: 1},
        run_full_rounds=rounds,
    )
    assert interned_calls == 0
    assert calls["n"] >= rounds * config.n


def test_store_stays_small_on_deep_runs():
    # 12 rounds at n = 3: final states stand for 3 ** 11 = 177147
    # leaves each.  The store must hold O(rounds * n) canonical nodes —
    # every broadcast state is one new node over last round's children.
    config = SystemConfig(n=3, t=0)
    rounds = 12
    run_protocol(
        full_information_factory([0, 1], intern=True),
        config,
        inputs={1: 0, 2: 1, 3: 1},
        run_full_rounds=rounds,
        sizer=full_information_sizer(2, config.n),
    )
    assert len(shared_store(config.n)) <= rounds * config.n


# -- the EIG decision rule against a reference resolver ----------------------


def reference_eig_decision(state, n, t, default, alphabet):
    """The pre-optimization resolver: recursive, repr-sorting tallies."""
    legal = frozenset(alphabet)
    depth = t + 1

    def normalise(leaf):
        try:
            return leaf if leaf in legal else default
        except TypeError:
            return default

    def leaf_at(node, path):
        for pid in path:
            node = node[pid - 1]
        return node

    def resolve(path):
        if len(path) == depth:
            return normalise(leaf_at(state, path))
        tally = {}
        children = 0
        for relayer in range(1, n + 1):
            if relayer in path:
                continue
            children += 1
            vote = resolve((relayer,) + path)
            tally[vote] = tally.get(vote, 0) + 1
        best_value, best_count = default, 0
        for vote, count in sorted(tally.items(), key=lambda item: repr(item[0])):
            if count > best_count:
                best_value, best_count = vote, count
        return best_value if best_count * 2 > children else default

    return resolve(())


def depth_arrays(n, depth, leaves):
    def build(d):
        if d == 0:
            return leaves
        return st.tuples(*[build(d - 1)] * n)

    return build(depth)


@given(
    depth_arrays(
        4, 2, st.sampled_from([0, 1, 2, "junk"])
    ),
    st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_eig_matches_reference_resolver(state, intern):
    n, t = 4, 1
    if intern:
        state = shared_store(n).intern(state)
    decision = eig_byzantine_decision(
        state, n, t, process_id=1, default=0, alphabet=[0, 1]
    )
    assert decision == reference_eig_decision(
        state, n, t, default=0, alphabet=[0, 1]
    )


def test_eig_tie_resolves_to_default():
    # Root tally 2 vs 2: no strict majority, so the decision is the
    # shared default no matter how the tie is ordered.
    n, t = 4, 1
    column = (0, 0, 1, 1)
    state = tuple(column for _ in range(n))
    for default in (0, 1):
        assert eig_byzantine_decision(
            state, n, t, process_id=1, default=default, alphabet=[0, 1]
        ) == default
        assert reference_eig_decision(
            state, n, t, default=default, alphabet=[0, 1]
        ) == default


def test_eig_uniform_interned_shortcut():
    n, t = 5, 1
    for value, expected in ((1, 1), ("junk", 0)):
        plain = tuple(tuple(value for _ in range(n)) for _ in range(n))
        node = shared_store(n).intern(plain)
        fast = eig_byzantine_decision(
            node, n, t, process_id=1, default=0, alphabet=[0, 1]
        )
        slow = eig_byzantine_decision(
            plain, n, t, process_id=1, default=0, alphabet=[0, 1]
        )
        assert fast == slow == expected


# -- DerivedDecisionRule's persistent reconstruction memo --------------------


def test_derived_rule_reuses_reconstruction_across_rounds():
    config = SystemConfig(n=3, t=0)
    automaton = FullInformationAutomaton(config, [0, 1])
    transitions = {"n": 0}
    real_transition = automaton.transition

    def counting(process_id, messages):
        transitions["n"] += 1
        return real_transition(process_id, messages)

    automaton.transition = counting
    rule = DerivedDecisionRule(automaton, horizon=0)
    store = shared_store(config.n)
    state_one = store.intern((0, 1, 1))
    state_two = store.intern((state_one, state_one, state_one))

    assert rule(state_one, 1, 1) is BOTTOM  # no decision function: bottom
    first = transitions["n"]
    assert first > 0
    rule(state_one, 1, 1)
    assert transitions["n"] == first  # full memo hit
    rule(state_two, 2, 1)
    # Only the new top layer reconstructs: one transition per
    # (process, new node) pair, not another full recursion.
    assert transitions["n"] <= first + config.n ** 2
