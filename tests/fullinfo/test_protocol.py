"""Tests for Protocol 1: the full-information protocol."""

import pytest

from repro.adversary import (
    EquivocatingAdversary,
    MalformedArrayAdversary,
    SilentAdversary,
)
from repro.arrays.value_array import array_depth, array_leaves
from repro.fullinfo.protocol import (
    FullInformationAutomaton,
    full_information_factory,
    full_information_sizer,
)
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig


def run_fullinfo(config, inputs, adversary=None, rounds=3, **kwargs):
    return run_protocol(
        full_information_factory(value_alphabet=[0, 1]),
        config,
        inputs,
        adversary=adversary,
        run_full_rounds=rounds,
        **kwargs,
    )


class TestStateGrowth:
    def test_state_depth_equals_round(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_fullinfo(config4, inputs, rounds=3)
        for process in result.processes.values():
            assert array_depth(process.state, config4.n) == 3

    def test_round_one_state_is_input_vector(self, config4):
        inputs = {1: 1, 2: 0, 3: 1, 4: 0}
        result = run_fullinfo(config4, inputs, rounds=1)
        for process in result.processes.values():
            assert process.state == (1, 0, 1, 0)

    def test_states_identical_when_fault_free(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_fullinfo(config4, inputs, rounds=3)
        states = {repr(process.state) for process in result.processes.values()}
        assert len(states) == 1

    def test_self_component_is_own_previous_state(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        two = run_fullinfo(config4, inputs, rounds=2)
        three = run_fullinfo(config4, inputs, rounds=3)
        for process_id, process in three.processes.items():
            assert (
                process.state[process_id - 1]
                == two.processes[process_id].state
            )


class TestMalformedHandling:
    def test_malformed_substituted_with_own_state(self, config4):
        inputs = {p: 1 for p in config4.process_ids}
        result = run_fullinfo(
            config4, inputs, adversary=MalformedArrayAdversary([3]), rounds=3
        )
        for process in result.processes.values():
            assert array_depth(process.state, config4.n) == 3
            assert all(leaf in (0, 1) for leaf in array_leaves(process.state))

    def test_silence_substituted(self, config4):
        inputs = {p: 1 for p in config4.process_ids}
        result = run_fullinfo(
            config4, inputs, adversary=SilentAdversary([3]), rounds=2
        )
        for process in result.processes.values():
            assert array_depth(process.state, config4.n) == 2

    def test_alien_values_rejected(self, config4):
        inputs = {p: 1 for p in config4.process_ids}
        result = run_fullinfo(
            config4,
            inputs,
            adversary=EquivocatingAdversary([3], "alien", 0),
            rounds=2,
        )
        for process in result.processes.values():
            assert all(leaf in (0, 1) for leaf in array_leaves(process.state))


class TestDecisionPlumbing:
    def test_rule_fires_at_horizon(self, config4):
        observed = []

        def rule(state, round_number, process_id):
            observed.append(round_number)
            return 1

        result = run_protocol(
            full_information_factory([0, 1], decision_rule=rule, horizon=2),
            config4,
            {p: 1 for p in config4.process_ids},
            run_full_rounds=2,
        )
        assert set(observed) == {2}
        assert set(result.decisions.values()) == {1}

    def test_no_rule_means_no_decisions(self, config4):
        result = run_fullinfo(config4, {p: 1 for p in config4.process_ids})
        assert all(d is BOTTOM for d in result.decisions.values())


class TestSizer:
    def test_matches_exact_model(self, config4):
        from repro.analysis.complexity import full_information_message_bits

        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_fullinfo(
            config4,
            inputs,
            rounds=3,
            sizer=full_information_sizer(2, config4.n),
        )
        expected = sum(
            config4.n**2 * full_information_message_bits(config4.n, r, 2)
            for r in range(1, 4)
        )
        assert result.metrics.total_bits == expected

    def test_exponential_growth_per_round(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_fullinfo(
            config7,
            inputs,
            rounds=3,
            sizer=full_information_sizer(2, config7.n),
        )
        by_round = dict(result.metrics.bits_by_round())
        assert by_round[2] / by_round[1] > config7.n / 2
        assert by_round[3] / by_round[2] > config7.n / 2


class TestAutomatonForm:
    def test_automaton_matches_process_runs(self, config4):
        from repro.core.automaton import automaton_factory

        inputs = {p: p % 2 for p in config4.process_ids}
        automaton = FullInformationAutomaton(config4, [0, 1])
        via_automaton = run_protocol(
            automaton_factory(automaton),
            config4,
            inputs,
            run_full_rounds=2,
        )
        via_process = run_fullinfo(config4, inputs, rounds=2)
        for process_id in config4.process_ids:
            assert (
                via_automaton.processes[process_id].state
                == via_process.processes[process_id].state
            )
