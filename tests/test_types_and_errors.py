"""Tests for the foundational types module and exception hierarchy."""

import pickle

import pytest

from repro import errors
from repro.types import BOTTOM, SystemConfig, is_bottom


class TestBottom:
    def test_singleton(self):
        from repro.types import _Bottom

        assert _Bottom() is BOTTOM

    def test_falsy(self):
        assert not BOTTOM
        assert bool(BOTTOM) is False

    def test_repr(self):
        assert repr(BOTTOM) == "BOTTOM"

    def test_is_bottom(self):
        assert is_bottom(BOTTOM)
        assert not is_bottom(None)  # None is a legal payload, not absence
        assert not is_bottom(0)
        assert not is_bottom(())

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_hashable_and_usable_in_tuples(self):
        container = {(1, BOTTOM): "x"}
        assert container[(1, BOTTOM)] == "x"


class TestSystemConfig:
    def test_process_ids_one_based(self):
        config = SystemConfig(n=4, t=1)
        assert config.process_ids == (1, 2, 3, 4)

    def test_quorum_predicates(self):
        assert SystemConfig(n=7, t=2).requires_byzantine_quorum()
        assert not SystemConfig(n=6, t=2).requires_byzantine_quorum()
        assert SystemConfig(n=9, t=2).requires_fast_quorum()
        assert not SystemConfig(n=8, t=2).requires_fast_quorum()

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(n=0, t=0)
        with pytest.raises(ValueError):
            SystemConfig(n=4, t=-1)
        with pytest.raises(ValueError):
            SystemConfig(n=3, t=3)  # t must be < n

    def test_frozen(self):
        config = SystemConfig(n=4, t=1)
        with pytest.raises(Exception):
            config.n = 5

    def test_t_zero_allowed(self):
        config = SystemConfig(n=1, t=0)
        assert config.requires_byzantine_quorum()


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "ProtocolViolation",
            "SimulationMismatch",
            "DecisionError",
            "EncodingError",
            "AdversaryError",
        ):
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.DecisionError("x")

    def test_distinct_from_builtins(self):
        assert not issubclass(errors.ConfigurationError, ValueError)
