"""EXPERIMENTS.md's artifact pointers must resolve.

Every results file the experiment log references is produced by a
benchmark; after a bench run the files exist, are non-empty, and carry
the experiment ids the log quotes.  (Run ``pytest benchmarks/
--benchmark-only`` first; the repository ships with the files already
generated, so this also passes on a fresh checkout.)
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
RESULTS = ROOT / "benchmarks" / "results"
EXPERIMENTS = ROOT / "EXPERIMENTS.md"

EXPECTED_FILES = {
    "table1.txt": "Table 1",
    "avalanche.txt": "E1",
    "rounds.txt": "E2",
    "bits.txt": "E3",
    "comparison.txt": "E4",
    "simulation_fidelity.txt": "E5",
    "transform.txt": "E6",
    "fast_variant.txt": "E7",
    "benign.txt": "E8",
    "robustness.txt": "E9",
    "ablation.txt": "A1",
    "extensions.txt": "X1",
}


@pytest.mark.parametrize(
    "filename,marker", sorted(EXPECTED_FILES.items())
)
def test_result_file_exists_with_marker(filename, marker):
    path = RESULTS / filename
    assert path.exists(), f"missing {path}; run pytest benchmarks/ --benchmark-only"
    text = path.read_text()
    assert text.strip()
    assert marker in text


def test_experiments_log_references_only_real_files():
    text = EXPERIMENTS.read_text()
    for name in re.findall(r"`(\w+\.txt)`", text):
        assert (RESULTS / name).exists(), f"EXPERIMENTS.md points at missing {name}"


def test_every_result_file_is_referenced():
    text = EXPERIMENTS.read_text()
    for path in RESULTS.glob("*.txt"):
        assert path.name in text, (
            f"{path.name} is generated but EXPERIMENTS.md never mentions it"
        )
