"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import pytest

from repro.adversary import (
    CollusionAdversary,
    EquivocatingAdversary,
    MalformedArrayAdversary,
    RandomGarbageAdversary,
    SilentAdversary,
    VoteSplitterAdversary,
)
from repro.types import BOTTOM, ProcessId, SystemConfig, Value


@pytest.fixture
def config4() -> SystemConfig:
    """The smallest Byzantine-capable system: n = 4, t = 1."""
    return SystemConfig(n=4, t=1)


@pytest.fixture
def config7() -> SystemConfig:
    """n = 7, t = 2 — the workhorse size for adversarial sweeps."""
    return SystemConfig(n=7, t=2)


@pytest.fixture
def config9() -> SystemConfig:
    """n = 9, t = 2 — satisfies the fast-variant bound n >= 4t + 1."""
    return SystemConfig(n=9, t=2)


def binary_inputs(config: SystemConfig, pattern: int = 0) -> Dict[ProcessId, int]:
    """Deterministic mixed binary inputs; ``pattern`` varies the mix."""
    return {
        process_id: (process_id + pattern) % 2
        for process_id in config.process_ids
    }


def unanimous_inputs(config: SystemConfig, value: Value) -> Dict[ProcessId, Value]:
    return {process_id: value for process_id in config.process_ids}


def byzantine_adversaries(faulty: Sequence[ProcessId], values=(0, 1)) -> List:
    """One instance of every Byzantine strategy, for sweep tests."""
    value_a, value_b = values[0], values[-1]
    return [
        SilentAdversary(faulty),
        RandomGarbageAdversary(faulty, palette=list(values)),
        EquivocatingAdversary(faulty, value_a, value_b),
        VoteSplitterAdversary(faulty),
        MalformedArrayAdversary(faulty),
        CollusionAdversary(faulty),
    ]


def assert_agreement_and_validity(result, inputs: Dict[ProcessId, Value]) -> None:
    """The Section 2 conditions, as a test helper."""
    decisions = [
        result.decisions[process_id] for process_id in sorted(result.processes)
    ]
    assert all(
        decision is not BOTTOM for decision in decisions
    ), f"undecided correct processors: {result.decisions}"
    assert len(set(decisions)) == 1, f"disagreement: {result.decisions}"
    correct_inputs = {inputs[process_id] for process_id in result.processes}
    if len(correct_inputs) == 1:
        assert decisions[0] == next(iter(correct_inputs)), (
            f"validity violated: unanimous input {correct_inputs} but "
            f"decision {decisions[0]!r}"
        )


def faulty_subsets(config: SystemConfig) -> List[Tuple[ProcessId, ...]]:
    """A few representative faulty sets of maximal size ``t``."""
    n, t = config.n, config.t
    subsets = [tuple(range(1, t + 1)), tuple(range(n - t + 1, n + 1))]
    middle = tuple(range(2, 2 + t))
    if middle not in subsets and len(middle) == t:
        subsets.append(middle)
    return subsets
