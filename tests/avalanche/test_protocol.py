"""Tests for Protocol 2: the three conditions, lemmas, thresholds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.avalanche.conditions import (
    check_avalanche_condition,
    check_consensus_condition,
    check_plausibility_condition,
)
from repro.avalanche.protocol import (
    AvalancheInstance,
    Thresholds,
    avalanche_factory,
    standard_thresholds,
)
from repro.errors import ConfigurationError
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom

from tests.conftest import byzantine_adversaries


def run_avalanche(config, inputs, adversary=None, rounds=8, seed=0):
    return run_protocol(
        avalanche_factory(),
        config,
        inputs,
        adversary=adversary,
        run_full_rounds=rounds,
        seed=seed,
    )


def assert_conditions(result, inputs, consensus_deadline=2):
    correct = sorted(result.processes)
    violations = (
        check_avalanche_condition(
            result.decisions, result.decision_rounds, correct, result.rounds
        )
        + check_consensus_condition(
            result.decisions,
            result.decision_rounds,
            inputs,
            correct,
            result.rounds,
            deadline=consensus_deadline,
        )
        + check_plausibility_condition(result.decisions, inputs, correct)
    )
    assert not violations, violations


class TestThresholds:
    def test_tight_case_matches_paper(self):
        thresholds = standard_thresholds(SystemConfig(n=7, t=2))
        assert thresholds.round1_adopt == 2 * 2 + 1  # 2t+1 at n=3t+1
        assert thresholds.later_adopt == 3
        assert thresholds.decide == 5
        assert thresholds.round1_decide is None

    def test_generalised_round1_quorum(self):
        # n=10, t=2: floor((10+2)/2)+1 = 7 > 2t+1 = 5.
        thresholds = standard_thresholds(SystemConfig(n=10, t=2))
        assert thresholds.round1_adopt == 7

    def test_requires_byzantine_quorum(self):
        with pytest.raises(ConfigurationError):
            standard_thresholds(SystemConfig(n=6, t=2))


class TestFaultFree:
    def test_unanimous_decides_in_two_rounds(self, config7):
        inputs = {p: "v" for p in config7.process_ids}
        result = run_avalanche(config7, inputs, rounds=3)
        assert all(d == "v" for d in result.decisions.values())
        assert all(r == 2 for r in result.decision_rounds.values())

    def test_near_unanimous_still_decides(self, config7):
        inputs = {p: ("w" if p == 1 else "v") for p in config7.process_ids}
        result = run_avalanche(config7, inputs, rounds=4)
        assert set(result.decisions.values()) == {"v"}

    def test_split_inputs_may_not_decide(self, config4):
        # 2-2 split at n=4: no value reaches the 2t+1 = 3 quorum in
        # round 1 if... actually 2 votes < 3, so nothing persists and
        # the protocol never decides — legal for avalanche agreement.
        inputs = {1: "a", 2: "a", 3: "b", 4: "b"}
        result = run_avalanche(config4, inputs, rounds=6)
        assert all(is_bottom(d) for d in result.decisions.values())

    def test_no_input_processors(self, config7):
        inputs = {p: ("v" if p <= 5 else BOTTOM) for p in config7.process_ids}
        result = run_avalanche(config7, inputs, rounds=4)
        # 5 votes for v reach 2t+1 = 5: v persists and decides.
        assert set(result.decisions.values()) == {"v"}
        assert_conditions(result, inputs)


class TestConditionsUnderAdversaries:
    @pytest.mark.parametrize("pattern", [0, 1])
    @pytest.mark.parametrize("faulty", [(1, 2), (3, 6), (6, 7)])
    def test_all_conditions_hold(self, config7, pattern, faulty):
        inputs = {
            p: ("v" if (p + pattern) % 3 else "w") for p in config7.process_ids
        }
        for adversary in byzantine_adversaries(list(faulty), values=("v", "w")):
            result = run_avalanche(
                config7, inputs, adversary=adversary, rounds=8, seed=pattern
            )
            assert_conditions(result, inputs)

    def test_unanimous_correct_beats_any_adversary(self, config7):
        inputs = {p: "v" for p in config7.process_ids}
        for adversary in byzantine_adversaries([2, 5], values=("v", "w")):
            result = run_avalanche(config7, inputs, adversary=adversary, rounds=4)
            assert set(result.decisions.values()) == {"v"}
            assert all(r <= 2 for r in result.decision_rounds.values())

    def test_plausibility_under_value_injection(self, config7):
        """The adversary floods a value no correct processor holds."""
        from repro.adversary import RandomGarbageAdversary

        inputs = {p: "v" if p <= 5 else "evil" for p in config7.process_ids}
        adversary = RandomGarbageAdversary([6, 7], palette=["evil"])
        result = run_avalanche(config7, inputs, adversary=adversary, rounds=8)
        for decision in result.decisions.values():
            assert is_bottom(decision) or decision == "v"


class TestLemmas:
    """Lemmas 3 and 4 as runtime-checkable statements."""

    def test_lemma3_at_most_one_persistent_value(self, config7):
        from repro.adversary import EquivocatingAdversary

        inputs = {p: ("v" if p % 2 else "w") for p in config7.process_ids}
        adversary = EquivocatingAdversary([3, 4], "v", "w")
        result = run_protocol(
            avalanche_factory(),
            config7,
            inputs,
            adversary=adversary,
            run_full_rounds=1,
            record_trace=True,
        )
        round1_vals = {
            snapshot["val"]
            for snapshot in result.trace.snapshots_in_round(1).values()
            if not is_bottom(snapshot["val"])
        }
        assert len(round1_vals) <= 1

    def test_lemma4_vals_stay_on_persistent_value(self, config7):
        from repro.adversary import VoteSplitterAdversary

        inputs = {p: ("v" if p <= 5 else "w") for p in config7.process_ids}
        result = run_protocol(
            avalanche_factory(),
            config7,
            inputs,
            adversary=VoteSplitterAdversary([6, 7]),
            run_full_rounds=6,
            record_trace=True,
        )
        persistent = {
            snapshot["val"]
            for snapshot in result.trace.snapshots_in_round(1).values()
            if not is_bottom(snapshot["val"])
        }
        for round_number in result.trace.rounds:
            for snapshot in result.trace.snapshots_in_round(round_number).values():
                value = snapshot["val"]
                assert is_bottom(value) or value in persistent


class TestInstanceAPI:
    def test_vote_slot_count_enforced(self, config4):
        instance = AvalancheInstance(config4, input_value="v")
        with pytest.raises(ConfigurationError):
            instance.step(["v"] * 3)

    def test_malformed_votes_discarded(self, config4):
        instance = AvalancheInstance(config4, input_value="v")
        instance.step([("two", "values"), {"un": "hashable"}, BOTTOM, "v"])
        # Only the single legal vote counted; below every quorum.
        assert is_bottom(instance.val)

    def test_value_ok_hook(self, config4):
        instance = AvalancheInstance(
            config4, input_value="v", value_ok=lambda value: value == "v"
        )
        instance.step(["x", "x", "x", "x"])
        assert is_bottom(instance.val)  # all votes rejected by the hook

    def test_keeps_participating_after_decision(self, config4):
        instance = AvalancheInstance(config4, input_value="v")
        instance.step(["v"] * 4)
        instance.step(["v"] * 4)
        assert instance.has_decided()
        assert instance.message() == "v"  # still voting
        instance.step(["v"] * 4)  # no error, no change
        assert instance.decision == "v"
        assert instance.decision_round == 2

    def test_deterministic_tie_break(self, config4):
        left = AvalancheInstance(config4, input_value="a")
        right = AvalancheInstance(config4, input_value="a")
        votes = ["a", "a", "b", "b"]
        left.step(list(votes))
        right.step(list(votes))
        assert left.val == right.val


@settings(max_examples=30, deadline=None)
@given(
    faulty=st.sets(st.integers(1, 7), min_size=1, max_size=2),
    pattern=st.integers(0, 5),
    seed=st.integers(0, 3),
    strategy_index=st.integers(0, 5),
)
def test_conditions_property(faulty, pattern, seed, strategy_index):
    """Property sweep: conditions hold for random fault sets/inputs."""
    config = SystemConfig(n=7, t=2)
    inputs = {
        p: ("v" if (p * (pattern + 1)) % 4 else "w") for p in config.process_ids
    }
    adversary = byzantine_adversaries(sorted(faulty), values=("v", "w"))[
        strategy_index
    ]
    result = run_avalanche(config, inputs, adversary=adversary, rounds=8, seed=seed)
    assert_conditions(result, inputs)
