"""Property-based tests for the AvalancheInstance state machine.

Driving a single instance with arbitrary vote streams (as a Byzantine
network could produce for one receiver) must never crash it, and its
local decisions must always be justified by an actual quorum.
"""

from hypothesis import given, settings, strategies as st

from repro.avalanche.fast import fast_thresholds
from repro.avalanche.protocol import AvalancheInstance, standard_thresholds
from repro.types import BOTTOM, SystemConfig, is_bottom


def vote_streams(n: int, rounds: int):
    vote = st.one_of(
        st.sampled_from(["v", "w", "u"]),
        st.just(BOTTOM),
        st.integers(0, 3),
        st.tuples(st.integers(0, 1)),  # malformed (non-scalar)
        st.just(None),
    )
    return st.lists(
        st.lists(vote, min_size=n, max_size=n),
        min_size=1,
        max_size=rounds,
    )


@settings(max_examples=80, deadline=None)
@given(
    stream=vote_streams(7, 8),
    my_input=st.sampled_from(["v", "w", BOTTOM]),
)
def test_never_crashes_and_decisions_are_quorum_backed(stream, my_input):
    config = SystemConfig(n=7, t=2)
    instance = AvalancheInstance(config, input_value=my_input)
    decided_at = None
    for round_index, votes in enumerate(stream, start=1):
        counts = {}
        for vote in votes:
            if is_bottom(vote) or vote is None:
                continue
            counts[vote] = counts.get(vote, 0) + 1
        instance.step(list(votes))
        if instance.has_decided() and decided_at is None:
            decided_at = round_index
            # A decision this round requires a 2t+1 quorum among this
            # round's legal votes for the decided value, and it can
            # never happen in round 1 (standard thresholds).
            assert round_index >= 2
            assert counts.get(instance.decision, 0) >= 2 * config.t + 1
    if decided_at is not None:
        assert instance.decision_round == decided_at
        # Decisions are irrevocable even under later garbage.
        final = instance.decision
        instance.step([BOTTOM] * config.n)
        assert instance.decision == final


@settings(max_examples=60, deadline=None)
@given(stream=vote_streams(9, 6), my_input=st.sampled_from(["v", BOTTOM]))
def test_fast_instance_round1_decisions_need_n_minus_t(stream, my_input):
    config = SystemConfig(n=9, t=2)
    instance = AvalancheInstance(
        config, input_value=my_input, thresholds=fast_thresholds(config)
    )
    for round_index, votes in enumerate(stream, start=1):
        counts = {}
        for vote in votes:
            if is_bottom(vote) or vote is None:
                continue
            counts[vote] = counts.get(vote, 0) + 1
        already = instance.has_decided()
        instance.step(list(votes))
        if instance.has_decided() and not already:
            quorum = (
                config.n - config.t
            )  # both round-1 and later decisions use n - t
            assert counts.get(instance.decision, 0) >= quorum


@settings(max_examples=40, deadline=None)
@given(stream=vote_streams(7, 6))
def test_val_only_moves_with_t_plus_1_votes(stream):
    """After round 1, VAL changes only on an adopt quorum."""
    config = SystemConfig(n=7, t=2)
    instance = AvalancheInstance(config, input_value="v")
    previous = instance.val
    for round_index, votes in enumerate(stream, start=1):
        counts = {}
        for vote in votes:
            if is_bottom(vote) or vote is None:
                continue
            counts[vote] = counts.get(vote, 0) + 1
        instance.step(list(votes))
        if round_index >= 2 and instance.val != previous:
            assert counts.get(instance.val, 0) >= config.t + 1
        previous = instance.val
