"""Tests for the null-message coding convention (Section 4)."""

import pytest

from repro.avalanche.coding import (
    NULL_MESSAGE,
    NullDecoder,
    NullEncoder,
    is_null_message,
)
from repro.avalanche.protocol import AvalancheInstance
from repro.types import BOTTOM, SystemConfig, is_bottom


class TestEncoder:
    def test_first_message_passes_through(self):
        encoder = NullEncoder()
        assert encoder.encode("v") == "v"

    def test_repeat_becomes_null(self):
        encoder = NullEncoder()
        encoder.encode("v")
        assert is_null_message(encoder.encode("v"))

    def test_change_resets(self):
        encoder = NullEncoder()
        encoder.encode("v")
        encoder.encode("v")
        assert encoder.encode("w") == "w"
        assert is_null_message(encoder.encode("w"))

    def test_bottom_repeats_compress_too(self):
        encoder = NullEncoder()
        assert encoder.encode(BOTTOM) is BOTTOM
        assert is_null_message(encoder.encode(BOTTOM))


class TestDecoder:
    def test_real_values_remembered_per_sender(self):
        decoder = NullDecoder()
        assert decoder.decode(1, "a") == "a"
        assert decoder.decode(2, "b") == "b"
        assert decoder.decode(1, NULL_MESSAGE) == "a"
        assert decoder.decode(2, NULL_MESSAGE) == "b"

    def test_null_before_any_value_is_bottom(self):
        decoder = NullDecoder()
        assert is_bottom(decoder.decode(1, NULL_MESSAGE))

    def test_roundtrip_with_encoder(self):
        encoder, decoder = NullEncoder(), NullDecoder()
        stream = ["v", "v", "v", BOTTOM, BOTTOM, "w", "w"]
        decoded = [decoder.decode(1, encoder.encode(item)) for item in stream]
        assert decoded == stream


class TestThreeNonNullBound:
    """Each correct processor sends at most 3 non-null messages."""

    def test_bound_over_adversarial_executions(self):
        from repro.adversary import VoteSplitterAdversary
        from repro.avalanche.protocol import avalanche_factory
        from repro.runtime.engine import run_protocol

        config = SystemConfig(n=7, t=2)
        for pattern in range(4):
            inputs = {
                p: ("v" if (p + pattern) % 3 else "w")
                for p in config.process_ids
            }
            result = run_protocol(
                avalanche_factory(),
                config,
                inputs,
                adversary=VoteSplitterAdversary([1, 2]),
                run_full_rounds=12,
                record_trace=True,
            )
            # Reconstruct each correct processor's broadcast stream and
            # count the value changes an encoder would transmit.
            for process_id in result.processes:
                stream = [
                    envelope.payload
                    for envelope in result.trace.messages_from(process_id)
                    if envelope.receiver == process_id  # one copy per round
                ]
                encoder = NullEncoder()
                non_null = sum(
                    0 if is_null_message(encoder.encode(item)) else 1
                    for item in stream
                )
                assert non_null <= 3, (process_id, stream)

    def test_null_message_singleton_pickles(self):
        import pickle

        assert pickle.loads(pickle.dumps(NULL_MESSAGE)) is NULL_MESSAGE
