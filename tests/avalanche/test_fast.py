"""Tests for the fast avalanche variant (n >= 4t+1, 1-round consensus)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.avalanche.conditions import (
    check_avalanche_condition,
    check_consensus_condition,
    check_plausibility_condition,
)
from repro.avalanche.fast import FastAvalancheInstance, fast_thresholds
from repro.avalanche.protocol import avalanche_factory
from repro.errors import ConfigurationError
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom

from tests.conftest import byzantine_adversaries


def run_fast(config, inputs, adversary=None, rounds=8, seed=0):
    return run_protocol(
        avalanche_factory(thresholds=fast_thresholds(config)),
        config,
        inputs,
        adversary=adversary,
        run_full_rounds=rounds,
        seed=seed,
    )


class TestThresholds:
    def test_boundary_case(self):
        thresholds = fast_thresholds(SystemConfig(n=9, t=2))
        assert thresholds.round1_adopt == 5  # n - 2t = 2t+1 at n=4t+1
        assert thresholds.decide == 7  # n - t = 3t+1
        assert thresholds.round1_decide == 7
        assert thresholds.later_adopt == 3

    def test_requires_fast_quorum(self):
        with pytest.raises(ConfigurationError):
            fast_thresholds(SystemConfig(n=8, t=2))

    def test_larger_n(self):
        thresholds = fast_thresholds(SystemConfig(n=12, t=2))
        assert thresholds.round1_adopt == 8
        assert thresholds.decide == 10


class TestOneRoundConsensus:
    def test_unanimous_decides_in_round_one(self, config9):
        inputs = {p: "v" for p in config9.process_ids}
        result = run_fast(config9, inputs, rounds=2)
        assert set(result.decisions.values()) == {"v"}
        assert all(r == 1 for r in result.decision_rounds.values())

    def test_unanimous_correct_with_faults_decides_by_round_two(self, config9):
        inputs = {p: "v" for p in config9.process_ids}
        for adversary in byzantine_adversaries([3, 8], values=("v", "w")):
            result = run_fast(config9, inputs, adversary=adversary, rounds=3)
            assert set(result.decisions.values()) == {"v"}
            assert all(r <= 2 for r in result.decision_rounds.values())


class TestConditions:
    @pytest.mark.parametrize("faulty", [(1, 2), (4, 9), (5, 6)])
    @pytest.mark.parametrize("pattern", [0, 1, 2])
    def test_all_conditions_hold(self, config9, faulty, pattern):
        inputs = {
            p: ("v" if (p + pattern) % 3 else "w") for p in config9.process_ids
        }
        for adversary in byzantine_adversaries(list(faulty), values=("v", "w")):
            result = run_fast(config9, inputs, adversary=adversary, rounds=8)
            correct = sorted(result.processes)
            violations = (
                check_avalanche_condition(
                    result.decisions,
                    result.decision_rounds,
                    correct,
                    result.rounds,
                )
                + check_consensus_condition(
                    result.decisions,
                    result.decision_rounds,
                    inputs,
                    correct,
                    result.rounds,
                    deadline=1,  # the strengthened condition
                )
                + check_plausibility_condition(
                    result.decisions, inputs, correct
                )
            )
            assert not violations, violations


class TestInstance:
    def test_fast_instance_preconfigured(self, config9):
        instance = FastAvalancheInstance(config9, input_value="v")
        assert instance.thresholds == fast_thresholds(config9)

    def test_round_one_decision_path(self, config9):
        instance = FastAvalancheInstance(config9, input_value="v")
        instance.step(["v"] * 9)
        assert instance.has_decided()
        assert instance.decision_round == 1


@settings(max_examples=25, deadline=None)
@given(
    faulty=st.sets(st.integers(1, 9), min_size=1, max_size=2),
    pattern=st.integers(0, 4),
    strategy_index=st.integers(0, 5),
)
def test_fast_conditions_property(faulty, pattern, strategy_index):
    config = SystemConfig(n=9, t=2)
    inputs = {
        p: ("v" if (p * (pattern + 2)) % 4 else "w") for p in config.process_ids
    }
    adversary = byzantine_adversaries(sorted(faulty), values=("v", "w"))[
        strategy_index
    ]
    result = run_fast(config, inputs, adversary=adversary, rounds=8)
    correct = sorted(result.processes)
    violations = (
        check_avalanche_condition(
            result.decisions, result.decision_rounds, correct, result.rounds
        )
        + check_consensus_condition(
            result.decisions,
            result.decision_rounds,
            inputs,
            correct,
            result.rounds,
            deadline=1,
        )
        + check_plausibility_condition(result.decisions, inputs, correct)
    )
    assert not violations, violations
