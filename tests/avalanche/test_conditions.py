"""Unit tests for the avalanche condition checkers themselves."""

from repro.avalanche.conditions import (
    check_avalanche_condition,
    check_consensus_condition,
    check_plausibility_condition,
)
from repro.types import BOTTOM


class TestAvalancheCondition:
    def test_clean_execution_passes(self):
        decisions = {1: "v", 2: "v", 3: "v"}
        rounds = {1: 3, 2: 3, 3: 4}
        assert not check_avalanche_condition(decisions, rounds, [1, 2, 3], 6)

    def test_disagreement_flagged(self):
        decisions = {1: "v", 2: "w"}
        rounds = {1: 3, 2: 3}
        assert check_avalanche_condition(decisions, rounds, [1, 2], 6)

    def test_late_decision_flagged(self):
        decisions = {1: "v", 2: "v"}
        rounds = {1: 3, 2: 5}
        violations = check_avalanche_condition(decisions, rounds, [1, 2], 6)
        assert any("deadline" in violation for violation in violations)

    def test_never_deciding_flagged(self):
        decisions = {1: "v", 2: BOTTOM}
        rounds = {1: 3, 2: None}
        violations = check_avalanche_condition(decisions, rounds, [1, 2], 6)
        assert any("never decided" in violation for violation in violations)

    def test_decision_at_cutoff_imposes_nothing(self):
        decisions = {1: "v", 2: BOTTOM}
        rounds = {1: 6, 2: None}
        assert not check_avalanche_condition(decisions, rounds, [1, 2], 6)

    def test_no_decisions_passes(self):
        decisions = {1: BOTTOM, 2: BOTTOM}
        rounds = {1: None, 2: None}
        assert not check_avalanche_condition(decisions, rounds, [1, 2], 6)


class TestConsensusCondition:
    def test_unanimous_met(self):
        decisions = {1: "v", 2: "v"}
        rounds = {1: 2, 2: 2}
        inputs = {1: "v", 2: "v"}
        assert not check_consensus_condition(
            decisions, rounds, inputs, [1, 2], rounds_run=4
        )

    def test_unanimous_too_slow_flagged(self):
        decisions = {1: "v", 2: "v"}
        rounds = {1: 2, 2: 3}
        inputs = {1: "v", 2: "v"}
        assert check_consensus_condition(
            decisions, rounds, inputs, [1, 2], rounds_run=4
        )

    def test_wrong_value_flagged(self):
        decisions = {1: "w", 2: "w"}
        rounds = {1: 2, 2: 2}
        inputs = {1: "v", 2: "v"}
        assert check_consensus_condition(
            decisions, rounds, inputs, [1, 2], rounds_run=4
        )

    def test_mixed_inputs_impose_nothing(self):
        decisions = {1: BOTTOM, 2: BOTTOM}
        rounds = {1: None, 2: None}
        inputs = {1: "v", 2: "w"}
        assert not check_consensus_condition(
            decisions, rounds, inputs, [1, 2], rounds_run=4
        )

    def test_custom_deadline(self):
        decisions = {1: "v", 2: "v"}
        rounds = {1: 2, 2: 2}
        inputs = {1: "v", 2: "v"}
        assert check_consensus_condition(
            decisions, rounds, inputs, [1, 2], rounds_run=4, deadline=1
        )

    def test_short_executions_not_judged(self):
        decisions = {1: BOTTOM}
        rounds = {1: None}
        inputs = {1: "v"}
        assert not check_consensus_condition(
            decisions, rounds, inputs, [1], rounds_run=1
        )


class TestPlausibilityCondition:
    def test_decision_from_correct_input_passes(self):
        assert not check_plausibility_condition(
            {1: "v"}, {1: "v", 2: "w"}, [1, 2]
        )

    def test_invented_value_flagged(self):
        assert check_plausibility_condition(
            {1: "evil"}, {1: "v", 2: "w"}, [1, 2]
        )

    def test_faulty_inputs_do_not_count(self):
        # 3 is faulty (not in correct ids); its input cannot justify.
        violations = check_plausibility_condition(
            {1: "x"}, {1: "v", 2: "w", 3: "x"}, [1, 2]
        )
        assert violations

    def test_undecided_ignored(self):
        assert not check_plausibility_condition(
            {1: BOTTOM}, {1: "v"}, [1]
        )
