"""Tests for the execution driver."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.engine import run_protocol
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, SystemConfig


class CountdownProcess(Process):
    """Decides its input after a fixed number of rounds."""

    def __init__(self, process_id, config, input_value, rounds=3):
        super().__init__(process_id, config)
        self.input_value = input_value
        self.rounds = rounds

    def outgoing(self, round_number):
        return broadcast(self.input_value, self.config)

    def receive(self, round_number, incoming):
        if round_number >= self.rounds:
            self.decide(self.input_value, round_number)


def countdown_factory(rounds=3):
    def factory(process_id, config, input_value):
        return CountdownProcess(process_id, config, input_value, rounds=rounds)

    return factory


@pytest.fixture
def config():
    return SystemConfig(n=4, t=1)


@pytest.fixture
def inputs(config):
    return {process_id: process_id * 10 for process_id in config.process_ids}


class TestRun:
    def test_stops_when_all_decided(self, config, inputs):
        result = run_protocol(countdown_factory(3), config, inputs)
        assert result.rounds == 3
        assert result.decisions == {1: 10, 2: 20, 3: 30, 4: 40}

    def test_decision_rounds_recorded(self, config, inputs):
        result = run_protocol(countdown_factory(2), config, inputs)
        assert all(r == 2 for r in result.decision_rounds.values())

    def test_run_full_rounds_overrides_stop(self, config, inputs):
        result = run_protocol(
            countdown_factory(2), config, inputs, run_full_rounds=5
        )
        assert result.rounds == 5

    def test_max_rounds_guard(self, config, inputs):
        with pytest.raises(ConfigurationError):
            run_protocol(countdown_factory(100), config, inputs, max_rounds=5)

    def test_missing_inputs_rejected(self, config):
        with pytest.raises(ConfigurationError):
            run_protocol(countdown_factory(), config, {1: 0})

    def test_custom_stop_condition(self, config, inputs):
        stopped_at = run_protocol(
            countdown_factory(10),
            config,
            inputs,
            stop_condition=lambda processes, round_number: round_number >= 4,
        )
        assert stopped_at.rounds == 4

    def test_trace_recorded_when_asked(self, config, inputs):
        result = run_protocol(countdown_factory(2), config, inputs, record_trace=True)
        assert result.trace is not None
        assert result.trace.rounds == [1, 2]

    def test_no_trace_by_default(self, config, inputs):
        result = run_protocol(countdown_factory(2), config, inputs)
        assert result.trace is None


class TestExecutionResult:
    def test_answer_vector_marks_faulty_bottom(self, config, inputs):
        from repro.adversary import SilentAdversary

        result = run_protocol(
            countdown_factory(2),
            config,
            inputs,
            adversary=SilentAdversary([2]),
        )
        vector = result.answer_vector()
        assert vector[1] is BOTTOM  # processor 2
        assert vector[0] == 10

    def test_decided_values(self, config, inputs):
        result = run_protocol(countdown_factory(2), config, inputs)
        assert result.decided_values() == {10, 20, 30, 40}

    def test_is_deciding(self, config, inputs):
        result = run_protocol(countdown_factory(2), config, inputs)
        assert result.is_deciding()

    def test_correct_ids_excludes_faulty(self, config, inputs):
        from repro.adversary import SilentAdversary

        result = run_protocol(
            countdown_factory(2),
            config,
            inputs,
            adversary=SilentAdversary([3]),
        )
        assert result.correct_ids == (1, 2, 4)

    def test_correct_ids_is_ascending_tuple(self, config, inputs):
        """The annotation promises Tuple[ProcessId, ...], ascending."""
        result = run_protocol(countdown_factory(2), config, inputs)
        assert isinstance(result.correct_ids, tuple)
        assert result.correct_ids == tuple(sorted(config.process_ids))

    def test_correct_ids_tuple_with_faulty(self):
        from repro.adversary import SilentAdversary

        config = SystemConfig(n=7, t=2)
        inputs = {p: p * 10 for p in config.process_ids}
        result = run_protocol(
            countdown_factory(2),
            config,
            inputs,
            adversary=SilentAdversary([1, 4]),
        )
        assert isinstance(result.correct_ids, tuple)
        assert result.correct_ids == (2, 3, 5, 6, 7)
        assert not set(result.correct_ids) & {1, 4}


class TestDeterminism:
    def test_same_seed_same_outcome(self, config, inputs):
        from repro.adversary import RandomGarbageAdversary

        results = [
            run_protocol(
                countdown_factory(3),
                config,
                inputs,
                adversary=RandomGarbageAdversary([2]),
                seed=42,
                record_trace=True,
            )
            for _ in range(2)
        ]
        first, second = (
            [(e.sender, e.receiver, repr(e.payload)) for e in r.trace.envelopes]
            for r in results
        )
        assert first == second
