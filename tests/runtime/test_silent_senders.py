"""Silent senders: correct-but-quiet and crash-faulted processors.

The round loop prefills every receiver's incoming row with
:data:`BOTTOM` (one slot per processor id), so a sender that sends
*nothing* in a round — a correct processor whose ``outgoing`` is empty,
or a crashed processor — must surface as detectable BOTTOM entries, a
complete ``n``-entry row, under **both** scheduler backends.  The async
backend counts BOTTOM arrivals toward round recovery (an omission is a
detectable event in the synchronous reduction), so silence must never
stall round advancement either.
"""

import dataclasses
import pickle

import pytest

from repro.adversary.crash import CrashAdversary
from repro.avalanche.protocol import avalanche_factory
from repro.runtime.engine import run_protocol
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, SystemConfig, is_bottom

BACKENDS = ("lockstep", "async", "async:5:3")


class _SometimesSilent(Process):
    """Broadcasts in odd rounds, stays completely silent in even ones,
    and records every incoming row for inspection."""

    __slots__ = ("seen",)

    def __init__(self, process_id, config):
        super().__init__(process_id, config)
        self.seen = []

    def outgoing(self, round_number):
        if round_number % 2 == 1:
            return broadcast(("beat", round_number), self.config)
        return {}

    def receive(self, round_number, incoming):
        self.seen.append((round_number, dict(incoming)))

    def snapshot(self):
        return {"decision": self.decision, "rows": len(self.seen)}


def _run_silent(scheduler, config=None):
    config = config or SystemConfig(n=4, t=0)
    inputs = {process_id: 0 for process_id in config.process_ids}
    return run_protocol(
        lambda pid, cfg, value: _SometimesSilent(pid, cfg),
        config,
        inputs,
        run_full_rounds=4,
        seed=3,
        scheduler=scheduler,
    )


@pytest.mark.parametrize("scheduler", BACKENDS)
def test_silent_round_delivers_full_bottom_rows(scheduler):
    result = _run_silent(scheduler)
    config = result.config
    for process in result.processes.values():
        assert [row[0] for row in process.seen] == [1, 2, 3, 4]
        for round_number, row in process.seen:
            # The prefilled row: every processor id present, in order.
            assert list(row) == list(config.process_ids)
            if round_number % 2 == 1:
                assert all(
                    row[sender] == ("beat", round_number)
                    for sender in config.process_ids
                )
            else:
                assert all(is_bottom(row[sender]) for sender in row)


def test_silent_rounds_identical_across_backends():
    rows = {
        scheduler: [
            (pid, process.seen)
            for pid, process in sorted(_run_silent(scheduler).processes.items())
        ]
        for scheduler in BACKENDS
    }
    assert rows["lockstep"] == rows["async"] == rows["async:5:3"]


def test_silent_rounds_cost_zero_bits():
    """An all-silent round creates no metric rows at all (the lazily
    bound recorder), under every backend."""
    for scheduler in BACKENDS:
        metrics = _run_silent(scheduler).metrics
        for silent_round in (2, 4):
            usage = metrics.round_usage(silent_round)
            assert (usage.messages, usage.bits) == (0, 0)
        assert metrics.total_non_null_messages == 2 * 16  # rounds 1 and 3
        assert metrics.total_bits > 0  # the beats themselves were metered


@pytest.mark.parametrize("scheduler", BACKENDS)
def test_crash_faulted_sender_goes_bottom(scheduler):
    """A crashed processor's post-crash silence arrives as BOTTOM and
    the execution still terminates and decides — on every backend."""
    config = SystemConfig(n=7, t=2)
    inputs = {pid: pid % 2 for pid in config.process_ids}
    factory = avalanche_factory()
    result = run_protocol(
        factory,
        config,
        inputs,
        adversary=CrashAdversary({1: 2, 2: 1}, factory, cut_fraction=0.5),
        run_full_rounds=6,
        seed=5,
        scheduler=scheduler,
    )
    assert result.rounds == 6
    assert result.faulty_ids == frozenset({1, 2})


def test_crash_execution_identical_across_backends():
    config = SystemConfig(n=7, t=2)
    inputs = {pid: pid % 2 for pid in config.process_ids}

    def run(scheduler):
        factory = avalanche_factory()
        result = run_protocol(
            factory,
            config,
            inputs,
            adversary=CrashAdversary({1: 2, 2: 1}, factory, cut_fraction=0.5),
            run_full_rounds=6,
            seed=5,
            scheduler=scheduler,
        )
        return pickle.dumps(dataclasses.replace(result, processes={}))

    reference = run("lockstep")
    assert run("async") == reference
    assert run("async:6:11") == reference


def test_bottom_broadcast_equals_empty_outgoing():
    """Explicitly broadcasting BOTTOM and sending nothing are the same
    execution — the fast path may not distinguish them."""

    class ExplicitBottom(_SometimesSilent):
        __slots__ = ()

        def outgoing(self, round_number):
            if round_number % 2 == 1:
                return broadcast(("beat", round_number), self.config)
            return broadcast(BOTTOM, self.config)

    config = SystemConfig(n=4, t=0)
    inputs = {pid: 0 for pid in config.process_ids}
    for scheduler in BACKENDS:
        implicit = _run_silent(scheduler, config)
        explicit = run_protocol(
            lambda pid, cfg, value: ExplicitBottom(pid, cfg),
            config,
            inputs,
            run_full_rounds=4,
            seed=3,
            scheduler=scheduler,
        )
        assert [
            process.seen for _, process in sorted(implicit.processes.items())
        ] == [
            process.seen for _, process in sorted(explicit.processes.items())
        ]
        assert pickle.dumps(implicit.metrics) == pickle.dumps(
            explicit.metrics
        )
