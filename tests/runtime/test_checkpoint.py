"""Tests for result persistence."""

import pytest

from repro.adversary import EquivocatingAdversary
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.errors import ConfigurationError
from repro.runtime.checkpoint import load_result, save_result
from repro.types import BOTTOM, SystemConfig


@pytest.fixture
def result(config4):
    inputs = {p: p % 2 for p in config4.process_ids}
    return run_compact_byzantine_agreement(
        config4,
        inputs,
        value_alphabet=[0, 1],
        k=2,
        adversary=EquivocatingAdversary([4], 0, 1),
        record_trace=True,
    )


class TestRoundtrip:
    def test_scalars_survive(self, result, tmp_path):
        path = tmp_path / "run.pkl"
        save_result(result, path)
        restored = load_result(path)
        assert restored.decisions == result.decisions
        assert restored.decision_rounds == result.decision_rounds
        assert restored.rounds == result.rounds
        assert restored.faulty_ids == result.faulty_ids
        assert restored.inputs == result.inputs

    def test_metrics_survive(self, result, tmp_path):
        path = tmp_path / "run.pkl"
        save_result(result, path)
        restored = load_result(path)
        assert restored.metrics.total_bits == result.metrics.total_bits
        assert restored.metrics.bits_by_round() == result.metrics.bits_by_round()

    def test_trace_survives_with_singleton_identity(self, result, tmp_path):
        path = tmp_path / "run.pkl"
        save_result(result, path)
        restored = load_result(path)
        assert len(restored.trace.envelopes) == len(result.trace.envelopes)
        # Singleton identity is preserved through pickling: any BOTTOM
        # inside restored snapshots must be *the* BOTTOM.
        for round_number in restored.trace.rounds:
            for snapshot in restored.trace.snapshots_in_round(
                round_number
            ).values():
                value = snapshot.get("decision")
                if value is not None and not value:
                    assert value is BOTTOM or value == 0

    def test_processes_dropped(self, result, tmp_path):
        path = tmp_path / "run.pkl"
        save_result(result, path)
        assert load_result(path).processes == {}

    def test_answer_vector_still_works(self, result, tmp_path):
        path = tmp_path / "run.pkl"
        save_result(result, path)
        restored = load_result(path)
        assert restored.answer_vector() == result.answer_vector()


class TestValidation:
    def test_rejects_foreign_pickles(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ConfigurationError):
            load_result(path)

    def test_rejects_wrong_version(self, result, tmp_path):
        import pickle

        path = tmp_path / "old.pkl"
        path.write_bytes(pickle.dumps({"version": 0, "result": None}))
        with pytest.raises(ConfigurationError):
            load_result(path)
