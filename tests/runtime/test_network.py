"""Tests for the synchronous network: delivery, adversary, metering."""

import pytest

from repro.adversary.base import Adversary, PassiveAdversary
from repro.runtime.metrics import MessageMetrics
from repro.runtime.network import SynchronousNetwork, _default_sizer
from repro.runtime.node import Process, broadcast
from repro.runtime.rng import make_rng
from repro.runtime.trace import ExecutionTrace
from repro.types import BOTTOM, SystemConfig, is_bottom


class Recorder(Process):
    def __init__(self, process_id, config, value):
        super().__init__(process_id, config)
        self.value = value
        self.rounds = []

    def outgoing(self, round_number):
        return broadcast((self.process_id, self.value), self.config)

    def receive(self, round_number, incoming):
        self.rounds.append(dict(incoming))


class FirstHalfOnly(Adversary):
    """Sends 'evil' to low ids, nothing to high ids."""

    def outgoing(self, round_number, sender, context):
        half = self.config.n // 2
        return {receiver: "evil" for receiver in range(1, half + 1)}


def build(config, adversary, **kwargs):
    processes = {
        process_id: Recorder(process_id, config, f"v{process_id}")
        for process_id in config.process_ids
        if process_id not in adversary.faulty_ids
    }
    inputs = {process_id: 0 for process_id in config.process_ids}
    adversary.bind(config, make_rng(0))
    return (
        processes,
        SynchronousNetwork(config, processes, adversary, inputs, **kwargs),
    )


class TestDelivery:
    def test_every_sender_slot_present(self):
        config = SystemConfig(n=4, t=1)
        processes, network = build(config, PassiveAdversary())
        network.run_round()
        incoming = processes[1].rounds[0]
        assert set(incoming) == {1, 2, 3, 4}

    def test_correct_messages_delivered_verbatim(self):
        config = SystemConfig(n=4, t=1)
        processes, network = build(config, PassiveAdversary())
        network.run_round()
        assert processes[1].rounds[0][3] == (3, "v3")

    def test_missing_faulty_message_is_bottom(self):
        config = SystemConfig(n=4, t=1)
        processes, network = build(config, FirstHalfOnly([4]))
        network.run_round()
        assert processes[1].rounds[0][4] == "evil"
        assert is_bottom(processes[3].rounds[0][4])

    def test_round_numbers_increment(self):
        config = SystemConfig(n=4, t=1)
        _, network = build(config, PassiveAdversary())
        assert network.run_round() == 1
        assert network.run_round() == 2


class TestValidation:
    def test_overlapping_correct_and_faulty_rejected(self):
        config = SystemConfig(n=4, t=1)
        adversary = FirstHalfOnly([1])
        adversary.bind(config, make_rng(0))
        processes = {
            process_id: Recorder(process_id, config, "v")
            for process_id in config.process_ids  # includes 1: overlap
        }
        with pytest.raises(ValueError):
            SynchronousNetwork(
                config, processes, adversary, {p: 0 for p in config.process_ids}
            )

    def test_uncovered_ids_rejected(self):
        config = SystemConfig(n=4, t=1)
        adversary = PassiveAdversary()
        adversary.bind(config, make_rng(0))
        processes = {
            process_id: Recorder(process_id, config, "v")
            for process_id in (1, 2, 3)  # 4 missing, not faulty either
        }
        with pytest.raises(ValueError):
            SynchronousNetwork(
                config, processes, adversary, {p: 0 for p in config.process_ids}
            )


class TestMetering:
    def test_correct_traffic_metered(self):
        config = SystemConfig(n=4, t=1)
        _, network = build(config, PassiveAdversary())
        network.run_round()
        assert network.metrics.total_messages == 16  # 4 senders x 4 receivers

    def test_adversary_traffic_not_metered_by_default(self):
        config = SystemConfig(n=4, t=1)
        _, network = build(config, FirstHalfOnly([4]))
        network.run_round()
        assert network.metrics.total_messages == 3 * 4

    def test_adversary_metering_opt_in(self):
        config = SystemConfig(n=4, t=1)
        _, network = build(config, FirstHalfOnly([4]), meter_adversary=True)
        network.run_round()
        assert network.metrics.total_messages == 3 * 4 + 2

    def test_custom_sizer_used(self):
        config = SystemConfig(n=4, t=1)
        _, network = build(config, PassiveAdversary(), sizer=lambda message: 5)
        network.run_round()
        assert network.metrics.total_bits == 16 * 5

    def test_null_predicate_feeds_non_null_count(self):
        config = SystemConfig(n=4, t=1)
        _, network = build(
            config, PassiveAdversary(), is_null=lambda message: True
        )
        network.run_round()
        assert network.metrics.total_non_null_messages == 0


class TestTrace:
    def test_envelopes_and_snapshots_recorded(self):
        config = SystemConfig(n=4, t=1)
        trace = ExecutionTrace()
        _, network = build(config, PassiveAdversary(), trace=trace)
        network.run_round()
        assert len(trace.messages_in_round(1)) == 16
        assert set(trace.snapshots_in_round(1)) == {1, 2, 3, 4}


class TestDefaultSizer:
    """The fallback sizer counts every container shape structurally."""

    def test_scalar_leaf(self):
        assert _default_sizer(7) == 8
        assert _default_sizer("x") == 8

    def test_bottom_is_free(self):
        assert _default_sizer(BOTTOM) == 0

    def test_tuple_is_node_plus_components(self):
        assert _default_sizer((1, 2, 3)) == 2 + 3 * 8

    def test_list_not_undercounted_as_scalar(self):
        assert _default_sizer([1, 2, 3]) == _default_sizer((1, 2, 3))

    def test_set_and_frozenset(self):
        assert _default_sizer({1, 2}) == 2 + 2 * 8
        assert _default_sizer(frozenset({1, 2})) == 2 + 2 * 8

    def test_dict_charges_keys_and_values(self):
        assert _default_sizer({1: "a", 2: "b"}) == 2 + 4 * 8

    def test_nested_containers(self):
        assert _default_sizer([(1, 2), [3]]) == 2 + (2 + 16) + (2 + 8)

    def test_bottom_inside_container_is_free(self):
        assert _default_sizer((BOTTOM, 1)) == 2 + 8


class TestHotPathEquivalence:
    """The skip-trace fast path meters exactly like the traced path."""

    def test_metrics_identical_with_and_without_trace(self):
        config = SystemConfig(n=4, t=1)
        _, untraced = build(config, FirstHalfOnly([4]))
        _, traced = build(config, FirstHalfOnly([4]), trace=ExecutionTrace())
        for _ in range(3):
            untraced.run_round()
            traced.run_round()
        assert untraced.metrics.total_bits == traced.metrics.total_bits
        assert (
            untraced.metrics.total_messages == traced.metrics.total_messages
        )

    def test_incoming_maps_identical_with_and_without_trace(self):
        config = SystemConfig(n=4, t=1)
        untraced_procs, untraced = build(config, FirstHalfOnly([4]))
        traced_procs, traced = build(
            config, FirstHalfOnly([4]), trace=ExecutionTrace()
        )
        untraced.run_round()
        traced.run_round()
        for process_id in untraced_procs:
            assert (
                untraced_procs[process_id].rounds
                == traced_procs[process_id].rounds
            )

    def test_incoming_covers_every_sender_slot(self):
        config = SystemConfig(n=4, t=1)
        processes, network = build(config, FirstHalfOnly([4]))
        network.run_round()
        for process in processes.values():
            assert set(process.rounds[0]) == set(config.process_ids)
