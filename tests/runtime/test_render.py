"""Tests for the execution renderers."""

import pytest

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.avalanche.protocol import avalanche_factory
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.runtime.engine import run_protocol
from repro.runtime.render import (
    render_decisions,
    render_execution,
    render_round,
    summarise_payload,
)
from repro.types import BOTTOM, SystemConfig


@pytest.fixture
def traced_result(config4):
    inputs = {p: "v" for p in config4.process_ids}
    return run_protocol(
        avalanche_factory(),
        config4,
        inputs,
        adversary=SilentAdversary([3]),
        run_full_rounds=3,
        record_trace=True,
    )


class TestSummarise:
    def test_bottom(self):
        assert summarise_payload(BOTTOM) == "-"

    def test_scalars(self):
        assert summarise_payload("v") == "'v'"
        assert summarise_payload(7) == "7"

    def test_arrays_show_shape(self):
        assert summarise_payload(((1, 2), (3, 4))) == "array[d2 w2]"

    def test_compact_payload(self, config4):
        from repro.compact.payload import CompactPayload

        payload = CompactPayload(main=(1, 2, 3, 4), votes=((2, (1, 1, 1, 1)),))
        assert "core:array[d1 w4]" in summarise_payload(payload, limit=60)
        assert "votes:1" in summarise_payload(payload, limit=60)

    def test_truncation(self):
        long_string = "x" * 100
        assert len(summarise_payload(long_string)) <= 28


class TestRenderRound:
    def test_matrix_structure(self, traced_result):
        text = render_round(traced_result, 1)
        lines = text.splitlines()
        assert lines[0] == "round 1"
        assert "snd\\rcv" in lines[1]
        assert len(lines) == 2 + traced_result.config.n

    def test_faulty_sender_marked(self, traced_result):
        text = render_round(traced_result, 1)
        row3 = next(line for line in text.splitlines() if line.startswith("3"))
        assert row3.startswith("3x")

    def test_silent_sender_shows_dashes(self, traced_result):
        row3 = next(
            line
            for line in render_round(traced_result, 1).splitlines()
            if line.startswith("3x")
        )
        assert "-" in row3

    def test_requires_trace(self, config4):
        inputs = {p: "v" for p in config4.process_ids}
        untraced = run_protocol(
            avalanche_factory(), config4, inputs, run_full_rounds=2
        )
        assert "no trace" in render_round(untraced, 1)


class TestRenderDecisions:
    def test_decided_and_faulty_rows(self, traced_result):
        text = render_decisions(traced_result)
        assert "3: (faulty)" in text
        assert "@ round 2" in text

    def test_undecided_row(self, config4):
        inputs = {1: "a", 2: "a", 3: "b", 4: "b"}  # split: never decides
        result = run_protocol(
            avalanche_factory(), config4, inputs, run_full_rounds=3,
            record_trace=True,
        )
        assert "undecided" in render_decisions(result)


class TestGoldenOutputs:
    """Full-string pins: the rendered text is a published format.

    These runs are deterministic, so the exact output (including
    column alignment and trailing padding) is stable; a diff here
    means the rendering contract changed, not just cosmetics.
    """

    GOLDEN_ROUND = (
        "round 1\n"
        "snd\\rcv  1       2       3       4      \n"
        "1        'v'     'v'     -       'v'    \n"
        "2        'v'     'v'     -       'v'    \n"
        "3x       -       -       -       -      \n"
        "4        'v'     'v'     -       'v'    "
    )

    GOLDEN_DECISIONS = (
        "decisions:\n"
        "  1: 'v' @ round 2\n"
        "  2: 'v' @ round 2\n"
        "  3: (faulty)\n"
        "  4: 'v' @ round 2"
    )

    # the faulty sender's row shows the adversary-replaced envelopes:
    # receiver 3 got a different value than receivers 1 and 2
    GOLDEN_EQUIVOCATED_ROUND = (
        "round 1\n"
        "snd\\rcv  1       2       3       4      \n"
        "1        0       0       0       -      \n"
        "2        1       1       1       -      \n"
        "3        0       0       0       -      \n"
        "4x       0       0       1       -      "
    )

    @pytest.fixture
    def equivocated_result(self, config4):
        inputs = {1: 0, 2: 1, 3: 0, 4: 1}
        return run_protocol(
            avalanche_factory(),
            config4,
            inputs,
            adversary=EquivocatingAdversary([4], 0, 1),
            run_full_rounds=2,
            record_trace=True,
        )

    def test_round_matrix(self, traced_result):
        assert render_round(traced_result, 1) == self.GOLDEN_ROUND

    def test_decisions(self, traced_result):
        assert render_decisions(traced_result) == self.GOLDEN_DECISIONS

    def test_adversary_replaced_envelopes(self, equivocated_result):
        assert (
            render_round(equivocated_result, 1)
            == self.GOLDEN_EQUIVOCATED_ROUND
        )

    def test_execution_stitches_rounds_and_decisions(self, traced_result):
        text = render_execution(traced_result, rounds=[1])
        assert text == (
            self.GOLDEN_ROUND + "\n\n" + render_decisions(traced_result)
        )


class TestRenderExecution:
    def test_full_render(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_compact_byzantine_agreement(
            config4,
            inputs,
            value_alphabet=[0, 1],
            k=2,
            adversary=EquivocatingAdversary([4], 0, 1),
            record_trace=True,
        )
        text = render_execution(result)
        assert text.count("round ") >= result.rounds
        assert "decisions:" in text

    def test_round_selection(self, traced_result):
        text = render_execution(traced_result, rounds=[2])
        assert "round 2" in text
        assert "round 1" not in text
