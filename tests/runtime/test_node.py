"""Tests for the process harness: round structure and decisions."""

import pytest

from repro.errors import DecisionError
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, SystemConfig, is_bottom


class EchoProcess(Process):
    """Minimal process: broadcasts its input once, records receptions."""

    def __init__(self, process_id, config, input_value):
        super().__init__(process_id, config)
        self.input_value = input_value
        self.received = []

    def outgoing(self, round_number):
        return broadcast(self.input_value, self.config)

    def receive(self, round_number, incoming):
        self.received.append(dict(incoming))


@pytest.fixture
def process():
    return EchoProcess(1, SystemConfig(n=4, t=1), "v")


class TestBroadcast:
    def test_covers_all_ids_including_self(self):
        config = SystemConfig(n=4, t=1)
        messages = broadcast("m", config)
        assert set(messages) == {1, 2, 3, 4}
        assert all(message == "m" for message in messages.values())


class TestDecisions:
    def test_initially_undecided(self, process):
        assert not process.has_decided()
        assert is_bottom(process.decision)
        assert process.decision_round is None

    def test_decide_records_value_and_round(self, process):
        process.decide("x", round_number=3)
        assert process.has_decided()
        assert process.decision == "x"
        assert process.decision_round == 3

    def test_decide_is_idempotent_for_same_value(self, process):
        process.decide("x", 3)
        process.decide("x", 5)  # no error
        assert process.decision_round == 3  # first decision wins

    def test_decision_is_irrevocable(self, process):
        process.decide("x", 3)
        with pytest.raises(DecisionError):
            process.decide("y", 4)

    def test_cannot_decide_bottom(self, process):
        with pytest.raises(DecisionError):
            process.decide(BOTTOM, 1)

    def test_default_snapshot_exposes_decision(self, process):
        process.decide("x", 1)
        assert process.snapshot() == {"decision": "x"}
