"""Tests for the communication meters."""

import pytest

from repro.runtime.metrics import MessageMetrics, RoundUsage


class TestRoundUsage:
    def test_add_accumulates(self):
        usage = RoundUsage()
        usage.add(bits=10, non_null=True)
        usage.add(bits=0, non_null=False)
        assert usage.messages == 2
        assert usage.non_null_messages == 1
        assert usage.bits == 10


class TestMessageMetrics:
    def test_totals(self):
        metrics = MessageMetrics()
        metrics.record(1, sender=1, receiver=2, bits=8)
        metrics.record(1, sender=1, receiver=3, bits=8)
        metrics.record(2, sender=2, receiver=1, bits=4, non_null=False)
        assert metrics.total_bits == 20
        assert metrics.total_messages == 3
        assert metrics.total_non_null_messages == 2
        assert metrics.rounds_used == 2

    def test_round_breakdown(self):
        metrics = MessageMetrics()
        metrics.record(3, sender=1, receiver=2, bits=8)
        assert metrics.round_usage(3).bits == 8
        assert metrics.round_usage(1).bits == 0

    def test_sender_breakdown(self):
        metrics = MessageMetrics()
        metrics.record(1, sender=5, receiver=2, bits=8)
        metrics.record(2, sender=5, receiver=3, bits=8, non_null=False)
        assert metrics.sender_usage(5).messages == 2
        assert metrics.non_null_by_sender() == {5: 1}

    def test_bits_by_round_sorted(self):
        metrics = MessageMetrics()
        metrics.record(2, 1, 2, bits=4)
        metrics.record(1, 1, 2, bits=8)
        assert metrics.bits_by_round() == [(1, 8), (2, 4)]

    def test_merge(self):
        left, right = MessageMetrics(), MessageMetrics()
        left.record(1, 1, 2, bits=4)
        right.record(1, 2, 1, bits=6)
        right.record(2, 1, 2, bits=1, non_null=False)
        left.merge(right)
        assert left.total_bits == 11
        assert left.total_messages == 3
        assert left.round_usage(1).messages == 2

    def test_empty_metrics(self):
        metrics = MessageMetrics()
        assert metrics.total_bits == 0
        assert metrics.rounds_used == 0
        assert metrics.bits_by_round() == []


class TestSlots:
    """RoundUsage is __slots__-only: no per-instance dict on the hot path."""

    def test_no_instance_dict(self):
        usage = RoundUsage()
        with pytest.raises(AttributeError):
            usage.stray = 1  # type: ignore[attr-defined]
        assert not hasattr(usage, "__dict__")

    def test_equality_and_repr(self):
        assert RoundUsage(2, 1, 16) == RoundUsage(2, 1, 16)
        assert RoundUsage(2, 1, 16) != RoundUsage(2, 1, 17)
        assert "16" in repr(RoundUsage(2, 1, 16))

    def test_defaults_are_zero(self):
        usage = RoundUsage()
        assert (usage.messages, usage.non_null_messages, usage.bits) == (
            0, 0, 0,
        )
