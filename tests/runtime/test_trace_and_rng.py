"""Tests for execution traces and deterministic RNG derivation."""

import numpy as np
import pytest

from repro.runtime.message import Envelope
from repro.runtime.rng import derive_rng, make_rng
from repro.runtime.trace import ExecutionTrace


class TestTrace:
    def test_envelope_queries(self):
        trace = ExecutionTrace()
        trace.record_envelope(Envelope(1, 2, 1, "a"))
        trace.record_envelope(Envelope(2, 1, 1, "b"))
        trace.record_envelope(Envelope(1, 3, 2, "c"))
        assert len(trace.messages_in_round(1)) == 2
        assert [e.payload for e in trace.messages_from(1)] == ["a", "c"]
        assert len(trace.envelopes) == 3

    def test_snapshot_storage(self):
        trace = ExecutionTrace()
        trace.record_snapshot(1, 2, {"state": "s"})
        assert trace.snapshot(1, 2) == {"state": "s"}
        assert trace.snapshot(1, 3) is None
        assert trace.snapshots_in_round(9) == {}
        assert trace.rounds == [1]

    def test_envelope_repr_mentions_route(self):
        envelope = Envelope(1, 2, 3, "payload")
        assert "1->2" in repr(envelope)
        assert "r3" in repr(envelope)

    def test_envelope_value_semantics(self):
        assert Envelope(1, 2, 3, "p") == Envelope(1, 2, 3, "p")
        assert Envelope(1, 2, 3, "p") != Envelope(1, 2, 3, "q")
        assert hash(Envelope(1, 2, 3, "p")) == hash(Envelope(1, 2, 3, "p"))
        assert Envelope(1, 2, 3, "p") != (1, 2, 3, "p")

    def test_envelope_is_slotted(self):
        """Envelopes are allocated per delivered message: keep them lean."""
        envelope = Envelope(1, 2, 3, "p")
        assert not hasattr(envelope, "__dict__")
        with pytest.raises(AttributeError):
            envelope.stray = 1


class TestRng:
    def test_none_seed_is_deterministic(self):
        assert make_rng(None).integers(0, 1000) == make_rng(None).integers(0, 1000)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(5)
        assert make_rng(generator) is generator

    def test_same_key_same_stream(self):
        a = derive_rng(7, "adversary").integers(0, 10**9)
        b = derive_rng(7, "adversary").integers(0, 10**9)
        assert a == b

    def test_different_keys_differ(self):
        a = derive_rng(7, "adversary").integers(0, 10**9)
        b = derive_rng(7, "protocol").integers(0, 10**9)
        assert a != b

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").integers(0, 10**9)
        b = derive_rng(2, "x").integers(0, 10**9)
        assert a != b

    def test_multi_key_paths(self):
        a = derive_rng(1, "ben-or", 3).integers(0, 10**9)
        b = derive_rng(1, "ben-or", 4).integers(0, 10**9)
        assert a != b
