"""Determinism contract of the async scheduler's RNG substreams.

The async backend samples logical delays from
``derive_rng(seed, "scheduler", salt, round)``.  Three properties make
that sampling safe to build on, and this module pins each:

* **Schedule determinism** — the same execution seed always yields the
  same per-round schedule: re-sampling is idempotent, and two fresh
  executions agree event for event.
* **Worker-count independence** — a pooled sweep under the async
  backend is byte-identical to the serial reference, because schedules
  key off each *cell's* seed, never off worker identity or dispatch
  order (same guarantee the fuzz campaign inherits).
* **Substream independence** — the scheduler's stream never collides
  with the adversary's: re-salting the schedule leaves every adversary
  choice (and hence the full result) untouched, and per-round keying
  makes schedules prefix-stable — round ``r``'s schedule cannot depend
  on how many rounds the execution ultimately runs, which is what
  makes a mid-run checkpoint resume schedule-faithful.
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweeps import standard_adversary_makers, sweep
from repro.compact.byzantine_agreement import (
    compact_ba_factory,
    compact_ba_rounds,
)
from repro.compact.payload import compact_sizer, payload_is_null
from repro.core.predicates import byzantine_agreement_predicate
from repro.fuzz.campaign import replay_case
from repro.fuzz.case import FuzzCase
from repro.fuzz.protocols import get_spec
from repro.runtime.engine import run_protocol
from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import AsyncScheduler
from repro.types import SystemConfig

CONFIG = SystemConfig(n=4, t=1)


def _bound_scheduler(seed, max_delay=3, salt=0, rounds=None):
    """Run a real execution and hand back its (bound) async scheduler."""
    scheduler = AsyncScheduler(max_delay=max_delay, salt=salt)
    spec = get_spec("avalanche")
    inputs = spec.sample_inputs(CONFIG, derive_rng(seed, "inputs"))
    run_protocol(
        spec.build(CONFIG),
        CONFIG,
        inputs,
        max_rounds=spec.max_rounds(CONFIG),
        run_full_rounds=(
            rounds if rounds is not None else spec.default_rounds(CONFIG)
        ),
        seed=seed,
        scheduler=scheduler,
    )
    return scheduler


# -- schedule determinism ----------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    max_delay=st.integers(min_value=0, max_value=8),
    salt=st.integers(min_value=0, max_value=2**12),
    round_number=st.integers(min_value=1, max_value=6),
)
def test_same_seed_same_schedule(seed, max_delay, salt, round_number):
    """Two independent executions sample identical schedules — and
    re-sampling a round is idempotent (fresh substream per call)."""
    first = _bound_scheduler(seed, max_delay, salt)
    second = _bound_scheduler(seed, max_delay, salt)
    schedule = first.round_schedule(round_number)
    assert schedule == second.round_schedule(round_number)
    assert schedule == first.round_schedule(round_number)
    # Fault-free run: n senders x n correct receivers.
    assert len(schedule) == CONFIG.n * CONFIG.n
    assert all(0 <= delay <= max_delay for delay, *_ in schedule)


def test_schedule_varies_with_salt_and_round():
    scheduler = _bound_scheduler(5, max_delay=6, salt=0)
    other_salt = _bound_scheduler(5, max_delay=6, salt=1)
    assert scheduler.round_schedule(1) != other_salt.round_schedule(1)
    assert scheduler.round_schedule(1) != scheduler.round_schedule(2)


def test_schedules_are_prefix_stable():
    """Round r's schedule is independent of total execution length —
    the property a schedule-faithful checkpoint resume rests on."""
    short = _bound_scheduler(9, rounds=2)
    full = _bound_scheduler(9)
    for round_number in (1, 2, 3):
        assert short.round_schedule(round_number) == full.round_schedule(
            round_number
        )


# -- worker-count independence -----------------------------------------------


def _compact_grid():
    return dict(
        input_patterns=[{p: p % 2 for p in CONFIG.process_ids}],
        fault_sets=[(1,), (4,)],
        adversary_makers=standard_adversary_makers(),
        seeds=(0, 1),
        predicate=byzantine_agreement_predicate(),
        max_rounds=compact_ba_rounds(CONFIG.t, 1) + 1,
        sizer=compact_sizer(CONFIG, 2),
        is_null=payload_is_null,
    )


def test_async_sweep_byte_identical_for_any_worker_count():
    factory = compact_ba_factory(CONFIG, [0, 1], default=0, k=1)
    grid = _compact_grid()
    blobs = {
        workers: pickle.dumps(sweep(
            factory, CONFIG, workers=workers, scheduler="async:3:7", **grid
        ))
        for workers in (1, 2)
    }
    assert blobs[1] == blobs[2]


def test_async_sweep_matches_lockstep_sweep():
    """The backend axis composes with the executor axis: pooled async
    equals serial lockstep, byte for byte."""
    factory = compact_ba_factory(CONFIG, [0, 1], default=0, k=1)
    grid = _compact_grid()
    lockstep = pickle.dumps(
        sweep(factory, CONFIG, workers=1, scheduler="lockstep", **grid)
    )
    pooled_async = pickle.dumps(
        sweep(factory, CONFIG, workers=2, scheduler="async:5:2", **grid)
    )
    assert lockstep == pooled_async


# -- substream independence --------------------------------------------------


def test_scheduler_stream_disjoint_from_adversary_stream():
    """The derivation path, not luck, separates the streams."""
    scheduler_stream = derive_rng(7, "scheduler", 0, 1)
    adversary_stream = derive_rng(7, "adversary")
    assert not np.array_equal(
        scheduler_stream.integers(0, 2**31, size=16),
        adversary_stream.integers(0, 2**31, size=16),
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    salt=st.integers(min_value=1, max_value=2**10),
)
def test_resalting_never_perturbs_the_adversary(seed, salt):
    """Re-salting the schedule replays the *same* attack: the fuzz
    adversary's choices ride their own substream, so every deterministic
    quantity of the execution is identical."""
    spec = get_spec("compact-ba")
    inputs = spec.sample_inputs(CONFIG, derive_rng(seed, "inputs"))
    case = FuzzCase.build(
        protocol="compact-ba", n=4, t=1, seed=seed, inputs=inputs,
        faulty=(2,),
    )
    baseline = replay_case(case, scheduler="async:3:0")
    resalted = replay_case(case, scheduler=f"async:3:{salt}")
    assert baseline.result.decisions == resalted.result.decisions
    assert (
        baseline.result.metrics.total_bits
        == resalted.result.metrics.total_bits
    )
    assert baseline.violations == resalted.violations
