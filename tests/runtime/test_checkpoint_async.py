"""Checkpointing mid-run executions under the async backend.

Satellite of the scheduler work: a checkpoint taken after ``k`` rounds
of an async execution must be *schedule-faithful* — resumable purely
because schedules are prefix-stable (round ``r``'s delays come from
``derive_rng(seed, "scheduler", salt, r)``, independent of how many
rounds the execution ultimately runs).  Concretely:

* the saved prefix of a partial async run equals the same rounds of
  the full async run (and of the lockstep run — backend invariance);
* save/load round-trips preserve everything the saved form carries;
* a golden gate: a **fresh python process** re-running the identical
  partial execution writes a byte-identical checkpoint file, so the
  artifact is stable across process boundaries, not just within one
  interpreter's object graph.
"""

import pickle
import subprocess
import sys

import pytest

from repro.adversary import EquivocatingAdversary
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.runtime.checkpoint import load_result, save_result
from repro.types import SystemConfig

CONFIG = SystemConfig(n=7, t=2)
SEED = 13
SCHEDULER = "async:3:7"
PARTIAL_ROUNDS = 3


def _run(rounds=None, scheduler=SCHEDULER):
    inputs = {p: p % 2 for p in CONFIG.process_ids}
    kwargs = {}
    return run_compact_byzantine_agreement(
        CONFIG,
        inputs,
        value_alphabet=[0, 1],
        k=2,
        adversary=EquivocatingAdversary([4], 0, 1),
        seed=SEED,
        scheduler=scheduler,
        **kwargs,
    ) if rounds is None else _run_partial(rounds, scheduler)


def _run_partial(rounds, scheduler):
    from repro.compact.byzantine_agreement import (
        compact_ba_factory,
        compact_ba_rounds,
    )
    from repro.compact.payload import compact_sizer, payload_is_null
    from repro.runtime.engine import run_protocol

    inputs = {p: p % 2 for p in CONFIG.process_ids}
    return run_protocol(
        compact_ba_factory(CONFIG, [0, 1], default=0, k=2),
        CONFIG,
        inputs,
        adversary=EquivocatingAdversary([4], 0, 1),
        max_rounds=max(compact_ba_rounds(CONFIG.t, 2), rounds) + 1,
        run_full_rounds=rounds,
        sizer=compact_sizer(CONFIG, 2),
        is_null=payload_is_null,
        seed=SEED,
        scheduler=scheduler,
    )


def test_partial_roundtrip_preserves_everything(tmp_path):
    partial = _run_partial(PARTIAL_ROUNDS, SCHEDULER)
    path = tmp_path / "partial.pkl"
    save_result(partial, path)
    restored = load_result(path)
    assert restored.rounds == PARTIAL_ROUNDS
    assert restored.decisions == partial.decisions
    assert restored.decision_rounds == partial.decision_rounds
    assert restored.metrics.total_bits == partial.metrics.total_bits
    assert (
        restored.metrics.bits_by_round() == partial.metrics.bits_by_round()
    )


def test_partial_async_run_is_a_prefix_of_the_full_run():
    """Schedule faithfulness: stopping early and carrying on later must
    traverse the same schedule — per-round meters of the partial run
    coincide with the full run's first rounds."""
    partial = _run_partial(PARTIAL_ROUNDS, SCHEDULER)
    full = _run()
    assert full.rounds > PARTIAL_ROUNDS
    full_bits = dict(full.metrics.bits_by_round())
    for round_number, bits in partial.metrics.bits_by_round():
        assert full_bits[round_number] == bits
    partial_decided = {
        pid for pid, r in partial.decision_rounds.items()
        if r is not None and r <= PARTIAL_ROUNDS
    }
    for pid in partial_decided:
        assert full.decision_rounds[pid] == partial.decision_rounds[pid]
        assert full.decisions[pid] == partial.decisions[pid]


@pytest.mark.parametrize("scheduler", ("lockstep", "async", SCHEDULER))
def test_partial_run_backend_invariant(scheduler, tmp_path):
    """The checkpoint of round k is the same artifact whichever backend
    wrote it (mid-round states are backend-invariant too, because every
    completed round delivered the same closed message sets)."""
    reference = _run_partial(PARTIAL_ROUNDS, "lockstep")
    other = _run_partial(PARTIAL_ROUNDS, scheduler)
    ref_path = tmp_path / "ref.pkl"
    other_path = tmp_path / "other.pkl"
    save_result(reference, ref_path)
    save_result(other, other_path)
    assert ref_path.read_bytes() == other_path.read_bytes()


_GOLDEN_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.adversary import EquivocatingAdversary
from repro.compact.byzantine_agreement import (
    compact_ba_factory, compact_ba_rounds,
)
from repro.compact.payload import compact_sizer, payload_is_null
from repro.runtime.checkpoint import save_result
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

config = SystemConfig(n=7, t=2)
inputs = {{p: p % 2 for p in config.process_ids}}
result = run_protocol(
    compact_ba_factory(config, [0, 1], default=0, k=2),
    config,
    inputs,
    adversary=EquivocatingAdversary([4], 0, 1),
    max_rounds=max(compact_ba_rounds(config.t, 2), {rounds}) + 1,
    run_full_rounds={rounds},
    sizer=compact_sizer(config, 2),
    is_null=payload_is_null,
    seed={seed},
    scheduler={scheduler!r},
)
save_result(result, {path!r})
"""


def test_fresh_process_writes_byte_identical_checkpoint(tmp_path):
    """Golden gate: two cold interpreters produce the same bytes, and
    they match this process's artifact — the async schedule is a pure
    function of the seed, with no per-process residue (hash
    randomisation, id()-keyed caches) leaking into the saved form."""
    import pathlib

    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    local_path = tmp_path / "local.pkl"
    save_result(_run_partial(PARTIAL_ROUNDS, SCHEDULER), local_path)

    fresh = []
    for tag in ("a", "b"):
        path = tmp_path / f"fresh-{tag}.pkl"
        script = _GOLDEN_SCRIPT.format(
            src=src,
            rounds=PARTIAL_ROUNDS,
            seed=SEED,
            scheduler=SCHEDULER,
            path=str(path),
        )
        subprocess.run(
            [sys.executable, "-c", script], check=True, timeout=120
        )
        fresh.append(path.read_bytes())
    assert fresh[0] == fresh[1]
    assert fresh[0] == local_path.read_bytes()


def test_loaded_checkpoint_round_trips_stably(tmp_path):
    """pickle(load(save(x))) is a fixed point — repeated save/load
    cycles cannot drift the artifact."""
    path_one = tmp_path / "one.pkl"
    path_two = tmp_path / "two.pkl"
    save_result(_run_partial(PARTIAL_ROUNDS, SCHEDULER), path_one)
    save_result(load_result(path_one), path_two)
    assert pickle.dumps(load_result(path_one).metrics) == pickle.dumps(
        load_result(path_two).metrics
    )
    assert load_result(path_one).decisions == load_result(path_two).decisions
