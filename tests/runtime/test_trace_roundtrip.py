"""Trace persistence: to_jsonl / from_jsonl structural round-trips."""

import json

import pytest

from repro.adversary import EquivocatingAdversary
from repro.avalanche.protocol import avalanche_factory
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.runtime.engine import run_protocol
from repro.runtime.trace import TRACE_FORMAT_VERSION, ExecutionTrace


def assert_roundtrips(trace, tmp_path):
    path = tmp_path / "trace.jsonl"
    trace.to_jsonl(path)
    reloaded = ExecutionTrace.from_jsonl(path)
    assert reloaded.envelopes == trace.envelopes
    assert reloaded.rounds == trace.rounds
    for round_number in trace.rounds:
        assert reloaded.snapshots_in_round(
            round_number
        ) == trace.snapshots_in_round(round_number)
    return path


class TestRoundTrips:
    def test_avalanche_trace(self, config4, tmp_path):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_protocol(
            avalanche_factory(), config4, inputs,
            adversary=EquivocatingAdversary([4], 0, 1),
            run_full_rounds=3, record_trace=True,
        )
        assert_roundtrips(result.trace, tmp_path)

    def test_compact_ba_trace(self, config4, tmp_path):
        # exercises the CompactPayload and interned-array codec paths
        result = run_compact_byzantine_agreement(
            config4, {1: 1, 2: 0, 3: 1, 4: 0}, value_alphabet=[0, 1],
            k=2, adversary=EquivocatingAdversary([4], 0, 1),
            record_trace=True,
        )
        path = assert_roundtrips(result.trace, tmp_path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"kind": "trace", "v": TRACE_FORMAT_VERSION}

    def test_reloaded_trace_serves_queries(self, config4, tmp_path):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_protocol(
            avalanche_factory(), config4, inputs,
            run_full_rounds=2, record_trace=True,
        )
        path = tmp_path / "trace.jsonl"
        result.trace.to_jsonl(path)
        reloaded = ExecutionTrace.from_jsonl(path)
        assert reloaded.messages_in_round(1) == result.trace.messages_in_round(1)
        assert reloaded.messages_from(1) == result.trace.messages_from(1)
        assert reloaded.snapshot(1, 2) == result.trace.snapshot(1, 2)


class TestMalformedFiles:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace file"):
            ExecutionTrace.from_jsonl(path)

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "events", "v": 1}\n')
        with pytest.raises(ValueError, match="not a version-1 trace file"):
            ExecutionTrace.from_jsonl(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trace", "v": 99}\n')
        with pytest.raises(ValueError, match="not a version-1 trace file"):
            ExecutionTrace.from_jsonl(path)

    def test_unknown_record_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "trace", "v": 1}\n{"kind": "mystery"}\n'
        )
        with pytest.raises(ValueError, match="unknown trace record"):
            ExecutionTrace.from_jsonl(path)
