"""Scheduler-invariance conformance suite.

The pluggable round engine's contract (docs/runtime.md): for any
communication-closed protocol, every admissible schedule — lockstep or
async, any delay bound, any schedule salt — produces the *identical*
``ExecutionResult``.  This suite is that contract, executable:

* every certified-canonical catalog protocol runs under lockstep and a
  spread of async schedules, and the results must be pickle-identical
  (checkpoint serialisation — the saved form minus unpicklable live
  processes);
* hypothesis quantifies over ``(seed, max_delay, salt)`` and asserts
  the metamorphic invariants — decisions, ``total_bits``, rounds, and
  oracle violation sets never move;
* async deliver traces still satisfy the dynamic closedness checker;
* and a deliberately NON-closed fixture (processes leaking state
  through an out-of-band shared list) demonstrably *diverges* across
  backends — the negative control proving the suite can tell backends
  apart when, and only when, the protocol breaks the canonical form.
"""

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fuzz.campaign import replay_case
from repro.fuzz.case import FuzzCase
from repro.fuzz.protocols import CATALOG_PROTOCOLS, get_spec
from repro.runtime.engine import run_protocol
from repro.runtime.node import Process, broadcast
from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import (
    SCHEDULER_ENV,
    AsyncScheduler,
    LockstepScheduler,
    resolve_scheduler,
)
from repro.types import BOTTOM, SystemConfig

N, T = 4, 1

#: Async backend specs spread across the delay/salt axes.
ASYNC_SPECS = ("async", "async:1", "async:5", "async:3:17", "async:7:101")


def canonical_bytes(result):
    """The checkpoint pickle of ``result``, topology-normalised.

    Live processes hold closures (unpicklable) and are not part of the
    cross-backend contract; a loads/dumps round trip normalises
    object-sharing topology the same way the parallel executor's
    portable path does.
    """
    stripped = dataclasses.replace(result, processes={})
    return pickle.dumps(pickle.loads(pickle.dumps(stripped)))


def catalog_case(protocol, seed, faulty=(1,)):
    spec = get_spec(protocol)
    config = SystemConfig(n=N, t=T)
    inputs = spec.sample_inputs(config, derive_rng(seed, "inputs", protocol))
    return FuzzCase.build(
        protocol=protocol, n=N, t=T, seed=seed, inputs=inputs, faulty=faulty
    )


# -- catalog equivalence -----------------------------------------------------


@pytest.mark.parametrize("protocol", CATALOG_PROTOCOLS)
@pytest.mark.parametrize("backend", ASYNC_SPECS)
def test_catalog_protocol_invariant_under_async(protocol, backend):
    """Every catalog protocol: async result pickle-identical to lockstep."""
    case = catalog_case(protocol, seed=2026)
    reference = replay_case(case, scheduler="lockstep")
    outcome = replay_case(case, scheduler=backend)
    assert outcome.violations == reference.violations
    assert canonical_bytes(outcome.result) == canonical_bytes(
        reference.result
    )


@pytest.mark.parametrize("protocol", CATALOG_PROTOCOLS)
def test_catalog_protocol_invariant_fault_free(protocol):
    case = catalog_case(protocol, seed=7, faulty=())
    reference = replay_case(case, scheduler="lockstep")
    outcome = replay_case(case, scheduler="async:4:9")
    assert canonical_bytes(outcome.result) == canonical_bytes(
        reference.result
    )


# -- metamorphic properties (hypothesis) -------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    max_delay=st.integers(min_value=0, max_value=6),
    salt=st.integers(min_value=0, max_value=2**10),
    protocol=st.sampled_from(("avalanche", "compact-ba")),
)
def test_schedule_permutations_leave_results_unchanged(
    seed, max_delay, salt, protocol
):
    """Any (delay bound, salt) pair is an admissible-schedule identity."""
    case = catalog_case(protocol, seed=seed)
    reference = replay_case(case, scheduler="lockstep")
    outcome = replay_case(case, scheduler=f"async:{max_delay}:{salt}")
    assert outcome.result.decisions == reference.result.decisions
    assert outcome.result.rounds == reference.result.rounds
    assert (
        outcome.result.metrics.total_bits
        == reference.result.metrics.total_bits
    )
    assert outcome.violations == reference.violations
    assert canonical_bytes(outcome.result) == canonical_bytes(
        reference.result
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    salt_a=st.integers(min_value=0, max_value=2**10),
    salt_b=st.integers(min_value=0, max_value=2**10),
)
def test_two_async_schedules_agree_with_each_other(seed, salt_a, salt_b):
    """Backend invariance is transitive: any two async schedules agree."""
    case = catalog_case("eig", seed=seed)
    a = replay_case(case, scheduler=f"async:3:{salt_a}")
    b = replay_case(case, scheduler=f"async:5:{salt_b}")
    assert canonical_bytes(a.result) == canonical_bytes(b.result)


# -- async traces stay closed ------------------------------------------------


@pytest.mark.parametrize("protocol", ("avalanche", "compact-ba", "eig"))
def test_async_deliver_traces_pass_closedness(protocol):
    """Round skew reorders deliveries, never leaks them across rounds."""
    import repro.obs.core as _obs
    from repro.obs.events import EventLog
    from repro.obs.trace import check_closedness

    case = catalog_case(protocol, seed=31)
    log = EventLog()
    with _obs.observing(_obs.Observer(events=log, trace=True, spans=False)):
        replay_case(case, scheduler="async:4:2")
    deliver_records = [
        record for record in log.records if record.get("kind") == "deliver"
    ]
    assert deliver_records, "tracing observer recorded no deliver edges"
    assert check_closedness(log.records) == []


def test_async_actually_reorders_state_changes():
    """The diagnostic counter proves schedules are genuinely permuted.

    Equivalence tests would pass vacuously if the async backend
    secretly ran in lockstep order; this pins that it does not.
    """
    scheduler = AsyncScheduler(max_delay=3, salt=0)
    spec = get_spec("avalanche")
    config = SystemConfig(n=N, t=T)
    inputs = spec.sample_inputs(config, derive_rng(11, "inputs"))
    run_protocol(
        spec.build(config),
        config,
        inputs,
        max_rounds=spec.max_rounds(config),
        run_full_rounds=spec.default_rounds(config),
        seed=11,
        scheduler=scheduler,
    )
    assert scheduler.reordered_state_changes > 0
    assert scheduler.delays_sampled > 0


# -- the negative control ----------------------------------------------------


class _OrderLeakProcess(Process):
    """A deliberately NON-communication-closed processor.

    Correct processes share one mutable list (an out-of-band channel —
    exactly what the canonical form forbids) and decide on the order
    their state changes happen to run in.  Lockstep runs receivers in
    processor-id order; the async backend runs them in
    delivery-completion order, so the decision is backend-visible.
    """

    __slots__ = ("shared",)

    def __init__(self, process_id, config, shared):
        super().__init__(process_id, config)
        self.shared = shared

    def outgoing(self, round_number):
        return broadcast(("ping", self.process_id), self.config)

    def receive(self, round_number, incoming):
        self.shared.append(self.process_id)
        self.decide(tuple(self.shared), round_number)


def _order_leak_factory():
    shared = []

    def factory(process_id, config, value):
        return _OrderLeakProcess(process_id, config, shared)

    return factory


def _run_order_leak(scheduler):
    config = SystemConfig(n=4, t=0)
    inputs = {process_id: 0 for process_id in config.process_ids}
    return run_protocol(
        _order_leak_factory(), config, inputs, seed=11, scheduler=scheduler
    )


def test_non_closed_fixture_diverges_across_backends():
    """Negative control: backends ARE distinguishable — by exactly the
    protocols the canonical form rules out."""
    reference = _run_order_leak("lockstep")
    assert reference.decisions == {
        1: (1,), 2: (1, 2), 3: (1, 2, 3), 4: (1, 2, 3, 4),
    }
    diverged = _run_order_leak("async:3:0")
    assert diverged.decisions != reference.decisions


@pytest.mark.parametrize("salt", range(4))
def test_non_closed_fixture_diverges_for_every_salt(salt):
    reference = _run_order_leak("lockstep")
    assert _run_order_leak(f"async:3:{salt}").decisions != reference.decisions


def test_zero_delay_async_degenerates_to_lockstep_order():
    """With max_delay=0 every event carries delay 0 and the stable heap
    order (sender-major, receiver ascending) makes receivers complete
    in processor-id order — even the leaky fixture cannot tell."""
    reference = _run_order_leak("lockstep")
    degenerate = _run_order_leak("async:0")
    assert degenerate.decisions == reference.decisions


# -- backend selection -------------------------------------------------------


def test_resolve_scheduler_names():
    assert isinstance(resolve_scheduler("lockstep"), LockstepScheduler)
    assert isinstance(resolve_scheduler("sync"), LockstepScheduler)
    backend = resolve_scheduler("async")
    assert isinstance(backend, AsyncScheduler)
    parsed = resolve_scheduler("async:5:17")
    assert (parsed.max_delay, parsed.salt) == (5, 17)
    assert resolve_scheduler("async:2").salt == 0
    instance = AsyncScheduler(max_delay=1)
    assert resolve_scheduler(instance) is instance


@pytest.mark.parametrize(
    "bogus", ("", "asink", "async:", "async:x", "async:1:2:3", "async:-")
)
def test_resolve_scheduler_rejects_malformed_specs(bogus):
    with pytest.raises(ConfigurationError):
        resolve_scheduler(bogus)


def test_resolve_scheduler_honours_environment(monkeypatch):
    monkeypatch.setenv(SCHEDULER_ENV, "async:2:9")
    backend = resolve_scheduler(None)
    assert isinstance(backend, AsyncScheduler)
    assert (backend.max_delay, backend.salt) == (2, 9)
    monkeypatch.delenv(SCHEDULER_ENV)
    assert isinstance(resolve_scheduler(None), LockstepScheduler)


def test_environment_backend_is_equivalent_end_to_end(monkeypatch):
    """REPRO_SCHEDULER=async (the CI leg) changes nothing observable."""
    case = catalog_case("compact-ba", seed=2)
    reference = replay_case(case, scheduler="lockstep")
    monkeypatch.setenv(SCHEDULER_ENV, "async:3:5")
    ambient = replay_case(case)
    assert canonical_bytes(ambient.result) == canonical_bytes(
        reference.result
    )


def test_scheduler_rejects_rebinding_to_a_second_network():
    """Schedulers carry per-execution state; reuse is a hard error."""
    scheduler = AsyncScheduler()
    config = SystemConfig(n=4, t=0)
    inputs = {process_id: 0 for process_id in config.process_ids}
    run_protocol(
        _order_leak_factory(), config, inputs, seed=0, scheduler=scheduler
    )
    with pytest.raises(ConfigurationError):
        run_protocol(
            _order_leak_factory(), config, inputs, seed=0, scheduler=scheduler
        )


def test_async_rejects_negative_delay_bound():
    with pytest.raises(ConfigurationError):
        AsyncScheduler(max_delay=-1)


def test_results_carry_no_backend_field():
    """ExecutionResult must stay backend-anonymous: cross-backend pickle
    identity is the acceptance gate, so the result cannot record which
    scheduler produced it."""
    field_names = {
        field.name for field in dataclasses.fields(_run_order_leak(None))
    }
    assert "scheduler" not in field_names
    assert BOTTOM not in field_names  # guard the guard: set is non-trivial
