"""The hash-consing array store: round-trip and robustness properties.

The kernel's contract is *invisibility*: an interned array must be
observationally a plain nested tuple (equality, ordering of leaves,
hashing, pickling), with all the sharing and metadata living behind
that interface.  These tests pin the contract, the typed-identity
rules (``True`` vs ``1``), and the Byzantine-garbage behaviour: junk
must fail to intern without crashing or polluting the store.
"""

import copy
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays.store import (
    ArrayStore,
    InternedArray,
    clear_shared_stores,
    shared_store,
)
from repro.arrays.value_array import (
    array_depth,
    array_leaves,
    count_leaves,
    is_defined_array,
    unique_leaves,
    validate_array,
)
from repro.arrays.encoding import MessageSizer, encoded_array_bits, structural_key
from repro.errors import ProtocolViolation
from repro.types import BOTTOM


def plain_arrays(n: int, max_depth: int = 3, leaves=None):
    """Strategy: uniform-depth plain nested tuples over ``n``."""
    if leaves is None:
        leaves = st.one_of(
            st.integers(min_value=0, max_value=3),
            st.booleans(),
            st.sampled_from(["a", "b"]),
        )

    def build(depth: int):
        if depth == 0:
            return leaves
        return st.tuples(*[build(depth - 1)] * n)

    return st.integers(min_value=1, max_value=max_depth).flatmap(build)


# -- round-trip properties ---------------------------------------------------


@given(plain_arrays(n=3))
@settings(max_examples=150, deadline=None)
def test_interned_equals_plain(array):
    node = ArrayStore(3).intern(array)
    assert node == array
    assert hash(node) == hash(array)
    assert len(node) == len(array)
    assert tuple(node) == array


@given(plain_arrays(n=2))
@settings(max_examples=100, deadline=None)
def test_interned_preserves_leaf_order(array):
    node = ArrayStore(2).intern(array)
    assert list(array_leaves(node)) == list(array_leaves(array))


@given(plain_arrays(n=2))
@settings(max_examples=100, deadline=None)
def test_interned_pickles_to_plain_tuples(array):
    node = ArrayStore(2).intern(array)
    revived = pickle.loads(pickle.dumps(node))
    assert revived == array
    assert type(revived) is tuple

    def no_interned(value):
        if isinstance(value, tuple):
            assert type(value) is tuple
            for component in value:
                no_interned(component)

    no_interned(revived)
    copied = copy.deepcopy(node)
    assert copied == array and type(copied) is tuple


@given(plain_arrays(n=3))
@settings(max_examples=100, deadline=None)
def test_metadata_matches_plain_walks(array):
    node = ArrayStore(3).intern(array)
    assert node.depth == array_depth(array, 3)
    assert node.leaf_count == count_leaves(array)
    assert node.defined == is_defined_array(array)
    assert node.leaves_unique == unique_leaves(array)


@given(plain_arrays(n=2))
@settings(max_examples=100, deadline=None)
def test_interning_is_canonical(array):
    store = ArrayStore(2)
    first = store.intern(array)
    # Re-interning the plain original, a structural copy, and the node
    # itself all return the same object.
    assert store.intern(array) is first
    rebuilt = pickle.loads(pickle.dumps(array))
    assert store.intern(rebuilt) is first
    assert store.intern(first) is first


def test_subtrees_are_shared():
    store = ArrayStore(2)
    child = store.intern(((0, 1), (1, 0)))
    parent = store.intern((((0, 1), (1, 0)), ((0, 1), (1, 0))))
    assert parent[0] is child and parent[1] is child


def test_typed_leaves_stay_distinct():
    store = ArrayStore(2)
    booleans = store.intern((True, True))
    ones = store.intern((1, 1))
    # Tuple equality says they are equal; canonical identity (and the
    # sizing caches keyed on it) must not merge them.
    assert booleans == ones
    assert booleans is not ones
    assert booleans.key_token is not ones.key_token
    # 16 values -> 4 bits per value leaf; n=2 -> 1 bit per index leaf.
    # Booleans are values, small ints are indices, so the twins must
    # measure differently despite comparing equal.
    sizer = MessageSizer(value_alphabet_size=16, n=2)
    assert sizer.measure(booleans) != sizer.measure(ones)


def test_typed_subtrees_stay_distinct():
    # Typed identity must survive *interior* levels, not just leaves:
    # the parents of (3, 1) and (3, True) are tuple-equal but must not
    # merge, or the bool leaf silently becomes an int in the canonical
    # node (and measures as an index instead of a value).
    store = ArrayStore(2)
    ints = store.intern(((3, 1), (3, 1)))
    mixed = store.intern(((3, 1), (3, True)))
    assert ints == mixed
    assert ints is not mixed
    assert type(mixed[1][1]) is bool
    assert (bool, True) in mixed.leaves_unique
    sizer = MessageSizer(value_alphabet_size=4, n=2)
    assert sizer.measure(ints) != sizer.measure(mixed)


def test_bottom_leaves_mark_undefined():
    store = ArrayStore(2)
    node = store.intern(((BOTTOM, 0), (1, 0)))
    assert not node.defined
    assert is_defined_array(node) is False
    # Closed-form sizing only covers defined arrays; the walk fallback
    # must agree with the plain result.
    plain = ((BOTTOM, 0), (1, 0))
    assert encoded_array_bits(node, 3) == encoded_array_bits(plain, 3)


# -- Byzantine garbage -------------------------------------------------------


@pytest.mark.parametrize(
    "garbage",
    [
        (0,),  # wrong width
        (0, 1, 2),  # wrong width
        ((0, 1), 2),  # ragged: depths differ
        ((0, 1), (2,)),  # inner wrong width
        ([0, 1], [2, 3]),  # lists are scalars -> unhashable leaves
        ({"evil": 1}, 0),  # unhashable leaf
    ],
)
def test_garbage_fails_without_polluting(garbage):
    store = ArrayStore(2)
    baseline = store.intern(((0, 1), (1, 0)))
    size_before = len(store)
    with pytest.raises(ProtocolViolation):
        store.intern(garbage)
    assert store.try_intern(garbage) is None
    # Nothing new was registered, and prior nodes are untouched.
    assert len(store) == size_before
    assert store.intern(((0, 1), (1, 0))) is baseline


def test_try_intern_requires_tuples():
    store = ArrayStore(2)
    assert store.try_intern(0) is None
    assert store.try_intern(None) is None
    node = store.try_intern((0, 1))
    assert node is not None and node == (0, 1)


def test_scalars_pass_through_intern():
    store = ArrayStore(2)
    assert store.intern(5) == 5
    assert store.intern(BOTTOM) is BOTTOM


def test_store_rejects_nonpositive_n():
    with pytest.raises(ValueError):
        ArrayStore(0)


# -- fast-path equivalence ---------------------------------------------------


@given(plain_arrays(n=2))
@settings(max_examples=100, deadline=None)
def test_validate_and_size_fast_paths_agree(array):
    node = ArrayStore(2).intern(array)
    leaf_ok = lambda leaf: not isinstance(leaf, str)  # noqa: E731
    for depth in (None, array_depth(array, 2)):
        assert validate_array(node, 2, depth=depth) == validate_array(
            array, 2, depth=depth
        )
        assert validate_array(
            node, 2, depth=depth, leaf_ok=leaf_ok
        ) == validate_array(array, 2, depth=depth, leaf_ok=leaf_ok)
    for leaf_bits in (1, 3):
        assert encoded_array_bits(node, leaf_bits) == encoded_array_bits(
            array, leaf_bits
        )
    sizer_a = MessageSizer(value_alphabet_size=4, n=2)
    sizer_b = MessageSizer(value_alphabet_size=4, n=2)
    assert sizer_a.measure(node) == sizer_b.measure(array)
    assert sizer_a.measure_value_array(node) == sizer_b.measure_value_array(
        array
    )


def test_structural_key_is_token_for_interned():
    store = ArrayStore(2)
    node = store.intern(((0, 1), (0, 1)))
    assert structural_key(node) is node.key_token
    other = store.intern(((0, 1), (1, 0)))
    assert structural_key(other) is not node.key_token


def test_wrong_store_width_falls_back_to_walk():
    # A store-2 node inspected as an n=3 array must take the plain
    # walk and fail shape validation, not trust its metadata.
    node = ArrayStore(2).intern((0, 1))
    assert validate_array(node, 3) is False
    with pytest.raises(ProtocolViolation):
        array_depth(node, 3)


# -- the shared registry -----------------------------------------------------


def test_shared_store_registry():
    clear_shared_stores()
    try:
        first = shared_store(4)
        assert shared_store(4) is first
        assert shared_store(5) is not first
        node = first.intern((0, 1, 2, 3))
        clear_shared_stores()
        fresh = shared_store(4)
        assert fresh is not first
        # Nodes of a cleared store stay valid tuples.
        assert node == (0, 1, 2, 3)
    finally:
        clear_shared_stores()
