"""The cross-run persistent structural-sharing store.

The contract under test is the ISSUE's acceptance bar: the cache is a
*pure performance layer*.  Cold, warm and disabled runs produce
pickle-equal sweep reports; the cache survives a process restart and
concurrent writers; corruption is quarantined and recomputed, never
trusted; and every workload boundary goes through
:func:`repro.arrays.store.release_shared_stores` so gauges are
recorded and the registry really resets.
"""

import json
import pickle

import pytest

from repro.analysis.sweeps import standard_adversary_makers, sweep
from repro.arrays import persist
from repro.arrays.digest import content_digest
from repro.arrays.store import (
    ArrayStore,
    clear_shared_stores,
    release_shared_stores,
    shared_store,
    shared_store_stats,
)
from repro.compact.expansion import ExpansionState
from repro.core.predicates import byzantine_agreement_predicate
from repro.fullinfo.decision import eig_byzantine_decision
from repro.fullinfo.protocol import full_information_factory
from repro.obs.core import Observer, observing
from repro.types import BOTTOM, SystemConfig, is_bottom


@pytest.fixture(autouse=True)
def fresh_cache_state():
    """Every test starts from no override, no memoised handles."""
    persist.reset_cache()
    persist.forget_caches()
    clear_shared_stores()
    yield
    persist.reset_cache()
    persist.forget_caches()
    clear_shared_stores()


def eig_rule(state, simulated_round, process_id):
    if simulated_round < 2 or not isinstance(state, tuple):
        return BOTTOM
    return eig_byzantine_decision(
        state, 4, 1, process_id, default=0, alphabet=(0, 1)
    )


def run_sweep(cache, workers=1):
    config = SystemConfig(n=4, t=1)
    return sweep(
        full_information_factory((0, 1), decision_rule=eig_rule, horizon=2),
        config,
        input_patterns=[{1: 0, 2: 1, 3: 0, 4: 1}, {1: 1, 2: 1, 3: 1, 4: 0}],
        fault_sets=[(4,), (2,)],
        adversary_makers=standard_adversary_makers((0, 1))[:3],
        seeds=(0,),
        predicate=byzantine_agreement_predicate(),
        max_rounds=2,
        workers=workers,
        cache=cache,
    )


class TestByteIdentity:
    def test_cold_warm_and_disabled_runs_are_pickle_equal(self, tmp_path):
        disabled = run_sweep(cache=False)
        cold = run_sweep(cache=tmp_path)
        persist.forget_caches()  # restart: drop the in-memory handle
        warm = run_sweep(cache=tmp_path)
        assert (
            pickle.dumps(disabled) == pickle.dumps(cold) == pickle.dumps(warm)
        )
        assert disabled.total_bits() == warm.total_bits()
        assert disabled.max_rounds() == warm.max_rounds()
        assert len(disabled.violations) == len(warm.violations)
        warm_cache = persist.store_for(tmp_path)
        assert warm_cache.counters["hit"] > 0
        assert warm_cache.counters["miss"] == 0

    def test_pooled_workers_match_serial_against_the_same_cache(
        self, tmp_path
    ):
        serial = run_sweep(cache=tmp_path)
        persist.forget_caches()
        pooled = run_sweep(cache=tmp_path, workers=2)
        assert pickle.dumps(serial) == pickle.dumps(pooled)


class TestRestartSurvival:
    def test_nodes_and_verdicts_survive_a_restart(self, tmp_path):
        with persist.using_cache(tmp_path) as cache:
            store = shared_store(4)
            node = store.intern(((0, 1, 0, 1), (1, 1, 0, 0),
                                 (0, 0, 1, 1), (1, 0, 1, 0)))
            digest = content_digest(node)
            cache.map_put("test.detail", "k", [1, 2])
            release_shared_stores()
        nodes_before = len(persist.store_for(tmp_path).stats()["kinds"])

        persist.forget_caches()  # simulate a new process
        clear_shared_stores()
        with persist.using_cache(tmp_path) as cache:
            reloaded = shared_store(4)
            # The whole DAG is back: re-interning the same structure
            # adds nothing new.
            count = len(reloaded)
            assert count >= 5  # 4 children + root
            again = reloaded.intern(((0, 1, 0, 1), (1, 1, 0, 0),
                                     (0, 0, 1, 1), (1, 0, 1, 0)))
            assert len(reloaded) == count
            assert content_digest(again) == digest
            assert cache.node_for(reloaded, digest.hex()) is again
            assert cache.map_get("test.detail", "k") == [1, 2]
        assert nodes_before == 2  # one nodes + one map segment kind

    def test_expansion_results_survive_a_restart(self, tmp_path):
        config = SystemConfig(n=4, t=1)

        def expand_once():
            store = shared_store(4)
            expansion = ExpansionState(config, (0, 1), store=store)
            for sender in config.process_ids:
                expansion.set_out(2, sender, sender % 2)
            index_array = store.intern(((1, 2, 3, 4),) * 4)
            return expansion.expand(2, index_array)

        with persist.using_cache(tmp_path):
            first = expand_once()
            assert not is_bottom(first)
            release_shared_stores()
        persist.forget_caches()
        clear_shared_stores()
        with persist.using_cache(tmp_path) as cache:
            before_miss = cache.counters["miss"]
            second = expand_once()
            assert second == first
            # The phi_2 result itself came from the cache: no new
            # expansion misses beyond the (boundary-fingerprint) maps
            # that legitimately load fresh.
            assert cache.counters["hit"] > 0
            assert cache.counters["miss"] >= before_miss


class TestCorruptionQuarantine:
    def test_corrupt_segment_is_quarantined_counted_and_recomputed(
        self, tmp_path
    ):
        baseline = run_sweep(cache=False)
        cold = run_sweep(cache=tmp_path)
        segments = sorted(tmp_path.glob("seg-*.json"))
        assert segments
        for segment in segments:
            segment.write_bytes(b'{"kind": "garbage"}')

        persist.forget_caches()
        clear_shared_stores()
        observer = Observer()
        with observing(observer, close=False):
            warm = run_sweep(cache=tmp_path)
        assert pickle.dumps(warm) == pickle.dumps(baseline)
        quarantined = observer.registry.counter("persist.quarantined")
        assert quarantined == len(segments)
        assert len(list(tmp_path.glob("*.quarantined"))) == len(segments)
        assert not list(tmp_path.glob("seg-*.json.quarantined.extra"))

    def test_verify_reports_corruption(self, tmp_path):
        with persist.using_cache(tmp_path) as cache:
            shared_store(4).intern(((0,) * 4,) * 4)
            release_shared_stores()
            assert cache.verify()["ok"]
            segment = next(tmp_path.glob("seg-*.json"))
            blob = bytearray(segment.read_bytes())
            blob[-2] ^= 0xFF
            segment.write_bytes(bytes(blob))
            verdict = cache.verify()
            assert not verdict["ok"]
            assert verdict["corrupt"][0]["error"] == "sha-mismatch"


class TestConcurrentWriters:
    def test_two_writers_one_directory(self, tmp_path):
        """Two independent handles (≈ two processes) interleave safely."""
        writer_a = persist.PersistentStore(tmp_path)
        writer_b = persist.PersistentStore(tmp_path)
        store_a = ArrayStore(4)
        store_b = ArrayStore(4)
        shared = ((0, 1, 0, 1),) * 4
        only_b = ((1, 1, 1, 1),) * 4
        writer_a.warm_store(store_a)
        writer_b.warm_store(store_b)
        store_a.intern(shared)
        store_b.intern(shared)  # identical content: same segment name
        store_b.intern(only_b)
        writer_a.map_put("d", "k", True)
        writer_b.map_put("d", "k", True)
        writer_b.map_put("d", "k2", False)
        assert writer_a.flush() >= 1
        assert writer_b.flush() >= 1

        reader = persist.PersistentStore(tmp_path)
        assert reader.verify()["ok"]
        fresh = ArrayStore(4)
        reader.warm_store(fresh)
        count = len(fresh)
        fresh.intern(shared)
        fresh.intern(only_b)
        assert len(fresh) == count  # everything was already replayed
        assert reader.map_get("d", "k") is True
        assert reader.map_get("d", "k2") is False
        # Identical content was deduplicated by content address: the
        # reader sees each segment once even if both writers appended
        # a manifest line for it.
        stats = reader.stats()
        assert stats["segments"] == len(list(tmp_path.glob("seg-*.json")))
        lines = [
            json.loads(line)
            for line in (tmp_path / "manifest.jsonl").read_text().splitlines()
            if line.strip()
        ]
        assert {entry["segment"] for entry in lines} == {
            path.name for path in tmp_path.glob("seg-*.json")
        }

    def test_flush_is_idempotent(self, tmp_path):
        cache = persist.PersistentStore(tmp_path)
        store = ArrayStore(4)
        cache.warm_store(store)
        store.intern(((0,) * 4,) * 4)
        assert cache.flush() == 1
        assert cache.flush() == 0  # no new delta


class TestReleaseSharedStores:
    def test_release_records_gauges_flushes_and_resets(self, tmp_path):
        observer = Observer()
        with observing(observer, close=False):
            with persist.using_cache(tmp_path):
                shared_store(4).intern(((0, 1, 1, 0),) * 4)
                assert shared_store_stats()["nodes"] > 0
                release_shared_stores()
        gauges = observer.registry.gauges()
        assert gauges["arrays.shared_store.nodes"] > 0
        assert gauges["arrays.shared_store.stores"] == 1
        assert shared_store_stats()["nodes"] == 0
        assert shared_store_stats()["stores"] == 0
        # The flush really happened while the stores were still alive.
        assert list(tmp_path.glob("seg-*.json"))

    def test_release_without_cache_or_observer_still_clears(self):
        shared_store(4).intern(((1, 0, 0, 1),) * 4)
        release_shared_stores()
        assert shared_store_stats()["nodes"] == 0


class TestGc:
    def test_gc_prunes_by_age_and_rewrites_the_manifest(self, tmp_path):
        cache = persist.PersistentStore(tmp_path)
        store = ArrayStore(4)
        cache.warm_store(store)
        store.intern(((0,) * 4,) * 4)
        cache.flush()
        stats = cache.stats()
        assert stats["segments"] == 1
        segment = next(tmp_path.glob("seg-*.json"))
        now = segment.stat().st_mtime
        keep = cache.gc(keep_days=1.0, now=now)
        assert keep["removed"] == 0
        drop = cache.gc(keep_days=1.0, now=now + 2 * 86400.0)
        assert drop["removed"] == 1
        assert not list(tmp_path.glob("seg-*.json"))
        reread = persist.PersistentStore(tmp_path)
        assert reread.stats()["segments"] == 0
