"""Unit and property tests for nested arrays (Section 5.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.arrays.value_array import (
    array_depth,
    array_leaves,
    count_leaves,
    is_defined_array,
    is_index_scalar,
    iter_paths,
    leaf_at,
    make_array,
    map_leaves,
    replace_at,
    uniform_array,
    validate_array,
)
from repro.errors import ProtocolViolation
from repro.types import BOTTOM


def nested_arrays(n: int, max_depth: int = 3):
    """Hypothesis strategy: uniform-depth arrays over small int leaves."""

    def build(depth: int):
        if depth == 0:
            return st.integers(min_value=0, max_value=9)
        return st.tuples(*[build(depth - 1)] * n)

    return st.integers(min_value=0, max_value=max_depth).flatmap(build)


class TestDepth:
    def test_scalar_is_depth_zero(self):
        assert array_depth(5, n=3) == 0

    def test_flat_tuple_is_depth_one(self):
        assert array_depth((1, 2, 3), n=3) == 1

    def test_nested_depth_two(self):
        array = ((1, 2, 3), (4, 5, 6), (7, 8, 9))
        assert array_depth(array, n=3) == 2

    def test_wrong_width_rejected(self):
        with pytest.raises(ProtocolViolation):
            array_depth((1, 2), n=3)

    def test_ragged_rejected(self):
        with pytest.raises(ProtocolViolation):
            array_depth(((1, 2, 3), 4, 5), n=3)

    def test_mixed_subarray_width_rejected(self):
        with pytest.raises(ProtocolViolation):
            array_depth(((1, 2), (3, 4, 5), (6, 7, 8)), n=3)

    @given(nested_arrays(n=3))
    def test_depth_counts_leaves(self, array):
        depth = array_depth(array, n=3)
        assert count_leaves(array) == 3**depth


class TestValidate:
    def test_accepts_well_formed(self):
        assert validate_array((0, 1, 0), n=3, depth=1)

    def test_rejects_wrong_depth(self):
        assert not validate_array((0, 1, 0), n=3, depth=2)

    def test_rejects_bad_leaf(self):
        assert not validate_array(
            (0, "junk", 0), n=3, depth=1, leaf_ok=lambda leaf: leaf in (0, 1)
        )

    def test_never_raises_on_garbage(self):
        assert not validate_array(((1,), 2, 3), n=3)
        assert not validate_array((1, 2), n=3)

    def test_scalar_leaf_check(self):
        assert validate_array(1, n=3, depth=0, leaf_ok=lambda leaf: leaf == 1)
        assert not validate_array(2, n=3, depth=0, leaf_ok=lambda leaf: leaf == 1)


class TestUniformArray:
    def test_depth_zero_is_scalar(self):
        assert uniform_array(7, depth=0, n=4) == 7

    def test_shape_and_leaves(self):
        array = uniform_array(0, depth=2, n=4)
        assert array_depth(array, n=4) == 2
        assert all(leaf == 0 for leaf in array_leaves(array))

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            uniform_array(0, depth=-1, n=4)


class TestPaths:
    def test_leaf_at_root(self):
        assert leaf_at(5, ()) == 5

    def test_leaf_at_nested(self):
        array = ((1, 2), (3, 4))
        assert leaf_at(array, (2, 1)) == 3

    def test_leaf_at_is_one_based(self):
        array = (10, 20, 30)
        assert leaf_at(array, (1,)) == 10
        assert leaf_at(array, (3,)) == 30

    def test_path_below_leaves_rejected(self):
        with pytest.raises(ProtocolViolation):
            leaf_at((1, 2), (1, 1))

    def test_path_out_of_range_rejected(self):
        with pytest.raises(ProtocolViolation):
            leaf_at((1, 2), (3,))

    def test_iter_paths_count(self):
        assert len(list(iter_paths(n=3, depth=2))) == 9

    def test_iter_paths_matches_leaves(self):
        array = ((1, 2), (3, 4))
        leaves = [leaf_at(array, path) for path in iter_paths(n=2, depth=2)]
        assert leaves == list(array_leaves(array))

    @given(nested_arrays(n=2))
    def test_replace_then_read_back(self, array):
        depth = array_depth(array, n=2)
        if depth == 0:
            assert replace_at(array, (), 99) == 99
            return
        path = (1,) * depth
        replaced = replace_at(array, path, 99)
        assert leaf_at(replaced, path) == 99
        # Everything else is untouched.
        other = (2,) + (1,) * (depth - 1)
        assert leaf_at(replaced, other) == leaf_at(array, other)


class TestMapAndDefined:
    def test_map_leaves_is_substitutive(self):
        array = ((1, 2), (3, 4))
        assert map_leaves(lambda leaf: leaf * 10, array) == ((10, 20), (30, 40))

    def test_map_preserves_shape(self):
        array = ((1, 2), (3, 4))
        assert array_depth(map_leaves(str, array), n=2) == 2

    def test_defined_array(self):
        assert is_defined_array((1, 2, 3))
        assert not is_defined_array((1, BOTTOM, 3))
        assert not is_defined_array(BOTTOM)

    def test_bottom_deep_inside_makes_undefined(self):
        assert not is_defined_array(((1, 2), (BOTTOM, 4)))


class TestIndexScalar:
    def test_valid_indices(self):
        assert is_index_scalar(1, n=4)
        assert is_index_scalar(4, n=4)

    def test_out_of_range(self):
        assert not is_index_scalar(0, n=4)
        assert not is_index_scalar(5, n=4)

    def test_booleans_are_not_indices(self):
        assert not is_index_scalar(True, n=4)

    def test_non_ints_are_not_indices(self):
        assert not is_index_scalar("1", n=4)
        assert not is_index_scalar(1.0, n=4)
