"""Tests for partial functions, extension, substitutivity."""

import pytest
from hypothesis import given, strategies as st

from repro.arrays.partial import (
    PartialFunction,
    compose,
    identity,
    is_extension,
    substitutive_apply,
    table_function,
)
from repro.types import BOTTOM, is_bottom


class TestPartialFunction:
    def test_bottom_propagates_without_calling(self):
        calls = []

        def record(value):
            calls.append(value)
            return value

        function = PartialFunction(record)
        assert is_bottom(function(BOTTOM))
        assert calls == []

    def test_identity_is_total(self):
        function = identity()
        assert function(42) == 42
        assert function("x") == "x"

    def test_defined_at(self):
        function = table_function({1: "a"})
        assert function.defined_at(1)
        assert not function.defined_at(2)
        assert not function.defined_at(BOTTOM)

    def test_repr_carries_name(self):
        assert "identity" in repr(identity())


class TestTableFunction:
    def test_lookup(self):
        function = table_function({1: 10, 2: 20})
        assert function(1) == 10
        assert is_bottom(function(3))

    def test_snapshot_semantics(self):
        table = {1: 10}
        function = table_function(table)
        table[2] = 20  # later mutation must not leak in
        assert is_bottom(function(2))


class TestCompose:
    def test_composition_order(self):
        double = PartialFunction(lambda value: value * 2)
        increment = PartialFunction(lambda value: value + 1)
        assert compose(double, increment)(3) == 8  # double(inc(3))

    def test_bottom_from_inner_short_circuits(self):
        inner = table_function({})
        outer_calls = []
        outer = PartialFunction(lambda value: outer_calls.append(value))
        assert is_bottom(compose(outer, inner)(5))
        assert outer_calls == []

    def test_bottom_from_outer(self):
        inner = identity()
        outer = table_function({})
        assert is_bottom(compose(outer, inner)(5))


class TestSubstitutiveApply:
    def test_scalar(self):
        assert substitutive_apply(lambda value: value + 1, 4) == 5

    def test_distributes_over_structure(self):
        array = ((1, 2), (3, 4))
        assert substitutive_apply(lambda value: value * 2, array) == (
            (2, 4),
            (6, 8),
        )

    def test_one_undefined_leaf_poisons_everything(self):
        function = table_function({1: "a", 2: "b", 3: "c"})
        array = ((1, 2), (3, 99))
        assert is_bottom(substitutive_apply(function, array))

    def test_bottom_array_is_undefined(self):
        assert is_bottom(substitutive_apply(lambda value: value, BOTTOM))

    def test_short_circuits_on_first_undefined(self):
        calls = []

        def tracked(value):
            calls.append(value)
            return BOTTOM if value == 2 else value

        substitutive_apply(tracked, (1, 2, 3))
        assert calls == [1, 2]  # 3 never evaluated

    @given(
        st.tuples(
            st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)
        )
    )
    def test_substitutivity_property(self, array):
        """f((a_1, ..., a_n)) == (f(a_1), ..., f(a_n)) on defined input."""
        function = lambda value: value + 100  # noqa: E731
        assert substitutive_apply(function, array) == tuple(
            substitutive_apply(function, component) for component in array
        )


class TestExtension:
    def test_extension_holds(self):
        base = table_function({1: "a"})
        extended = table_function({1: "a", 2: "b"})
        assert is_extension(extended, base, domain=[1, 2, 3])

    def test_extension_fails_on_conflict(self):
        base = table_function({1: "a"})
        conflicting = table_function({1: "z", 2: "b"})
        assert not is_extension(conflicting, base, domain=[1, 2])

    def test_every_function_extends_the_empty_one(self):
        empty = table_function({})
        anything = table_function({1: "a"})
        assert is_extension(anything, empty, domain=range(10))

    def test_extension_is_not_symmetric(self):
        base = table_function({1: "a"})
        extended = table_function({1: "a", 2: "b"})
        assert not is_extension(base, extended, domain=[1, 2])
