"""Stable structural content digests: the persistence layer's keys.

The whole cross-run cache (:mod:`repro.arrays.persist`) is sound only
if :func:`repro.arrays.digest.content_digest` is a *stable* function
of typed structure: equal across stores, processes and kernels,
different for typed-distinguishable structures (``(True, True)`` vs
``(1, 1)``), and ``None`` — never wrong — on anything unstable.
These tests pin exactly those properties.
"""

import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays.digest import (
    content_digest,
    decode_leaf,
    decode_value,
    encode_leaf,
    encode_value,
    leaf_digest,
    value_digest,
    values_fingerprint,
)
from repro.arrays.flat import FLAT_KERNEL, PYTHON_KERNEL, use_kernel
from repro.arrays.store import ArrayStore
from repro.types import BOTTOM


def digest_of(structure, n=2):
    """Content digest of ``structure`` interned into a fresh store."""
    node = ArrayStore(n).intern(structure)
    return content_digest(node)


def plain_arrays(n: int, max_depth: int = 3):
    leaves = st.one_of(
        st.integers(min_value=-3, max_value=3),
        st.booleans(),
        st.sampled_from(["a", "b", ""]),
        st.floats(allow_nan=False, width=64),
        st.binary(max_size=3),
        st.none(),
    )

    def build(depth: int):
        if depth == 0:
            return leaves
        return st.tuples(*[build(depth - 1)] * n)

    return st.integers(min_value=1, max_value=max_depth).flatmap(build)


class TestTypedLeafIdentity:
    def test_bool_and_int_arrays_differ(self):
        assert digest_of((True, True)) != digest_of((1, 1))

    def test_float_and_int_differ(self):
        assert digest_of((1.0, 0)) != digest_of((1, 0))

    def test_str_and_bytes_differ(self):
        assert digest_of(("a", "a")) != digest_of((b"a", b"a"))

    def test_leaf_digest_none_for_foreign_types(self):
        class Weird:
            pass

        assert leaf_digest(Weird()) is None
        # Exact types only: a bool-like subclass must not borrow the
        # builtin tag (its equality semantics may differ).
        class FakeInt(int):
            pass

        assert leaf_digest(FakeInt(3)) is None

    def test_bottom_has_a_digest(self):
        assert leaf_digest(BOTTOM) is not None
        assert leaf_digest(BOTTOM) != leaf_digest("_")


class TestStability:
    def test_equal_across_distinct_stores(self):
        structure = ((0, 1), (1, 0))
        assert digest_of(structure) == digest_of(structure)

    def test_memoised_on_the_node(self):
        node = ArrayStore(2).intern(((0, 1), (1, 0)))
        first = content_digest(node)
        assert node._content_digest == first
        assert content_digest(node) is node._content_digest

    def test_equal_across_kernels(self):
        structure = (((0, 1), (1, 1)), ((1, 0), (0, 0)))
        with use_kernel(PYTHON_KERNEL):
            python_digest = digest_of(structure)
        with use_kernel(FLAT_KERNEL):
            flat_digest = digest_of(structure)
        assert python_digest == flat_digest

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="fork-based cross-process check"
    )
    def test_equal_across_processes(self):
        structure = ((0, True), ("a", 1.5))
        parent_digest = digest_of(structure)
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: recompute from scratch and report
            os.close(read_fd)
            try:
                child_digest = digest_of(structure) or b""
                os.write(write_fd, child_digest)
            finally:
                os.close(write_fd)
                os._exit(0)
        os.close(write_fd)
        child_bytes = os.read(read_fd, 64)
        os.close(read_fd)
        os.waitpid(pid, 0)
        assert child_bytes == parent_digest

    @settings(max_examples=60, deadline=None)
    @given(plain_arrays(2))
    def test_digest_is_a_function_of_typed_structure(self, structure):
        first = digest_of(structure)
        second = digest_of(structure)
        assert first == second
        assert first is not None

    @settings(max_examples=60, deadline=None)
    @given(plain_arrays(2), plain_arrays(2))
    def test_distinct_typed_structures_get_distinct_digests(self, a, b):
        typed_a = tuple_typed(a)
        typed_b = tuple_typed(b)
        if typed_a == typed_b:
            assert digest_of(a) == digest_of(b)
        else:
            assert digest_of(a) != digest_of(b)


def tuple_typed(structure):
    """Structure with every leaf tagged by its exact type."""
    if isinstance(structure, tuple):
        return tuple(tuple_typed(part) for part in structure)
    return (type(structure).__name__, repr(structure))


class TestUnstableValues:
    def test_foreign_leaf_poisons_the_whole_digest(self):
        class Opaque:
            def __eq__(self, other):
                return isinstance(other, Opaque)

            def __hash__(self):
                return 7

        node = ArrayStore(2).intern((Opaque(), 0))
        assert content_digest(node) is None

    def test_value_digest_rejects_plain_tuples(self):
        # A plain tuple has no canonical identity: digesting it would
        # let a non-interned adversarial structure alias a node.
        assert value_digest((0, 1)) is None
        assert value_digest(0) is not None

    def test_values_fingerprint_order_insensitive(self):
        assert values_fingerprint([0, 1]) == values_fingerprint([1, 0])
        assert values_fingerprint([0, 1]) != values_fingerprint([0, 2])
        assert values_fingerprint([0, object()]) is None


class TestLeafCodec:
    @settings(max_examples=80, deadline=None)
    @given(
        st.one_of(
            st.booleans(),
            st.integers(),
            st.floats(allow_nan=True, width=64),
            st.text(max_size=5),
            st.binary(max_size=5),
            st.none(),
            st.just(BOTTOM),
        )
    )
    def test_round_trip_preserves_type_and_value(self, leaf):
        encoded = encode_leaf(leaf)
        assert encoded is not None
        decoded = decode_leaf(encoded)
        assert type(decoded) is type(leaf)
        if leaf is BOTTOM:
            assert decoded is BOTTOM
        elif isinstance(leaf, float):
            # Bit-exact (covers -0.0 and NaN payloads, not just ==).
            import struct

            assert struct.pack(">d", decoded) == struct.pack(">d", leaf)
        else:
            assert decoded == leaf

    def test_negative_zero_distinct_from_zero(self):
        assert leaf_digest(0.0) != leaf_digest(-0.0)

    def test_encode_rejects_foreign_types(self):
        assert encode_leaf(object()) is None

    def test_value_codec_round_trips_nested_tuples(self):
        value = ((0, True), ("x", (b"y", None)))
        encoded = encode_value(value)
        assert encoded is not None
        decoded = decode_value(encoded)
        assert decoded == value
        assert pickle.dumps(decoded) == pickle.dumps(value)

    def test_value_codec_rejects_unencodable(self):
        assert encode_value((object(),)) is None
