"""The flat integer-table kernel: mirror fidelity and kernel equality.

The flat kernel's contract is *byte-identity*: with ``REPRO_KERNEL``
flipped, every measured size, every decision, every expansion — and
ultimately every serialised execution outcome — must be
indistinguishable from the pure-Python reference path.  These tests
pin that contract at three levels: the table mirror itself (rows
reproduce the interned DAG exactly), the hot primitives (sizer,
EIG resolution, expansion) under hypothesis-generated and
Byzantine-ragged inputs, and whole fuzz-corpus replays compared as
pickled bytes.
"""

import pathlib
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays.encoding import MessageSizer, encoded_array_bits
from repro.arrays.flat import (
    FLAT_KERNEL,
    KERNEL_ENV,
    PYTHON_KERNEL,
    FlatTables,
    kernel_name,
    set_kernel,
    tables_for,
    use_kernel,
)
from repro.arrays.store import ArrayStore, InternedArray, clear_shared_stores
from repro.compact.expansion import ExpansionState
from repro.errors import ConfigurationError, ProtocolViolation
from repro.fullinfo.decision import eig_byzantine_decision
from repro.fuzz.campaign import replay_case
from repro.fuzz.case import load_corpus
from repro.types import BOTTOM, SystemConfig

from tests.arrays.test_store import plain_arrays

CORPUS_DIR = pathlib.Path(__file__).parent.parent / "fuzz" / "corpus"


def uniform_trees(n: int, depth: int, leaves):
    """Strategy: one plain nested tuple of exactly ``depth`` levels."""
    strategy = leaves
    for _ in range(depth):
        strategy = st.tuples(*[strategy] * n)
    return strategy


@pytest.fixture(autouse=True)
def _fresh_shared_stores():
    clear_shared_stores()
    yield
    clear_shared_stores()


# -- kernel selection --------------------------------------------------------


class TestKernelSwitch:
    def test_default_is_flat(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert kernel_name() == FLAT_KERNEL

    def test_environment_selects_python(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "python")
        assert kernel_name() == PYTHON_KERNEL

    def test_environment_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "  FLAT ")
        assert kernel_name() == FLAT_KERNEL

    def test_typoed_environment_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "flatt")
        with pytest.raises(ConfigurationError):
            kernel_name()

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "python")
        with use_kernel(FLAT_KERNEL):
            assert kernel_name() == FLAT_KERNEL
        assert kernel_name() == PYTHON_KERNEL

    def test_unknown_override_raises(self):
        with pytest.raises(ConfigurationError):
            set_kernel("numpy")

    def test_use_kernel_nests_and_restores(self):
        with use_kernel(PYTHON_KERNEL):
            with use_kernel(FLAT_KERNEL):
                assert kernel_name() == FLAT_KERNEL
            assert kernel_name() == PYTHON_KERNEL

    def test_use_kernel_restores_after_error(self):
        with pytest.raises(RuntimeError):
            with use_kernel(PYTHON_KERNEL):
                raise RuntimeError("boom")
        # The override must be cleared again despite the exception.
        with use_kernel(FLAT_KERNEL):
            assert kernel_name() == FLAT_KERNEL


# -- the table mirror --------------------------------------------------------


def collect_nodes(node):
    """Every interned node reachable from ``node``, parents included."""
    seen = {}

    def walk(current):
        if current.key_token in seen:
            return
        seen[current.key_token] = current
        for component in current:
            if type(component) is InternedArray:
                walk(component)

    walk(node)
    return list(seen.values())


class TestTableMirror:
    @given(plain_arrays(n=3))
    @settings(max_examples=120, deadline=None)
    def test_rows_reproduce_interned_metadata(self, array):
        store = ArrayStore(3)
        root = store.intern(array)
        tables = tables_for(store)
        tables.sync()
        for node in collect_nodes(root):
            row = tables.row_of(node)
            assert tables.node_at(row) is node
            assert int(tables.depth[row]) == node.depth
            assert int(tables.leaf_count[row]) == node.leaf_count
            assert bool(tables.defined[row]) == node.defined

    @given(plain_arrays(n=3))
    @settings(max_examples=120, deadline=None)
    def test_child_refs_decode_to_components(self, array):
        store = ArrayStore(3)
        root = store.intern(array)
        tables = tables_for(store)
        tables.sync()
        for node in collect_nodes(root):
            row = tables.row_of(node)
            for slot, component in enumerate(node):
                ref = int(tables.children[row, slot])
                if type(component) is InternedArray:
                    assert ref >= 0
                    assert tables.node_at(ref) is component
                else:
                    assert ref < 0
                    decoded = tables.leaf_at(-(ref + 1))
                    assert decoded == component
                    assert type(decoded) is type(component)

    def test_leaf_codes_are_typed(self):
        store = ArrayStore(2)
        store.intern((True, 1))
        tables = tables_for(store)
        tables.sync()
        code_true = tables.code_of((bool, True))
        code_one = tables.code_of((int, 1))
        assert code_true is not None and code_one is not None
        assert code_true != code_one
        assert tables.leaf_at(code_true) is True
        assert tables.leaf_at(code_one) == 1

    def test_mirror_is_incremental(self):
        store = ArrayStore(2)
        first = store.intern(((0, 1), (1, 0)))
        tables = tables_for(store)
        rows_after_first = tables.sync()
        assert rows_after_first == len(tables)
        second = store.intern(((0, 1), (0, 0)))
        rows_after_second = tables.sync()
        assert rows_after_second > rows_after_first
        # Old rows stay put; the shared child kept its row.
        assert tables.row_of(first) < rows_after_first
        assert tables.row_of(second) >= rows_after_first

    def test_tables_for_is_memoised_per_store(self):
        store = ArrayStore(2)
        assert tables_for(store) is tables_for(store)
        assert isinstance(tables_for(store), FlatTables)
        assert tables_for(ArrayStore(2)) is not tables_for(store)


# -- cross-kernel equality of the hot primitives -----------------------------


def both_kernels(operation):
    """Run ``operation`` under each kernel on its own shared stores."""
    results = {}
    for kernel in (PYTHON_KERNEL, FLAT_KERNEL):
        clear_shared_stores()
        with use_kernel(kernel):
            results[kernel] = operation()
    clear_shared_stores()
    return results[PYTHON_KERNEL], results[FLAT_KERNEL]


class TestKernelEquality:
    @given(plain_arrays(n=3))
    @settings(max_examples=100, deadline=None)
    def test_sizer_measures_identically(self, array):
        def measure():
            store = ArrayStore(3)
            node = store.intern(array)
            sizer = MessageSizer(value_alphabet_size=4, n=3)
            return (
                sizer.measure(node),
                sizer.measure(array),
                encoded_array_bits(node, leaf_bits=2),
            )

        python_bits, flat_bits = both_kernels(measure)
        assert python_bits == flat_bits

    @given(
        uniform_trees(
            n=4,
            depth=2,
            leaves=st.one_of(
                st.integers(min_value=0, max_value=1),
                st.just("garbage"),
                st.just(BOTTOM),
            ),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_eig_decision_identical(self, state):
        def decide():
            store = ArrayStore(4)
            node = store.intern(state)
            return (
                eig_byzantine_decision(
                    node, n=4, t=1, process_id=1, default=0, alphabet=[0, 1]
                ),
                eig_byzantine_decision(
                    node, n=4, t=1, process_id=1, default=0
                ),
            )

        python_result, flat_result = both_kernels(decide)
        assert python_result == flat_result

    def test_eig_decision_on_ragged_state_identical(self):
        # A Byzantine processor relays a ragged (wrong-arity) level:
        # both kernels must degrade identically, without crashing.
        ragged = (
            ((0, 1, 0, 1), (1, 1, 1, 1), (0, 0), (1, 0, 1, 0)),
            "garbage",
            ((1, 1, 1, 1), (0, 0, 0, 0), (1, 1, 1, 1), (0, 0, 0, 0)),
            ((0, 1, 0, 1), (1, 0, 1, 0), (0, 1, 0, 1), (1, 0, 1, 0)),
        )

        def decide():
            try:
                return eig_byzantine_decision(
                    ragged, n=4, t=1, process_id=2, default=0, alphabet=[0, 1]
                )
            except ProtocolViolation as violation:
                return ("rejected", str(violation))

        python_result, flat_result = both_kernels(decide)
        assert python_result == flat_result
        assert python_result[0] == "rejected"

    @given(
        uniform_trees(
            n=3,
            depth=2,
            leaves=st.one_of(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=1, max_value=3),
            ),
        ),
        st.sets(st.integers(min_value=1, max_value=3)),
    )
    @settings(max_examples=80, deadline=None)
    def test_expansion_identical(self, array, decided):
        config = SystemConfig(n=3, t=1)

        def expand():
            store = ArrayStore(3)
            expansion = ExpansionState(config, [0, 1], store=store)
            for sender in sorted(decided):
                expansion.set_out(2, sender, store.intern((0, 1, sender % 2)))
            node = store.intern(array)
            first = expansion.expand(2, node)
            identity = expansion.expand(1, node)
            # Defined results are memoised; a second call must agree.
            assert expansion.expand(2, node) == first
            return (first, identity, expansion.defined(2, node))

        python_result, flat_result = both_kernels(expand)
        assert python_result == flat_result


# -- corpus replay: whole executions, compared as bytes ----------------------


_ENTRIES = load_corpus(CORPUS_DIR)


def replay_bytes(case):
    """A canonical serialisation of everything a replay determined."""
    outcome = replay_case(case)
    result = outcome.result
    return pickle.dumps(
        (
            result.rounds,
            sorted(result.decisions.items()),
            sorted(result.decision_rounds.items()),
            result.answer_vector(),
            result.metrics.as_counters(),
            sorted(result.metrics.bits_by_round()),
            outcome.violations,
        )
    )


@pytest.mark.parametrize(
    "case",
    [case for _, case in _ENTRIES],
    ids=[path.name for path, _ in _ENTRIES],
)
def test_corpus_replay_bytes_identical_across_kernels(case):
    python_blob, flat_blob = both_kernels(lambda: replay_bytes(case))
    assert python_blob == flat_blob
