"""Tests for exact bit accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.arrays.encoding import (
    HEADER_BITS,
    NULL_BITS,
    MessageSizer,
    bits_for_alphabet,
    encoded_array_bits,
    encoded_message_bits,
    structural_key,
)
from repro.errors import EncodingError
from repro.types import BOTTOM


class TestAlphabetBits:
    def test_binary_is_one_bit(self):
        assert bits_for_alphabet(2) == 1

    def test_powers_of_two(self):
        assert bits_for_alphabet(4) == 2
        assert bits_for_alphabet(8) == 3

    def test_non_powers_round_up(self):
        assert bits_for_alphabet(3) == 2
        assert bits_for_alphabet(5) == 3

    def test_unary_alphabet_still_costs_a_bit(self):
        assert bits_for_alphabet(1) == 1

    def test_empty_alphabet_rejected(self):
        with pytest.raises(EncodingError):
            bits_for_alphabet(0)


class TestArrayBits:
    def test_scalar(self):
        assert encoded_array_bits(0, leaf_bits=3) == 3

    def test_bottom_is_free(self):
        assert encoded_array_bits(BOTTOM, leaf_bits=3) == NULL_BITS == 0

    def test_flat_array(self):
        assert encoded_array_bits((0, 1, 0), leaf_bits=1) == HEADER_BITS + 3

    def test_nested_array(self):
        array = ((0, 1), (1, 0))
        expected = HEADER_BITS + 2 * (HEADER_BITS + 2)
        assert encoded_array_bits(array, leaf_bits=1) == expected

    @given(st.integers(0, 3), st.integers(2, 4))
    def test_matches_closed_form(self, depth, n):
        """Uniform arrays match the analytic node/leaf count."""
        from repro.arrays.value_array import uniform_array

        array = uniform_array(0, depth=depth, n=n)
        leaves = n**depth
        nodes = sum(n**level for level in range(depth))
        assert (
            encoded_array_bits(array, leaf_bits=5)
            == leaves * 5 + nodes * HEADER_BITS
        )


class TestMessageBits:
    def test_mixed_leaf_costs(self):
        message = (1, "v")
        cost = encoded_message_bits(
            message, lambda leaf: 3 if isinstance(leaf, int) else 7
        )
        assert cost == HEADER_BITS + 3 + 7


class TestMessageSizer:
    def test_index_leaves_cost_index_bits(self):
        sizer = MessageSizer(value_alphabet_size=1024, n=4)
        # ids 1..4 are indices (2 bits), not values (10 bits)
        assert sizer.measure(3) == 2

    def test_value_leaves_cost_value_bits(self):
        sizer = MessageSizer(value_alphabet_size=1024, n=4)
        assert sizer.measure("payload") == 10

    def test_out_of_range_int_is_a_value(self):
        sizer = MessageSizer(value_alphabet_size=1024, n=4)
        assert sizer.measure(99) == 10

    def test_booleans_are_values_not_indices(self):
        sizer = MessageSizer(value_alphabet_size=1024, n=4)
        assert sizer.measure(True) == 10

    def test_measure_value_array_forces_value_bits(self):
        sizer = MessageSizer(value_alphabet_size=2, n=4)
        # leaves that look like indices are still charged as values
        assert sizer.measure_value_array((1, 2, 3, 4)) == HEADER_BITS + 4

    def test_measure_index_array(self):
        sizer = MessageSizer(value_alphabet_size=1024, n=4)
        assert sizer.measure_index_array((1, 2, 3, 4)) == HEADER_BITS + 4 * 2

    def test_bottom_free_everywhere(self):
        sizer = MessageSizer(value_alphabet_size=2, n=4)
        assert sizer.measure(BOTTOM) == 0
        assert sizer.measure_value_array(BOTTOM) == 0


class TestStructuralKey:
    def test_equal_messages_share_key(self):
        assert structural_key((1, (2, 3))) == structural_key((1, (2, 3)))

    def test_key_discriminates_leaf_types(self):
        """True == 1, but their measured costs may differ."""
        assert structural_key(True) != structural_key(1)
        assert structural_key((True,)) != structural_key((1,))
        assert structural_key(1.0) != structural_key(1)

    def test_unhashable_leaf_raises(self):
        with pytest.raises(TypeError):
            structural_key(([1, 2],))


class TestMessageSizerMemo:
    def test_repeat_measurement_is_cached(self):
        sizer = MessageSizer(value_alphabet_size=1024, n=4)
        message = (3, (0, 1), 2000)
        first = sizer.measure(message)
        assert sizer.measure((3, (0, 1), 2000)) == first
        assert len(sizer._cache) == 1

    def test_cache_never_conflates_bool_and_index(self):
        # value_bits=10, index_bits=2: a collision would be off by 8.
        sizer = MessageSizer(value_alphabet_size=1024, n=4)
        assert sizer.measure((1,)) != sizer.measure((True,))
        assert sizer.measure((True,)) == sizer.measure((False,))

    def test_unhashable_message_measured_uncached(self):
        sizer = MessageSizer(value_alphabet_size=2, n=4)
        assert sizer.measure(([1],)) > 0
        assert len(sizer._cache) == 0

    def test_cached_and_direct_agree(self):
        sizer = MessageSizer(value_alphabet_size=8, n=7)
        messages = [BOTTOM, 5, (1, 2), ((0,), (BOTTOM,)), True, 99]
        direct = [
            encoded_message_bits(m, sizer._leaf_bits) for m in messages
        ]
        # Measure twice: second pass is served from the memo.
        assert [sizer.measure(m) for m in messages] == direct
        assert [sizer.measure(m) for m in messages] == direct
