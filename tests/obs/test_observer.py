"""The observer, its registry, spans, and activation lifecycle."""

import pytest

import repro.obs.core as obs_core
from repro.obs import (
    EventLog,
    InstrumentRegistry,
    NULL_SPAN,
    Observer,
    SpanProfile,
    activate,
    active,
    deactivate,
    observing,
    profile_dict,
    span,
    validate_records,
)


@pytest.fixture(autouse=True)
def _null_observer():
    """Every test here starts and ends in the null-observer state."""
    deactivate()
    yield
    deactivate()


class TestRegistry:
    def test_counters_accumulate(self):
        registry = InstrumentRegistry()
        registry.count("a")
        registry.count("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("untouched") == 0

    def test_counters_sorted_copy(self):
        registry = InstrumentRegistry()
        registry.count("b")
        registry.count("a")
        snapshot = registry.counters()
        assert list(snapshot) == ["a", "b"]
        snapshot["a"] = 99
        assert registry.counter("a") == 1

    def test_gauges_last_write_wins(self):
        registry = InstrumentRegistry()
        registry.set_gauge("g", 1.0)
        registry.set_gauge("g", 2.5)
        assert registry.gauge("g") == 2.5
        assert registry.gauge("missing") is None

    def test_hit_rates_pair_convention(self):
        registry = InstrumentRegistry()
        registry.count("cache.hit", 3)
        registry.count("cache.miss", 1)
        registry.count("lonely.hit", 2)
        rates = registry.hit_rates()
        assert rates["cache"] == (0.75, 3, 1)
        assert rates["lonely"] == (1.0, 2, 0)

    def test_hit_rate_of_untouched_pair_is_zero(self):
        registry = InstrumentRegistry()
        registry.count("cache.hit", 0)
        assert registry.hit_rates()["cache"] == (0.0, 0, 0)

    def test_absorb(self):
        registry = InstrumentRegistry()
        registry.count("a")
        registry.absorb({"a": 2, "b": 3})
        assert registry.counters() == {"a": 3, "b": 3}


class TestSpans:
    def test_profile_counts_and_totals(self):
        profile = SpanProfile()
        profile.record("x", 0.25)
        profile.record("x", 0.75)
        assert profile.snapshot() == {"x": (2, 1.0, 0.75)}

    def test_since_diffs_counts_and_totals(self):
        profile = SpanProfile()
        profile.record("x", 1.0)
        mark = profile.snapshot()
        profile.record("x", 0.5)
        profile.record("y", 0.25)
        delta = profile.since(mark)
        assert delta["x"][0] == 1
        assert delta["x"][1] == pytest.approx(0.5)
        assert delta["y"] == (1, 0.25, 0.25)

    def test_profile_dict_shape(self):
        rendered = profile_dict({"b": (1, 0.1234567, 0.1), "a": (2, 1.0, 0.5)})
        assert list(rendered) == ["a", "b"]
        assert rendered["b"] == {"count": 1, "total_s": 0.123457, "max_s": 0.1}

    def test_span_paths_nest(self):
        observer = Observer()
        with observer.span("outer"):
            with observer.span("inner"):
                pass
        paths = set(observer.profile_snapshot())
        assert paths == {"outer", "outer/inner"}

    def test_spans_off_returns_null_span(self):
        observer = Observer(spans=False)
        assert observer.span("x") is NULL_SPAN
        with observer.span("x"):
            pass
        assert observer.profile_snapshot() == {}

    def test_module_span_is_null_when_inactive(self):
        assert span("anything") is NULL_SPAN


class TestObserverLifecycle:
    def test_clock_stamps_and_advances(self):
        log = EventLog()
        observer = Observer(events=log)
        run = observer.begin_run(4, 1, 0, "SilentAdversary", [3])
        observer.set_round(2)
        observer.emit("round_start")
        observer.end_run(2, 3, 10, 10, 100)
        assert run == "r1"
        kinds = [r["kind"] for r in log.records]
        assert kinds == ["run_start", "round_start", "run_end"]
        assert [r["step"] for r in log.records] == [1, 2, 3]
        assert log.records[1]["run"] == "r1"
        assert log.records[1]["round"] == 2
        assert validate_records(log.records) == []

    def test_second_run_gets_fresh_id(self):
        observer = Observer(events=EventLog())
        assert observer.begin_run(4, 1, 0, "A", []) == "r1"
        observer.end_run(1, 4, 0, 0, 0)
        assert observer.begin_run(4, 1, 0, "A", []) == "r2"

    def test_end_run_absorbs_meters(self):
        observer = Observer()
        observer.begin_run(4, 1, 0, "A", [])
        observer.end_run(3, 4, 12, 10, 240)
        counters = observer.registry.counters()
        assert counters["net.messages"] == 12
        assert counters["net.non_null_messages"] == 10
        assert counters["net.bits"] == 240
        assert counters["runs"] == 1

    def test_counters_off(self):
        observer = Observer(counters=False)
        observer.count("x")
        observer.gauge("g", 1.0)
        assert observer.registry.counters() == {}
        assert observer.registry.gauges() == {}

    def test_close_dumps_counters_then_profile(self):
        log = EventLog()
        observer = Observer(events=log)
        observer.count("x", 2)
        with observer.span("s"):
            pass
        observer.close()
        observer.close()  # idempotent
        kinds = [r["kind"] for r in log.records]
        assert kinds == ["counters", "profile"]
        assert log.records[0]["counters"] == {"x": 2}
        assert log.records[1]["nondeterministic"] is True
        assert "s" in log.records[1]["spans"]
        assert validate_records(log.records) == []

    def test_eventless_emit_is_a_no_op(self):
        observer = Observer()
        observer.emit("round_start")  # nothing to write to
        observer.close()


class TestActivation:
    def test_default_is_null(self):
        assert obs_core.ACTIVE is None
        assert active() is None

    def test_activate_deactivate(self):
        observer = Observer()
        activate(observer)
        assert active() is observer
        deactivate()
        assert active() is None

    def test_observing_restores_previous(self):
        outer, inner = Observer(), Observer()
        activate(outer)
        with observing(inner) as current:
            assert current is inner
            assert active() is inner
        assert active() is outer

    def test_observing_closes_by_default(self):
        log = EventLog()
        observer = Observer(events=log)
        with observing(observer):
            observer.count("x")
        assert [r["kind"] for r in log.records] == ["counters"]

    def test_observing_close_false_keeps_it_open(self):
        log = EventLog()
        with observing(Observer(events=log), close=False):
            pass
        assert log.records == []
