"""Event-log rotation: size-capped parts, reassembled on read."""

import json
import os
import subprocess
import sys

from repro.adversary import EquivocatingAdversary
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.obs import (
    EventLog,
    Observer,
    log_paths,
    observing,
    read_log,
    validate_records,
)


class TestRotation:
    def _write_capped(self, config4, path, cap_bytes):
        log = EventLog(path, cap_bytes=cap_bytes)
        with observing(Observer(events=log, trace=True)):
            run_compact_byzantine_agreement(
                config4, {1: 1, 2: 0, 3: 1, 4: 0},
                value_alphabet=[0, 1], k=2,
                adversary=EquivocatingAdversary([4], 0, 1),
            )

    def test_cap_splits_the_log_into_parts(self, config4, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_capped(config4, path, cap_bytes=2000)
        parts = sorted(tmp_path.glob("events.jsonl.part-*"))
        assert path.exists()
        assert parts
        for part in [path, *parts]:
            assert part.stat().st_size <= 2000

    def test_records_never_split_across_parts(self, config4, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_capped(config4, path, cap_bytes=2000)
        for part in log_paths(path):
            for line in part.read_text().splitlines():
                json.loads(line)

    def test_read_log_reassembles_in_order(self, config4, tmp_path):
        capped = tmp_path / "capped" / "events.jsonl"
        capped.parent.mkdir()
        plain = tmp_path / "plain" / "events.jsonl"
        plain.parent.mkdir()
        self._write_capped(config4, capped, cap_bytes=2000)
        self._write_capped(config4, plain, cap_bytes=None)
        reassembled = read_log(capped)
        assert validate_records(reassembled) == []

        def deterministic(records):
            return [
                r for r in records if not r.get("nondeterministic")
            ]

        assert deterministic(reassembled) == deterministic(read_log(plain))
        steps = [r["step"] for r in reassembled]
        assert steps == sorted(steps)

    def test_uncapped_log_stays_a_single_file(self, config4, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_capped(config4, path, cap_bytes=None)
        assert list(tmp_path.glob("events.jsonl.part-*")) == []
        assert log_paths(path) == [path]


class TestLogPaths:
    def test_directory_collects_logs_but_not_trace_sidecars(self, tmp_path):
        (tmp_path / "a.jsonl").write_text("{}\n")
        (tmp_path / "a.jsonl.part-1").write_text("{}\n")
        (tmp_path / "b.trace.jsonl").write_text("{}\n")
        (tmp_path / "notes.txt").write_text("x\n")
        names = [p.name for p in log_paths(tmp_path)]
        assert names == ["a.jsonl", "a.jsonl.part-1"]

    def test_parts_sort_numerically(self, tmp_path):
        base = tmp_path / "events.jsonl"
        base.write_text("{}\n")
        for n in (10, 2, 1):
            (tmp_path / f"events.jsonl.part-{n}").write_text("{}\n")
        names = [p.name for p in log_paths(base)]
        assert names == [
            "events.jsonl",
            "events.jsonl.part-1",
            "events.jsonl.part-2",
            "events.jsonl.part-10",
        ]

    def test_explicit_part_reads_just_that_part(self, tmp_path):
        part = tmp_path / "events.jsonl.part-2"
        part.write_text("{}\n")
        assert log_paths(part) == [part]


class TestRotationCli:
    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_run_ba_cap_then_validate_directory(self, tmp_path):
        path = tmp_path / "events.jsonl"
        subprocess.run(
            [sys.executable, "-m", "repro", "run-ba", "--t", "1",
             "--events", str(path), "--trace",
             "--events-cap", "2000"],
            check=True, env=self._env(), capture_output=True,
        )
        assert list(tmp_path.glob("events.jsonl.part-*"))
        for target in (str(path), str(tmp_path)):
            result = subprocess.run(
                [sys.executable, "-m", "repro", "events", "validate",
                 target],
                check=True, env=self._env(), capture_output=True,
            )
            assert b"OK: 73 record(s)" in result.stdout

    def test_cap_without_events_is_a_usage_error(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "run-ba", "--t", "1",
             "--events-cap", "2000"],
            env=self._env(), capture_output=True,
        )
        assert result.returncode == 2
