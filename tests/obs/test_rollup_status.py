"""Rollup records and ``repro status``: fleet telemetry from artifacts."""

import json
import os
import subprocess
import sys

from repro.analysis.sweeps import standard_adversary_makers, sweep
from repro.avalanche.protocol import avalanche_factory
from repro.obs import (
    EventLog,
    Observer,
    load_status,
    observing,
    render_status,
    status_from_records,
    validate_records,
)


def pooled_sweep_log(config4, close=True):
    log = EventLog()
    patterns = [{p: p % 2 for p in config4.process_ids}]
    with observing(Observer(events=log), close=close):
        sweep(
            avalanche_factory(), config4, patterns, [(3,)],
            standard_adversary_makers()[:2], seeds=(0, 1),
            run_full_rounds=3, workers=2,
        )
    return log.records


class TestRollupRecords:
    def test_pooled_sweep_emits_plan_and_chunk_rollups(self, config4):
        records = pooled_sweep_log(config4)
        assert validate_records(records) == []
        rollups = [r for r in records if r["kind"] == "rollup"]
        plans = [r for r in rollups if r["scope"] == "plan"]
        chunks = [r for r in rollups if r["scope"] == "chunk"]
        assert len(plans) == 1
        assert plans[0]["cells"] == 4
        assert chunks
        assert sum(r["cells"] for r in chunks) == 4

    def test_chunk_deltas_sum_to_the_final_counters(self, config4):
        """Replaying the deltas reproduces the registry at any cut."""
        records = pooled_sweep_log(config4)
        summed = {}
        for record in records:
            if record["kind"] == "rollup":
                for name, delta in record["counters"].items():
                    summed[name] = summed.get(name, 0) + delta
        final = next(
            r["counters"] for r in records if r["kind"] == "counters"
        )
        for name, value in summed.items():
            assert final[name] == value, name

    def test_worker_samples_use_stable_slots(self, config4):
        records = pooled_sweep_log(config4)
        samples = [r for r in records if r["kind"] == "worker_sample"]
        assert samples
        assert all(r["nondeterministic"] is True for r in samples)
        slots = {r["worker"] for r in samples}
        # slots are densely numbered from 0 in first-seen order — the
        # raw worker pids never reach the log
        assert slots == set(range(len(slots)))
        assert sum(r["cells"] for r in samples) == 4

    def test_emit_rollup_reports_deltas_not_totals(self):
        log = EventLog()
        observer = Observer(events=log)
        observer.registry.count("x.one", 5)
        observer.emit_rollup("chunk", 0, 1)
        observer.registry.count("x.one", 2)
        observer.registry.count("x.two", 3)
        observer.emit_rollup("chunk", 1, 1)
        first, second = (
            r for r in log.records if r["kind"] == "rollup"
        )
        assert first["counters"] == {"x.one": 5}
        assert second["counters"] == {"x.one": 2, "x.two": 3}


class TestStatus:
    def test_complete_pooled_sweep(self, config4):
        records = pooled_sweep_log(config4)
        status = status_from_records(records)
        assert status["phase"] == "complete"
        assert status["cells"]["planned"] == 4
        assert status["cells"]["done"] == 4
        assert status["progress"] == 1.0
        assert status["workers"]
        assert status["pool"]["workers"] == 2
        rendered = render_status(status)
        assert "status: complete" in rendered
        assert "progress 100.0%" in rendered
        assert "per-worker throughput (nondeterministic):" in rendered

    def test_interrupted_run_reconstructs_from_the_torn_log(
        self, config4, tmp_path
    ):
        """The acceptance shape: a killed run, reconstructed from disk."""
        records = pooled_sweep_log(config4)
        path = tmp_path / "events.jsonl"
        lines = [json.dumps(r, sort_keys=True) for r in records]
        # cut before the final counters dump and tear the last line
        cut = next(
            i for i, r in enumerate(records) if r["kind"] == "counters"
        )
        torn = "\n".join(lines[:cut]) + "\n" + lines[cut][:20]
        path.write_text(torn)
        status = load_status(path)
        assert status["phase"] == "in-flight"
        assert status["skipped_lines"] == 1
        assert status["cells"]["planned"] == 4
        assert status["cells"]["done"] == 4
        # counters reconstructed by summing rollup deltas
        assert status["counters"]
        rendered = render_status(status)
        assert "in-flight" in rendered
        assert "1 torn line(s) skipped" in rendered
        assert "counters:" in rendered

    def test_status_of_an_empty_log(self):
        status = status_from_records([])
        assert status["phase"] == "in-flight"
        assert status["progress"] is None
        assert render_status(status).startswith("status: in-flight")


class TestFreshProcessGoldens:
    """Satellite: byte-identical CLI output across fresh processes."""

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _artifact(self, tmp_path):
        path = tmp_path / "events.jsonl"
        subprocess.run(
            [sys.executable, "-m", "repro", "run-ba", "--t", "1",
             "--events", str(path), "--trace"],
            check=True, env=self._env(), capture_output=True,
        )
        return path

    def _stdout(self, *argv):
        result = subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            check=True, env=self._env(), capture_output=True,
        )
        return result.stdout

    def test_status_renders_identical_bytes(self, tmp_path):
        path = self._artifact(tmp_path)
        outputs = [self._stdout("status", str(path)) for _ in range(2)]
        assert outputs[0] == outputs[1]
        assert b"status: complete" in outputs[0]

    def test_profile_renders_identical_bytes(self, tmp_path):
        path = self._artifact(tmp_path)
        outputs = [
            self._stdout("events", "profile", str(path),
                         "--format", "text")
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()
