"""Causal tracing: deliver edges, DAG assembly, dynamic closedness."""

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.obs import EventLog, Observer, observing, validate_records
from repro.obs.trace import build_dags, check_closedness


def traced_compact_ba(config4, adversary):
    log = EventLog()
    with observing(Observer(events=log, trace=True)):
        run_compact_byzantine_agreement(
            config4,
            {1: 1, 2: 0, 3: 1, 4: 0},
            value_alphabet=[0, 1],
            k=2,
            adversary=adversary,
        )
    return log.records


class TestDeliverEvents:
    def test_traced_records_validate(self, config4):
        records = traced_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        assert validate_records(records) == []
        assert any(r["kind"] == "deliver" for r in records)

    def test_trace_off_means_no_deliver_records(self, config4):
        log = EventLog()
        with observing(Observer(events=log)):
            run_compact_byzantine_agreement(
                config4, {1: 1, 2: 0, 3: 1, 4: 0},
                value_alphabet=[0, 1], k=2,
                adversary=EquivocatingAdversary([4], 0, 1),
            )
        assert not any(r["kind"] == "deliver" for r in log.records)

    def test_trace_requires_an_event_sink(self):
        observer = Observer(events=None, trace=True)
        assert observer.trace_on is False

    def test_correct_deliver_bits_match_send_events(self, config4):
        """A correct sender's deliver edge reuses the metered size."""
        records = traced_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        sends = {
            (r["round"], r["sender"], r["receiver"]): r["bits"]
            for r in records if r["kind"] == "send"
        }
        correct_delivers = [
            r for r in records
            if r["kind"] == "deliver" and not r["faulty"]
        ]
        assert correct_delivers
        for record in correct_delivers:
            key = (record["round"], record["sender"], record["receiver"])
            # deliveries to faulty receivers are dropped, so every
            # correct deliver has a matching metered send
            assert sends[key] == record["bits"]

    def test_faulty_deliveries_are_marked(self, config4):
        records = traced_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        faulty = [
            r for r in records if r["kind"] == "deliver" and r["faulty"]
        ]
        assert faulty
        assert all(r["sender"] == 4 for r in faulty)


class TestCausalDag:
    def test_one_dag_per_run_with_edges(self, config4):
        records = traced_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        dags = build_dags(records)
        assert len(dags) == 1
        dag = dags[0]
        assert dag.n == 4
        assert dag.rounds >= 1
        assert dag.deliver_edges()
        assert dag.decisions

    def test_deliver_edge_spans_one_round(self, config4):
        records = traced_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        for edge in build_dags(records)[0].deliver_edges():
            assert edge.dst[1] == edge.src[1] + 1

    def test_bit_accounting_sums_per_round_and_channel(self, config4):
        records = traced_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        dag = build_dags(records)[0]
        total = sum(edge.bits for edge in dag.deliver_edges())
        assert sum(dag.round_bits().values()) == total
        assert sum(dag.channel_bits().values()) == total

    def test_local_edges_connect_consecutive_states(self, config4):
        records = traced_compact_ba(config4, SilentAdversary([4]))
        dag = build_dags(records)[0]
        locals_ = [e for e in dag.edges if e.kind == "local"]
        assert locals_
        for edge in locals_:
            assert edge.src[0] == edge.dst[0]
            assert edge.dst[1] == edge.src[1] + 1
            assert edge.bits == 0

    def test_to_json_round_trips_through_repr(self, config4):
        import json

        records = traced_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        payload = build_dags(records)[0].to_json()
        assert json.loads(json.dumps(payload)) == payload


class TestClosednessChecker:
    def test_real_execution_is_closed(self, config4):
        records = traced_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        assert check_closedness(records) == []

    def _closed_log(self, config4):
        return traced_compact_ba(config4, EquivocatingAdversary([4], 0, 1))

    def test_cross_round_delivery_is_flagged(self, config4):
        records = [dict(r) for r in self._closed_log(config4)]
        deliver = next(r for r in records if r["kind"] == "deliver")
        deliver["round"] = deliver["round"] + 1
        problems = check_closedness(records)
        assert any("communication-closed" in p for p in problems)

    def test_delivery_after_state_update_is_flagged(self, config4):
        records = [dict(r) for r in self._closed_log(config4)]
        # move the first deliver record after the round's last state
        index = next(
            i for i, r in enumerate(records) if r["kind"] == "deliver"
        )
        deliver = records.pop(index)
        state_index = max(
            i for i, r in enumerate(records)
            if r["kind"] == "state" and r["round"] == deliver["round"]
        )
        records.insert(state_index + 1, deliver)
        problems = check_closedness(records)
        assert any("phase order violated" in p for p in problems)

    def test_duplicate_channel_delivery_is_flagged(self, config4):
        records = [dict(r) for r in self._closed_log(config4)]
        index = next(
            i for i, r in enumerate(records) if r["kind"] == "deliver"
        )
        records.insert(index, dict(records[index]))
        problems = check_closedness(records)
        assert any("delivered twice" in p for p in problems)

    def test_delivery_outside_round_bracket_is_flagged(self):
        records = [
            {"v": 1, "kind": "run_start", "run": "r1", "round": 0,
             "step": 1, "n": 4, "t": 1, "seed": 0, "adversary": "X",
             "faulty": []},
            {"v": 1, "kind": "deliver", "run": "r1", "round": 1,
             "step": 2, "sender": 1, "receiver": 2, "bits": 8,
             "non_null": True, "faulty": False},
        ]
        problems = check_closedness(records)
        assert any("outside a round bracket" in p for p in problems)

    def test_delivery_outside_any_run_is_flagged(self):
        records = [
            {"v": 1, "kind": "deliver", "run": None, "round": 1,
             "step": 1, "sender": 1, "receiver": 2, "bits": 8,
             "non_null": True, "faulty": False},
        ]
        assert any(
            "outside any run" in p for p in check_closedness(records)
        )
