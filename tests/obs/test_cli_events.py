"""The observability CLI surface: --events recording and `repro events`."""

import json

import pytest

from repro.cli import main
from repro.obs.events import read_jsonl, validate_jsonl


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


@pytest.fixture
def recorded_log(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    code, out = run_cli(
        capsys, "run-ba", "--t", "1", "--events", str(path)
    )
    assert code == 0
    return path, out


class TestRunBAEvents:
    def test_writes_a_valid_log(self, recorded_log):
        path, out = recorded_log
        assert f"events: wrote {path}" in out
        assert validate_jsonl(path) == []

    def test_writes_the_trace_next_to_it(self, recorded_log, tmp_path):
        path, out = recorded_log
        trace_path = tmp_path / "events.jsonl.trace.jsonl"
        assert f"trace: wrote {trace_path}" in out
        from repro.runtime.trace import ExecutionTrace

        trace = ExecutionTrace.from_jsonl(trace_path)
        assert trace.envelopes

    def test_log_covers_the_run(self, recorded_log):
        path, _ = recorded_log
        kinds = {record["kind"] for record in read_jsonl(path)}
        assert {"run_start", "round_end", "send", "decide",
                "run_end", "counters"} <= kinds

    def test_no_events_flag_records_nothing(self, capsys, tmp_path):
        code, out = run_cli(capsys, "run-ba", "--t", "1")
        assert code == 0
        assert "events:" not in out
        assert list(tmp_path.iterdir()) == []


class TestIncludeAdversaryTraffic:
    def test_meters_more_bits(self, capsys):
        _, plain = run_cli(capsys, "run-ba", "--t", "1")
        code, metered = run_cli(
            capsys, "run-ba", "--t", "1", "--include-adversary-traffic"
        )
        assert code == 0
        assert "(metering includes adversary traffic)" in metered

        def bits(out):
            line = next(
                l for l in out.splitlines() if l.startswith("message bits:")
            )
            return int(line.split(":")[1])

        assert bits(metered) > bits(plain)

    def test_decisions_unchanged(self, capsys):
        _, plain = run_cli(capsys, "run-ba", "--t", "1")
        _, metered = run_cli(
            capsys, "run-ba", "--t", "1", "--include-adversary-traffic"
        )

        def line(out, prefix):
            return next(l for l in out.splitlines() if l.startswith(prefix))

        assert line(plain, "decisions:") == line(metered, "decisions:")
        assert line(plain, "rounds:") == line(metered, "rounds:")


class TestEventsCommand:
    def test_summarize_text(self, recorded_log, capsys):
        path, _ = recorded_log
        code, out = run_cli(capsys, "events", "summarize", str(path))
        assert code == 0
        assert "runs: 1" in out
        assert "per-round traffic" in out

    def test_summarize_json(self, recorded_log, capsys):
        path, _ = recorded_log
        code, out = run_cli(
            capsys, "events", "summarize", str(path), "--format", "json"
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["runs"] == 1
        assert summary["counters"]["runs"] == 1
        assert summary["per_round"]

    def test_profile(self, recorded_log, capsys):
        path, _ = recorded_log
        code, out = run_cli(capsys, "events", "profile", str(path))
        assert code == 0
        assert "engine.run" in out
        code, out = run_cli(
            capsys, "events", "profile", str(path), "--format", "json"
        )
        assert json.loads(out)["spans"]["engine.run"]["count"] == 1

    def test_validate_ok(self, recorded_log, capsys):
        path, _ = recorded_log
        code, out = run_cli(capsys, "events", "validate", str(path))
        assert code == 0
        assert "conform to event schema v1" in out

    def test_validate_json(self, recorded_log, capsys):
        path, _ = recorded_log
        code, out = run_cli(
            capsys, "events", "validate", str(path), "--format", "json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["valid"] is True
        assert payload["problems"] == []

    def test_validate_flags_bad_records(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "kind": "nope", "round": 0, "step": 1}\n')
        code, out = run_cli(capsys, "events", "validate", str(path))
        assert code == 1
        assert "unknown event kind" in out

    def test_unreadable_file_is_a_usage_error(self, tmp_path, capsys):
        code, out = run_cli(
            capsys, "events", "summarize", str(tmp_path / "missing.jsonl")
        )
        assert code == 2
        assert "error:" in out


class TestBenchEvents:
    def test_quick_suite_records_and_profiles(self, tmp_path, capsys):
        events = tmp_path / "bench.jsonl"
        output = tmp_path / "bench.json"
        code, out = run_cli(
            capsys, "bench", "--quick", "--suite", "avalanche",
            "--workers", "1", "--output", str(output),
            "--events", str(events),
        )
        assert code == 0
        assert f"events: wrote {events}" in out
        assert validate_jsonl(events) == []
        report = json.loads(output.read_text())
        assert report["suites"][0]["profile"]
