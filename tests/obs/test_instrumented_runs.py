"""End-to-end instrumentation: real runs observed through the runtime.

The determinism contract under test: the event stream of an observed
run is a pure function of ``(protocol, inputs, adversary, seed)`` —
identical in-process for everything except the cache-warmth counters
dump, and byte-identical across fresh processes.
"""

import os
import subprocess
import sys

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.analysis.sweeps import standard_adversary_makers, sweep
from repro.avalanche.protocol import avalanche_factory
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.obs import EventLog, Observer, observing, validate_records
from repro.runtime.engine import run_protocol


def observed_compact_ba(config4, adversary):
    log = EventLog()
    with observing(Observer(events=log)):
        run_compact_byzantine_agreement(
            config4,
            {1: 1, 2: 0, 3: 1, 4: 0},
            value_alphabet=[0, 1],
            k=2,
            adversary=adversary,
        )
    return log.records


class TestObservedRun:
    def test_records_validate(self, config4):
        records = observed_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        assert validate_records(records) == []

    def test_expected_event_kinds(self, config4):
        records = observed_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        kinds = {record["kind"] for record in records}
        assert {
            "run_start", "run_end", "round_start", "round_end",
            "send", "state", "decide", "corrupt", "counters", "profile",
        } <= kinds

    def test_corrupt_events_only_under_an_adversary(self, config4):
        silent = observed_compact_ba(config4, SilentAdversary([]))
        kinds = {record["kind"] for record in silent}
        assert "corrupt" not in kinds

    def test_run_start_describes_the_scenario(self, config4):
        records = observed_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        start = next(r for r in records if r["kind"] == "run_start")
        assert start["n"] == 4
        assert start["t"] == 1
        assert start["adversary"] == "EquivocatingAdversary"
        assert start["faulty"] == [4]

    def test_round_totals_match_the_meters(self, config4):
        records = observed_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        end = next(r for r in records if r["kind"] == "run_end")
        round_bits = sum(
            r["bits"] for r in records if r["kind"] == "round_end"
        )
        send_bits = sum(r["bits"] for r in records if r["kind"] == "send")
        assert end["bits"] == round_bits == send_bits

    def test_counters_expose_the_caches(self, config4):
        records = observed_compact_ba(config4, EquivocatingAdversary([4], 0, 1))
        counters = next(
            r for r in records if r["kind"] == "counters"
        )["counters"]
        assert counters["runs"] == 1
        assert counters["net.messages"] > 0
        assert "net.size_cache.hit" in counters
        assert "compact.expansion.hit" in counters

    def test_event_stream_is_deterministic_in_process(self, config4):
        def stream():
            return [
                record
                for record in observed_compact_ba(
                    config4, EquivocatingAdversary([4], 0, 1)
                )
                # cache-warmth counters and wall time vary in-process
                if record["kind"] not in ("counters", "profile")
            ]

        assert stream() == stream()

    def test_unobserved_run_stays_unobserved(self, config4):
        # no active observer: the null path must not blow up anywhere
        result = run_compact_byzantine_agreement(
            config4,
            {1: 1, 2: 0, 3: 1, 4: 0},
            value_alphabet=[0, 1],
            k=2,
            adversary=EquivocatingAdversary([4], 0, 1),
        )
        assert result.decisions


class TestObservedSweep:
    def test_cell_lifecycle_events(self, config4):
        log = EventLog()
        patterns = [{p: p % 2 for p in config4.process_ids}]
        with observing(Observer(events=log)) as observer:
            sweep(
                avalanche_factory(), config4, patterns, [(3,)],
                standard_adversary_makers()[:2], seeds=(0,),
                run_full_rounds=3, workers=1,
            )
        starts = [r for r in log.records if r["kind"] == "cell_start"]
        ends = [r for r in log.records if r["kind"] == "cell_end"]
        assert len(starts) == len(ends) == 2
        assert [r["index"] for r in starts] == [0, 1]
        assert observer.registry.counter("sweep.cells") == 2
        assert validate_records(log.records) == []

    def test_pooled_sweep_reports_executor_stats(self, config4):
        log = EventLog()
        patterns = [{p: p % 2 for p in config4.process_ids}]
        with observing(Observer(events=log)) as observer:
            sweep(
                avalanche_factory(), config4, patterns, [(3,)],
                standard_adversary_makers()[:2], seeds=(0, 1),
                run_full_rounds=3, workers=2,
            )
        # cells execute in workers whose inherited observer is swapped
        # for a local counters-only one; the parent records
        # executor-level instrumentation and absorbs the workers'
        # scheduling-independent counters
        kinds = {r["kind"] for r in log.records}
        assert "chunk" in kinds
        assert "cell_start" not in kinds
        workers_events = [r for r in log.records if r["kind"] == "workers"]
        assert len(workers_events) == 1
        assert workers_events[0]["nondeterministic"] is True
        gauges = observer.registry.gauges()
        assert gauges["pool.workers"] == 2.0
        assert observer.registry.counter("pool.chunks") > 0
        assert observer.registry.counter("sweep.cells") == 4
        assert observer.registry.counter("runs") == 4
        assert observer.registry.counter("net.bits") > 0
        # cache hit/miss splits depend on chunk-to-worker scheduling,
        # so they never cross the process boundary
        assert not any(
            name.endswith((".hit", ".miss"))
            for name in observer.registry.counters()
        )
        assert validate_records(log.records) == []

    def test_pooled_counters_match_the_serial_reference(self, config4):
        patterns = [{p: p % 2 for p in config4.process_ids}]

        def observed_counters(workers):
            with observing(Observer(events=None)) as observer:
                sweep(
                    avalanche_factory(), config4, patterns, [(3,)],
                    standard_adversary_makers()[:2], seeds=(0, 1),
                    run_full_rounds=3, workers=workers,
                )
            counters = observer.registry.counters()
            return {
                name: value for name, value in counters.items()
                if name.startswith("net.") and not name.endswith(
                    (".hit", ".miss")
                ) or name in ("runs", "sweep.cells")
            }

        assert observed_counters(1) == observed_counters(2)


class TestFreshProcessByteIdentity:
    def test_two_fresh_processes_write_identical_logs(self, tmp_path):
        """The cross-process half of the determinism contract."""
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        for path in paths:
            subprocess.run(
                [sys.executable, "-m", "repro", "run-ba", "--t", "1",
                 "--events", str(path)],
                check=True, env=env, capture_output=True,
            )
        first, second = (path.read_bytes() for path in paths)
        # the nondeterministic section is exempt from byte identity
        def deterministic(raw):
            return [
                line for line in raw.splitlines()
                if b'"nondeterministic": true' not in line
            ]

        assert deterministic(first) == deterministic(second)
        assert len(deterministic(first)) < len(first.splitlines())
