"""The hard observability requirement: observation never changes outputs.

An active observer must leave every computed artifact byte-identical
to the unobserved run — it reads and appends, never feeds back.  These
tests pin that with pickled-equality comparisons on whole reports.
"""

import pickle

from repro.analysis.bench import run_bench
from repro.analysis.sweeps import standard_adversary_makers, sweep
from repro.avalanche.protocol import avalanche_factory
from repro.obs import EventLog, Observer, observing
from repro.types import SystemConfig


def small_sweep(workers):
    config = SystemConfig(n=4, t=1)
    patterns = [{p: p % 2 for p in config.process_ids}]
    return sweep(
        avalanche_factory(), config, patterns, [(3,)],
        standard_adversary_makers()[:3], seeds=(0, 1),
        run_full_rounds=4, workers=workers,
    )


class TestSweepByteIdentity:
    def test_serial_sweep(self):
        plain = small_sweep(workers=1)
        with observing(Observer(events=EventLog())):
            observed = small_sweep(workers=1)
        assert pickle.dumps(plain) == pickle.dumps(observed)

    def test_pooled_sweep(self):
        plain = small_sweep(workers=2)
        with observing(Observer(events=EventLog())):
            observed = small_sweep(workers=2)
        assert pickle.dumps(plain) == pickle.dumps(observed)


class TestBenchByteIdentity:
    def test_deterministic_suite_fields_ignore_profiling(self, tmp_path):
        """Profiling on/off must not move any gated bench quantity."""
        deterministic_keys = (
            "name", "executions", "total_bits", "max_rounds",
            "violations", "errors",
        )

        def deterministic_view(report):
            return [
                {key: suite[key] for key in deterministic_keys}
                for suite in report["suites"]
            ]

        plain = run_bench(
            suites=["avalanche"], quick=True, workers=1, profile=False,
        )
        profiled = run_bench(
            suites=["avalanche"], quick=True, workers=1,
            events=tmp_path / "bench-events.jsonl", profile=True,
        )
        assert deterministic_view(plain) == deterministic_view(profiled)
        assert "profile" not in plain["suites"][0]
        assert profiled["suites"][0]["profile"]  # per-suite span rollup
        assert (tmp_path / "bench-events.jsonl").is_file()
