"""Exporters: Chrome-trace schema and speedscope profile shape."""

import json

from repro.adversary import EquivocatingAdversary
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.obs import EventLog, Observer, observing
from repro.obs.export import (
    SPAN_PID,
    chrome_trace,
    speedscope_profile,
    validate_chrome_trace,
)


def traced_records(config4):
    log = EventLog()
    with observing(Observer(events=log, trace=True)):
        run_compact_byzantine_agreement(
            config4,
            {1: 1, 2: 0, 3: 1, 4: 0},
            value_alphabet=[0, 1],
            k=2,
            adversary=EquivocatingAdversary([4], 0, 1),
        )
    return log.records


class TestChromeTrace:
    def test_export_validates_against_the_schema(self, config4):
        payload = chrome_trace(traced_records(config4))
        assert validate_chrome_trace(payload) == []

    def test_runs_become_processes_and_rounds_a_track(self, config4):
        events = chrome_trace(traced_records(config4))["traceEvents"]
        names = [
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert any(name.startswith("run r1") for name in names)
        rounds = [e for e in events if e.get("cat") == "round"]
        assert rounds
        assert all(e["tid"] == 0 and e["ph"] == "X" for e in rounds)

    def test_deliver_edges_become_balanced_flow_pairs(self, config4):
        events = chrome_trace(traced_records(config4))["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert starts
        assert len(starts) == len(ends)
        delivers = sum(
            1 for r in traced_records(config4) if r["kind"] == "deliver"
        )
        assert len(starts) == delivers
        assert all(e["bp"] == "e" for e in ends)

    def test_timestamps_are_the_logical_clock(self, config4):
        records = traced_records(config4)
        events = chrome_trace(records)["traceEvents"]
        max_step = max(r["step"] for r in records)
        run_events = [
            e for e in events if e["ph"] != "M" and e["pid"] != SPAN_PID
        ]
        assert all(0 <= e["ts"] <= max_step for e in run_events)

    def test_span_flame_lives_under_its_own_pid(self, config4):
        events = chrome_trace(traced_records(config4))["traceEvents"]
        flame = [
            e for e in events
            if e["pid"] == SPAN_PID and e["ph"] == "X"
        ]
        assert flame
        # a child span is laid out inside its parent's extent
        by_path = {e["args"]["path"]: e for e in flame}
        for path, event in by_path.items():
            if "/" not in path:
                continue
            parent = by_path.get(path.rsplit("/", 1)[0])
            if parent is None:
                continue
            assert event["ts"] >= parent["ts"]

    def test_export_is_deterministic_for_the_same_records(self, config4):
        records = traced_records(config4)
        first = json.dumps(chrome_trace(records), sort_keys=True)
        second = json.dumps(chrome_trace(records), sort_keys=True)
        assert first == second

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace([]) == ["payload is not a JSON object"]
        assert validate_chrome_trace({}) == [
            "'traceEvents' missing or not a list"
        ]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x"}]}
        )
        assert any("missing field" in p for p in problems)
        problems = validate_chrome_trace(
            {"traceEvents": [
                {"ph": "s", "name": "d", "id": 1, "pid": 1, "tid": 1,
                 "ts": 0},
            ]}
        )
        assert any("finish" in p for p in problems)


class TestSpeedscope:
    def test_profile_shape(self, config4):
        payload = speedscope_profile(traced_records(config4))
        assert payload["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        profile = payload["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        frames = payload["shared"]["frames"]
        for stack in profile["samples"]:
            assert all(0 <= index < len(frames) for index in stack)

    def test_weights_are_self_time(self, config4):
        records = traced_records(config4)
        payload = speedscope_profile(records)
        profile = payload["profiles"][0]
        assert all(weight >= 0 for weight in profile["weights"])
        assert profile["endValue"] == round(sum(profile["weights"]), 6)

    def test_empty_log_exports_an_empty_profile(self):
        payload = speedscope_profile([])
        assert payload["profiles"][0]["samples"] == []
