"""The event log: schema v1, sinks, and validation."""

import json

import pytest

from repro.obs.events import (
    EVENT_FIELDS,
    NONDETERMINISTIC_KINDS,
    SCHEMA_VERSION,
    EventLog,
    json_safe,
    read_jsonl,
    validate_record,
    validate_records,
)
from repro.types import BOTTOM


def _record(kind="round_start", step=1, **fields):
    base = {"v": SCHEMA_VERSION, "kind": kind, "run": "r1", "round": 0,
            "step": step}
    base.update(fields)
    return base


class TestJsonSafe:
    def test_scalars_pass_through(self):
        for value in (None, True, 0, 1.5, "x"):
            assert json_safe(value) is value

    def test_structures_become_repr(self):
        assert json_safe((1, 2)) == "(1, 2)"
        assert json_safe(BOTTOM) == repr(BOTTOM)


class TestEventLog:
    def test_in_memory_accumulates(self):
        log = EventLog()
        log.write({"a": 1})
        log.write({"b": 2})
        assert log.records == [{"a": 1}, {"b": 2}]

    def test_streams_to_path(self, tmp_path):
        path = tmp_path / "nested" / "events.jsonl"
        log = EventLog(path)
        log.write(_record())
        log.write(_record(step=2))
        log.close()
        assert log.records == []  # streamed, not retained
        assert read_jsonl(path) == [_record(), _record(step=2)]

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.write(_record())
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == _record()


class TestValidateRecord:
    def test_valid_round_start(self):
        assert validate_record(_record()) == []

    def test_every_kind_has_a_field_table(self):
        # the closed-schema invariant the validator relies on
        assert "send" in EVENT_FIELDS
        assert NONDETERMINISTIC_KINDS <= set(EVENT_FIELDS)

    def test_missing_envelope_field(self):
        record = _record()
        del record["step"]
        assert any("step" in p for p in validate_record(record))

    def test_wrong_schema_version(self):
        problems = validate_record(_record(v=99))
        assert any("schema version" in p for p in problems)

    def test_unknown_kind_rejected(self):
        problems = validate_record(_record(kind="telemetry"))
        assert problems == ["unknown event kind 'telemetry'"]

    def test_missing_payload_field(self):
        record = _record(kind="send", sender=1, receiver=2, bits=10)
        problems = validate_record(record)
        assert any("non_null" in p for p in problems)

    def test_bool_is_not_an_int(self):
        # bool subclasses int; the schema keeps them apart
        record = _record(kind="send", sender=True, receiver=2, bits=10,
                         non_null=True)
        assert any("sender" in p for p in validate_record(record))

    def test_nullable_run(self):
        record = _record()
        record["run"] = None
        assert validate_record(record) == []
        record["run"] = 7
        assert any("run" in p for p in validate_record(record))

    def test_nondeterministic_kind_requires_flag(self):
        record = _record(kind="profile", spans={}, gauges={})
        assert any("nondeterministic" in p for p in validate_record(record))
        record["nondeterministic"] = True
        assert validate_record(record) == []

    def test_deterministic_kind_rejects_flag(self):
        record = _record(nondeterministic=True)
        assert any("wrongly flagged" in p for p in validate_record(record))


class TestValidateRecords:
    def test_step_must_strictly_increase(self):
        records = [_record(step=1), _record(step=1)]
        problems = validate_records(records)
        assert any("logical clock" in p for p in problems)

    def test_problems_carry_record_index(self):
        problems = validate_records([_record(kind="nope")])
        assert problems[0].startswith("record 0:")


class TestReadJsonl:
    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_jsonl(path)

    def test_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            read_jsonl(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps(_record()) + "\n\n")
        assert len(read_jsonl(path)) == 1
