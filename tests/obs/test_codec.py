"""The tagged-JSON codec: full-fidelity value round-trips."""

import json

import pytest

from repro.avalanche.coding import NULL_MESSAGE
from repro.compact.crash_variant import CRASHED
from repro.compact.payload import CompactPayload
from repro.obs.codec import decode_value, encode_value
from repro.types import BOTTOM


def roundtrip(value):
    encoded = encode_value(value)
    json.dumps(encoded)  # must be plain JSON all the way down
    return decode_value(encoded)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -7, "x", "", 1.5, 0.1, float("inf")],
    )
    def test_scalars(self, value):
        assert roundtrip(value) == value

    def test_bool_stays_bool(self):
        assert roundtrip(True) is True  # not 1

    def test_nested_structures(self):
        value = {
            "a": (1, (2, BOTTOM), [3.5, None]),
            2: frozenset({(1,), (2,)}),
        }
        assert roundtrip(value) == value

    def test_sets_and_frozensets_keep_their_type(self):
        assert roundtrip({1, 2}) == {1, 2}
        assert isinstance(roundtrip({1, 2}), set)
        assert isinstance(roundtrip(frozenset({1})), frozenset)

    def test_set_encoding_is_canonical(self):
        # member order must not leak into the encoded form
        assert encode_value(frozenset({3, 1, 2})) == {"fs": [1, 2, 3]}

    @pytest.mark.parametrize("singleton", [BOTTOM, NULL_MESSAGE, CRASHED])
    def test_singletons_decode_to_the_same_object(self, singleton):
        assert roundtrip(singleton) is singleton

    def test_compact_payload(self):
        payload = CompactPayload(
            main=(1, BOTTOM, 0, 1), votes=((2, (1, 1, 0, 1)),)
        )
        assert roundtrip(payload) == payload

    def test_interned_arrays_decode_as_plain_tuples(self):
        from repro.arrays.store import shared_store

        interned = shared_store(2).intern(((1, 0), (0, 1)))
        decoded = roundtrip(interned)
        assert type(decoded) is tuple
        assert decoded == interned


class TestErrors:
    def test_unknown_type_raises(self):
        with pytest.raises(TypeError, match="extend repro.obs.codec"):
            encode_value(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="unknown value tag"):
            decode_value({"$": "mystery"})

    def test_malformed_encoding_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            decode_value({"zz": 1})
