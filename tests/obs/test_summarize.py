"""Offline event-log queries: summarize, profile, and regressions."""

from repro.obs.summarize import (
    profile_records,
    render_profile,
    render_summary,
    summarize_records,
    top_regressions,
)


def _event(kind, step, **fields):
    record = {"v": 1, "kind": kind, "run": "r1", "round": 0, "step": step}
    record.update(fields)
    return record


SAMPLE = [
    _event("run_start", 1, n=4, t=1, seed=0, adversary="A", faulty=[4]),
    _event("send", 2, sender=1, receiver=2, bits=3, non_null=True),
    _event("send", 3, sender=2, receiver=1, bits=3, non_null=True),
    _event("corrupt", 4, sender=4, receiver=1, summary="0"),
    _event("round_end", 5, round=1, messages=9, non_null=9, bits=27),
    _event("round_end", 6, round=2, messages=9, non_null=6, bits=18),
    _event("decide", 7, process=1, value=0),
    _event("cell_end", 8, index=0, holds=True),
    _event("cell_end", 9, index=1, holds=False),
    _event("cell_end", 10, index=2, holds=None),
    _event("run_end", 11, rounds=2, decided=3, messages=18, non_null=15,
           bits=45),
    _event(
        "counters", 12,
        counters={"cache.hit": 3, "cache.miss": 1, "net.bits": 45},
    ),
    _event(
        "profile", 13, nondeterministic=True,
        spans={"engine.run": {"count": 1, "total_s": 0.5, "max_s": 0.5}},
        gauges={"pool.workers": 2.0},
    ),
    _event(
        "workers", 14, nondeterministic=True,
        workers=[{"cells": 3, "busy_s": 0.4}], wall_s=0.5, idle_s=0.6,
    ),
]


class TestSummarize:
    def test_counts(self):
        summary = summarize_records(SAMPLE)
        assert summary["records"] == len(SAMPLE)
        assert summary["runs"] == 1
        assert summary["decisions"] == 1
        assert summary["sends"] == 2
        assert summary["corruptions"] == 1
        assert summary["cells"] == {"total": 3, "held": 1, "falsified": 1}

    def test_per_round_traffic(self):
        summary = summarize_records(SAMPLE)
        assert summary["per_round"]["1"]["bits"] == 27
        assert summary["per_round"]["2"]["non_null"] == 6
        assert list(summary["per_round"]) == ["1", "2"]

    def test_hit_rates_derived_from_counters(self):
        rates = summarize_records(SAMPLE)["hit_rates"]
        assert rates["cache"] == {"rate": 0.75, "hits": 3, "misses": 1}

    def test_summarizing_twice_is_identical(self):
        assert summarize_records(SAMPLE) == summarize_records(SAMPLE)

    def test_render(self):
        text = render_summary(summarize_records(SAMPLE))
        assert "runs: 1" in text
        assert "per-round traffic" in text
        assert "cache hit rates" in text
        assert "75.00%" in text
        assert "net.bits = 45" in text

    def test_empty_log(self):
        summary = summarize_records([])
        assert summary["runs"] == 0
        assert summary["per_round"] == {}
        assert "runs: 0" in render_summary(summary)


class TestProfile:
    def test_rollup(self):
        profile = profile_records(SAMPLE)
        assert profile["spans"]["engine.run"]["count"] == 1
        assert profile["gauges"]["pool.workers"] == 2.0
        assert profile["workers"][0]["idle_s"] == 0.6

    def test_multiple_profile_records_merge(self):
        doubled = SAMPLE + [
            _event(
                "profile", 15, nondeterministic=True,
                spans={"engine.run":
                       {"count": 2, "total_s": 0.25, "max_s": 0.2}},
                gauges={},
            )
        ]
        merged = profile_records(doubled)["spans"]["engine.run"]
        assert merged == {"count": 3, "total_s": 0.75, "max_s": 0.5}

    def test_render(self):
        text = render_profile(profile_records(SAMPLE))
        assert "span profile" in text
        assert "engine.run" in text
        assert "pool.workers = 2.0" in text
        assert "idle 0.600s" in text

    def test_render_without_spans(self):
        assert "no span profile" in render_profile(profile_records([]))


class TestTopRegressions:
    BASE = {
        "a": {"count": 1, "total_s": 1.0, "max_s": 1.0},
        "b": {"count": 1, "total_s": 0.5, "max_s": 0.5},
        "c": {"count": 1, "total_s": 0.2, "max_s": 0.2},
        "gone": {"count": 1, "total_s": 9.0, "max_s": 9.0},
    }

    def test_ordered_by_absolute_growth(self):
        current = {
            "a": {"count": 1, "total_s": 1.4, "max_s": 1.4},   # +0.4
            "b": {"count": 1, "total_s": 1.5, "max_s": 1.5},   # +1.0
            "c": {"count": 1, "total_s": 0.1, "max_s": 0.1},   # improved
            "new": {"count": 1, "total_s": 5.0, "max_s": 5.0},  # no baseline
        }
        regressions = top_regressions(current, self.BASE)
        assert [entry["span"] for entry in regressions] == ["b", "a"]
        assert regressions[0]["delta_s"] == 1.0
        assert regressions[0]["ratio"] == 3.0

    def test_limit(self):
        current = {
            name: {"count": 1, "total_s": stats["total_s"] + 1.0,
                   "max_s": stats["max_s"]}
            for name, stats in self.BASE.items()
        }
        assert len(top_regressions(current, self.BASE, limit=2)) == 2

    def test_zero_baseline_has_no_ratio(self):
        baseline = {"a": {"count": 1, "total_s": 0.0, "max_s": 0.0}}
        current = {"a": {"count": 1, "total_s": 0.3, "max_s": 0.3}}
        (entry,) = top_regressions(current, baseline)
        assert entry["ratio"] is None
