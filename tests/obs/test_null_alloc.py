"""The null-observer fast path allocates nothing in ``repro.obs``.

With no active observer, hot paths read ``repro.obs.core.ACTIVE``
once, see ``None`` and skip all instrumentation — including the new
tracing branch in envelope delivery.  This pins the contract with
``tracemalloc``: a full quick bench run attributes zero allocations
to any ``repro/obs`` frame.
"""

import tracemalloc

import repro.obs.core as core
from repro.analysis.bench import run_bench


class TestNullObserverAllocations:
    def test_quick_bench_allocates_nothing_in_obs(self):
        assert core.ACTIVE is None
        # warm imports and caches outside the traced window so only
        # steady-state allocations are attributed
        run_bench(suites=["avalanche"], quick=True, workers=1,
                  profile=False)
        obs_filter = tracemalloc.Filter(True, "*/repro/obs/*")
        tracemalloc.start(1)
        try:
            run_bench(suites=["avalanche"], quick=True, workers=1,
                      profile=False)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = snapshot.filter_traces([obs_filter]).statistics("lineno")
        assert stats == [], [
            f"{stat.traceback} allocated {stat.size} bytes"
            for stat in stats
        ]
