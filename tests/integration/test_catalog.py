"""Catalog-wide conformance: every protocol vs the adversary gallery.

Each registered agreement protocol must satisfy the Byzantine
agreement predicate against every generic Byzantine strategy, decide
within its declared round bound, and refuse configurations outside its
resilience requirement.  New protocols inherit this coverage by
registering in :mod:`repro.agreement.interfaces`.
"""

import pytest

from repro.agreement.interfaces import catalog, entries_supporting
from repro.core.predicates import byzantine_agreement_predicate
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

from tests.conftest import byzantine_adversaries

CONFIG = SystemConfig(n=9, t=2)  # satisfies every entry's requirement
PREDICATE = byzantine_agreement_predicate()


def run_entry(entry, config, inputs, adversary, seed=0):
    factory = entry.build(config, [0, 1], seed)
    bound = entry.rounds(config.t)
    return run_protocol(
        factory,
        config,
        inputs,
        adversary=adversary,
        max_rounds=(bound + 1) if bound is not None else 800,
        seed=seed,
    )


@pytest.mark.parametrize(
    "entry", catalog(), ids=lambda entry: entry.name
)
class TestCatalogConformance:
    def test_satisfies_ba_predicate_under_gallery(self, entry):
        if not entry.supports(CONFIG):
            pytest.skip("configuration outside the entry's requirement")
        inputs = {p: p % 2 for p in CONFIG.process_ids}
        strategies = byzantine_adversaries([4, 9])
        if "authenticated" in entry.name:
            strategies = strategies[:1]  # silent only; see entry.notes
        for adversary in strategies:
            result = run_entry(entry, CONFIG, inputs, adversary, seed=2)
            assert PREDICATE(
                result.answer_vector(),
                frozenset(result.faulty_ids),
                tuple(inputs[p] for p in CONFIG.process_ids),
            ), f"{entry.name} vs {type(adversary).__name__}"

    def test_decides_within_declared_rounds(self, entry):
        if not entry.supports(CONFIG):
            pytest.skip("configuration outside the entry's requirement")
        inputs = {p: p % 2 for p in CONFIG.process_ids}
        result = run_entry(entry, CONFIG, inputs, adversary=None)
        bound = entry.rounds(CONFIG.t)
        if bound is not None:
            assert result.rounds <= bound
        assert result.is_deciding()


class TestCatalogStructure:
    def test_names_unique(self):
        names = [entry.name for entry in catalog()]
        assert len(names) == len(set(names))

    def test_entries_supporting_filters(self):
        tight = SystemConfig(n=7, t=2)  # 3t + 1 but < 4t + 1
        names = {entry.name for entry in entries_supporting(tight)}
        assert "Phase Queen" not in names
        assert "Phase King" in names
        assert "compact BA (fast, k=1)" not in names

    def test_all_entries_declare_requirements(self):
        for entry in catalog():
            assert entry.supports(SystemConfig(n=50, t=2))
            assert not entry.supports(SystemConfig(n=4, t=3))


class TestCatalogContract:
    """The contract pass of ``repro.statics`` as a meta-test.

    Catalog drift (an unregistered factory, a stale exemption, a
    missing round bound, an undocumented resilience requirement)
    fails here even when nobody runs ``repro lint``.
    """

    def test_catalog_agrees_with_source_tree(self):
        import pathlib

        import repro
        from repro.statics.contracts import run_contract_pass

        package_root = pathlib.Path(repro.__file__).resolve().parent
        findings = run_contract_pass(package_root)
        assert findings == [], "\n".join(
            f"{f.rule} {f.path}: {f.message}" for f in findings
        )

    def test_every_factory_registered_or_exempted_is_disjoint(self):
        import pathlib

        import repro
        from repro.agreement.interfaces import CATALOG_EXEMPT
        from repro.statics.contracts import parse_catalog, tree_factories

        package_root = pathlib.Path(repro.__file__).resolve().parent
        interfaces = package_root / "agreement" / "interfaces.py"
        registered = set()
        for entry in parse_catalog(interfaces.read_text()):
            registered |= entry.factories
        factories = set(tree_factories(package_root))
        assert registered <= factories
        assert not registered & set(CATALOG_EXEMPT)
        assert registered | set(CATALOG_EXEMPT) == factories
