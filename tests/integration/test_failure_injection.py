"""Failure injection: protocol-aware attacks on the compact protocol.

These adversaries speak Protocol 3's wire format and target its
specific mechanisms — stale cores, forged-but-expandable index arrays,
spliced payloads, avalanche-level equivocation.  Agreement, validity,
the step-5 invariant, OUT-table consistency, and simulation fidelity
must all survive.
"""

import pytest

from repro.adversary.compact_attacks import (
    AvalancheEquivocator,
    ForgedIndexAdversary,
    SpliceAdversary,
    StaleCoreAdversary,
)
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.core.simulation import check_fullinfo_consistency
from repro.types import SystemConfig, is_bottom

from tests.conftest import assert_agreement_and_validity

ATTACKS = [
    StaleCoreAdversary,
    ForgedIndexAdversary,
    SpliceAdversary,
    AvalancheEquivocator,
]


@pytest.mark.parametrize("attack", ATTACKS)
@pytest.mark.parametrize("k", [1, 2])
class TestCompactSurvivesTargetedAttacks:
    def test_agreement_and_validity(self, config7, attack, k):
        for pattern in range(2):
            inputs = {p: (p + pattern) % 2 for p in config7.process_ids}
            result = run_compact_byzantine_agreement(
                config7,
                inputs,
                value_alphabet=[0, 1],
                k=k,
                adversary=attack([3, 6]),
                seed=pattern,
            )
            assert_agreement_and_validity(result, inputs)

    def test_invariant_and_out_consistency(self, config7, attack, k):
        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_compact_byzantine_agreement(
            config7,
            inputs,
            value_alphabet=[0, 1],
            k=k,
            adversary=attack([1, 4]),
        )
        merged = {}
        for process in result.processes.values():
            # step-5 invariant: the core is always expandable.
            assert not is_bottom(process.full_state())
            for boundary in (2, 3, 4, 5):
                for subject, value in process.expansion.out_table(
                    boundary
                ).items():
                    key = (boundary, subject)
                    assert merged.setdefault(key, value) == value


@pytest.mark.parametrize("attack", ATTACKS)
def test_simulation_fidelity_under_targeted_attacks(config4, attack):
    """The existential Theorem 9 check passes under every attack."""
    inputs = {p: p % 2 for p in config4.process_ids}
    result = run_compact_byzantine_agreement(
        config4,
        inputs,
        value_alphabet=[0, 1],
        k=2,
        adversary=attack([2]),
        record_trace=True,
        expose_full_state=True,
    )
    correct = sorted(result.processes)
    full_states = {p: [inputs[p]] for p in correct}
    seen = {p: 0 for p in correct}
    for round_number in result.trace.rounds:
        for process_id in correct:
            snapshot = result.trace.snapshot(round_number, process_id)
            if (
                snapshot
                and "full_state" in snapshot
                and snapshot["simul"] == seen[process_id] + 1
            ):
                full_states[process_id].append(snapshot["full_state"])
                seen[process_id] += 1
    check_fullinfo_consistency(
        full_states, correct, inputs, config4.n, value_alphabet=[0, 1]
    )


class TestAttacksAgainstAvalancheStandalone:
    """The avalanche layer's conditions hold under vote equivocation
    routed through a full compact run (the OUT tables above) — here we
    additionally check the targeted equivocator cannot force a bogus
    decision round ordering."""

    def test_avalanche_equivocator_decision_rounds(self, config7):
        inputs = {p: 1 for p in config7.process_ids}
        result = run_compact_byzantine_agreement(
            config7,
            inputs,
            value_alphabet=[0, 1],
            k=1,
            adversary=AvalancheEquivocator([2, 5]),
        )
        # Unanimity: everything must decide 1 at the same round.
        assert result.decided_values() == {1}
        assert len(set(result.decision_rounds.values())) == 1
