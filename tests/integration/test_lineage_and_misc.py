"""Paper-fidelity details: protocol lineage and multivalued coverage."""

import pytest

from repro.adversary import EquivocatingAdversary, RandomGarbageAdversary
from repro.avalanche.protocol import standard_thresholds
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.types import BOTTOM, SystemConfig


class TestBenOrLineage:
    """Section 4: Protocol 2 "incorporates many ideas from previously
    known randomized protocols … Ben-Or [1]".  The lineage is literal:
    the quorums coincide."""

    def test_quorums_coincide(self):
        for t in (1, 2, 3):
            config = SystemConfig(n=3 * t + 1, t=t)
            thresholds = standard_thresholds(config)
            # Ben-Or's proposal quorum is a majority of n + t votes —
            # exactly avalanche's round-1 adoption quorum.
            ben_or_proposal_quorum = (config.n + config.t) // 2 + 1
            assert thresholds.round1_adopt == ben_or_proposal_quorum
            # Ben-Or adopts on t + 1 proposals and decides on 2t + 1 —
            # exactly avalanche's later-round quorums.
            assert thresholds.later_adopt == config.t + 1
            assert thresholds.decide == 2 * config.t + 1


class TestMultivaluedCompact:
    """Corollary 10 is for arbitrary finite V; the binary case is just
    the smallest.  Sweep a 4-letter alphabet."""

    ALPHABET = ["north", "south", "east", "west"]

    @pytest.mark.parametrize("k", [1, 2])
    def test_agreement_over_words(self, config7, k):
        inputs = {
            p: self.ALPHABET[p % 4] for p in config7.process_ids
        }
        for adversary in (
            EquivocatingAdversary([2, 6], "north", "west"),
            RandomGarbageAdversary([2, 6], palette=self.ALPHABET),
        ):
            result = run_compact_byzantine_agreement(
                config7,
                inputs,
                value_alphabet=self.ALPHABET,
                k=k,
                adversary=adversary,
            )
            decided = result.decided_values()
            assert len(decided) == 1
            assert decided <= set(self.ALPHABET)

    def test_unanimity_over_words(self, config7):
        inputs = {p: "east" for p in config7.process_ids}
        result = run_compact_byzantine_agreement(
            config7,
            inputs,
            value_alphabet=self.ALPHABET,
            k=1,
            adversary=EquivocatingAdversary([3, 4], "north", "south"),
        )
        assert result.decided_values() == {"east"}

    def test_bits_scale_with_alphabet_size(self, config4):
        """log |V| shows up in measured traffic: a 16-letter alphabet
        costs more bits than a binary one on the same run shape."""
        small = run_compact_byzantine_agreement(
            config4,
            {p: p % 2 for p in config4.process_ids},
            value_alphabet=[0, 1],
            k=1,
        )
        big_alphabet = [f"w{i}" for i in range(16)]
        big = run_compact_byzantine_agreement(
            config4,
            {p: big_alphabet[p % 2] for p in config4.process_ids},
            value_alphabet=big_alphabet,
            k=1,
        )
        assert big.metrics.total_bits > small.metrics.total_bits


class TestInputsOutsideAlphabetRejected:
    def test_engine_surfaces_configuration_error(self, config4):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_compact_byzantine_agreement(
                config4,
                {p: "zebra" for p in config4.process_ids},
                value_alphabet=[0, 1],
                k=1,
            )
