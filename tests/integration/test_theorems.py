"""Integration tests for the paper's three main formal claims.

* Theorem 2 — the full-information protocol simulates any consensus
  protocol (checked with the explicit witness: identity scaling and
  the recursive reconstruction f_p),
* Theorem 9 — the compact protocol simulates the full-information
  protocol (checked directly fault-free; existentially under faults),
* Theorem 1 — simulation preserves correctness predicates (checked by
  running a predicate-satisfying protocol through both transforms).
"""

import pytest

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.agreement.eig_agreement import ExponentialAgreementAutomaton
from repro.core.automaton import automaton_factory, run_automaton_locally
from repro.core.predicates import byzantine_agreement_predicate
from repro.core.simulation import SimulationWitness, check_simulation
from repro.core.transform import canonical_form, full_information_form
from repro.fullinfo.decision import reconstruct_state
from repro.fullinfo.protocol import full_information_factory
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig

from tests.conftest import byzantine_adversaries


class TestTheorem2:
    """Full information simulates an arbitrary protocol."""

    def test_simulation_witness_fault_free(self, config4):
        protocol = ExponentialAgreementAutomaton(config4, [0, 1])
        inputs = {p: p % 2 for p in config4.process_ids}
        rounds = 2

        # E': the full-information protocol, states recorded per round.
        primed = run_protocol(
            full_information_factory(value_alphabet=[0, 1]),
            config4,
            inputs,
            run_full_rounds=rounds,
            record_trace=True,
        )
        primed_states = {
            p: [inputs[p]]
            + [
                primed.trace.snapshot(r, p)["state"]
                for r in range(1, rounds + 1)
            ]
            for p in config4.process_ids
        }
        # E: the original protocol run natively.
        reference_states = run_automaton_locally(protocol, inputs, rounds)

        witness = SimulationWitness(
            simulation_functions={
                p: (lambda state, p=p: reconstruct_state(protocol, p, state))
                for p in config4.process_ids
            },
            scaling=lambda round_number: round_number,  # identity
        )
        check_simulation(
            witness,
            primed_states,
            reference_states,
            correct_ids=config4.process_ids,
            rounds=rounds,
        )


class TestTheorem1ViaTransforms:
    """Correctness predicates survive both simulation steps."""

    @pytest.mark.parametrize("strategy_index", range(6))
    def test_canonical_form_satisfies_byzantine_predicate(
        self, config4, strategy_index
    ):
        protocol = ExponentialAgreementAutomaton(config4, [0, 1])
        form = canonical_form(protocol, k=2)
        predicate = byzantine_agreement_predicate()
        inputs = {p: p % 2 for p in config4.process_ids}
        adversary = byzantine_adversaries([3])[strategy_index]
        result = form.run(inputs, adversary=adversary)
        assert predicate(
            result.answer_vector(),
            frozenset(result.faulty_ids),
            tuple(inputs[p] for p in config4.process_ids),
        )

    def test_full_information_form_same_decisions_as_native(self, config4):
        protocol = ExponentialAgreementAutomaton(config4, [0, 1])
        form = full_information_form(protocol)
        inputs = {p: p % 2 for p in config4.process_ids}
        via_form = form.run(inputs)
        native = run_protocol(
            automaton_factory(protocol),
            config4,
            inputs,
            max_rounds=config4.t + 2,
        )
        assert via_form.decisions == native.decisions

    def test_termination_preserved(self, config4):
        """Theorem 1(1): the canonical form decides by its deadline."""
        protocol = ExponentialAgreementAutomaton(config4, [0, 1])
        for k in (1, 2, 3):
            form = canonical_form(protocol, k=k)
            inputs = {p: p % 2 for p in config4.process_ids}
            result = form.run(inputs, adversary=SilentAdversary([2]))
            assert result.is_deciding()
            assert result.rounds == form.deadline


class TestTransformAPI:
    def test_requires_exactly_one_parameter(self, config4):
        from repro.errors import ConfigurationError

        protocol = ExponentialAgreementAutomaton(config4, [0, 1])
        with pytest.raises(ConfigurationError):
            canonical_form(protocol)
        with pytest.raises(ConfigurationError):
            canonical_form(protocol, k=1, epsilon=1.0)

    def test_requires_known_horizon(self, config4):
        from repro.core.automaton import AutomatonProtocol
        from repro.errors import ConfigurationError

        class NoHorizon(AutomatonProtocol):
            def message(self, sender, receiver, state):
                return state

            def transition(self, process_id, messages):
                return messages[0]

            def decision(self, process_id, state):
                return BOTTOM

        with pytest.raises(ConfigurationError):
            canonical_form(NoHorizon(config4, [0, 1]), k=2)

    def test_epsilon_controls_deadline(self, config4):
        protocol = ExponentialAgreementAutomaton(config4, [0, 1])
        fast = canonical_form(protocol, epsilon=0.5)
        slow = canonical_form(protocol, epsilon=2.0)
        assert fast.deadline <= slow.deadline
        assert fast.k > slow.k

    def test_transform_equals_direct_corollary10(self, config4):
        """canonical_form(EIG automaton) is Corollary 10's protocol:
        identical decisions on identical executions."""
        from repro.compact.byzantine_agreement import (
            run_compact_byzantine_agreement,
        )

        protocol = ExponentialAgreementAutomaton(config4, [0, 1])
        form = canonical_form(protocol, k=2)
        for pattern in range(2):
            inputs = {p: (p + pattern) % 2 for p in config4.process_ids}
            adversary_a = EquivocatingAdversary([4], 0, 1)
            adversary_b = EquivocatingAdversary([4], 0, 1)
            via_transform = form.run(inputs, adversary=adversary_a, seed=9)
            direct = run_compact_byzantine_agreement(
                config4,
                inputs,
                value_alphabet=[0, 1],
                k=2,
                adversary=adversary_b,
                seed=9,
            )
            assert via_transform.decisions == direct.decisions
            assert via_transform.rounds == direct.rounds
