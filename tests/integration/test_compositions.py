"""Protocol compositions: the library's pieces stacked on each other.

The paper's framework is compositional by design — subprotocols,
reductions, simulations.  These tests stack real components in ways
the paper's Section 5.6 remarks anticipate (e.g. the Turpin–Coan
reduction "has a similar impact on both protocols" — so it should run
over the compact protocol just as well as over Phase King).
"""

import pytest

from repro.adversary import (
    EquivocatingAdversary,
    RandomGarbageAdversary,
    SilentAdversary,
)
from repro.agreement.phase_king import PhaseQueenProcess, phase_queen_rounds
from repro.agreement.turpin_coan import turpin_coan_factory
from repro.agreement.weak import weak_agreement_factory
from repro.compact.byzantine_agreement import (
    compact_ba_factory,
    compact_ba_rounds,
)
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

from tests.conftest import assert_agreement_and_validity


def compact_binary_inner(config):
    """The compact BA protocol as a Turpin–Coan inner binary engine."""
    base = compact_ba_factory(config, [0, 1], default=0, k=1)

    def factory(process_id, inner_config, bit):
        return base(process_id, inner_config, bit)

    return factory


class TestTurpinCoanOverCompact:
    """Multivalued agreement = TC reduction + Corollary 10's binary
    protocol: 2 extra rounds on top of the compact round count."""

    ALPHABET = ["red", "green", "blue"]

    def run(self, config, inputs, adversary=None, seed=0):
        inner_rounds = compact_ba_rounds(config.t, 1)
        return run_protocol(
            turpin_coan_factory(
                compact_binary_inner(config), default="red"
            ),
            config,
            inputs,
            adversary=adversary,
            max_rounds=2 + inner_rounds + 1,
            seed=seed,
        )

    def test_unanimity(self, config7):
        inputs = {p: "blue" for p in config7.process_ids}
        result = self.run(
            config7,
            inputs,
            adversary=EquivocatingAdversary([2, 5], "red", "green"),
        )
        assert result.decided_values() == {"blue"}

    def test_mixed_inputs_agree(self, config7):
        inputs = {
            p: self.ALPHABET[p % 3] for p in config7.process_ids
        }
        for adversary in (
            SilentAdversary([3, 6]),
            RandomGarbageAdversary([3, 6], palette=self.ALPHABET),
        ):
            result = self.run(config7, inputs, adversary=adversary)
            decided = result.decided_values()
            assert len(decided) == 1
            assert decided <= set(self.ALPHABET)

    def test_round_overhead_is_two(self, config7):
        inputs = {p: "blue" for p in config7.process_ids}
        result = self.run(config7, inputs)
        assert result.rounds == 2 + compact_ba_rounds(config7.t, 1)


class TestWeakOverPhaseQueen:
    """Weak agreement with a different inner engine (n >= 4t + 1)."""

    def run(self, config, inputs, adversary=None):
        inner = lambda pid, cfg, bit: PhaseQueenProcess(pid, cfg, bit)  # noqa: E731
        return run_protocol(
            weak_agreement_factory(inner),
            config,
            inputs,
            adversary=adversary,
            max_rounds=1 + phase_queen_rounds(config.t) + 1,
        )

    def test_weak_validity_no_faults(self, config9):
        inputs = {p: 1 for p in config9.process_ids}
        result = self.run(config9, inputs)
        assert result.decided_values() == {1}

    def test_agreement_with_faults(self, config9):
        inputs = {p: p % 2 for p in config9.process_ids}
        result = self.run(
            config9, inputs, adversary=EquivocatingAdversary([4, 8], 0, 1)
        )
        assert len(result.decided_values()) == 1


class TestWeakOverCompact:
    """Weak agreement whose inner engine is the compact protocol."""

    def test_agreement_and_weak_validity(self, config7):
        inner = compact_binary_inner(config7)
        rounds = 1 + compact_ba_rounds(config7.t, 1) + 1
        inputs = {p: 1 for p in config7.process_ids}
        result = run_protocol(
            weak_agreement_factory(inner),
            config7,
            inputs,
            max_rounds=rounds,
        )
        assert result.decided_values() == {1}

        mixed = {p: p % 2 for p in config7.process_ids}
        result = run_protocol(
            weak_agreement_factory(inner),
            config7,
            mixed,
            adversary=EquivocatingAdversary([2, 5], 0, 1),
            max_rounds=rounds,
        )
        assert len(result.decided_values()) == 1


class TestExtendedComparison:
    def test_extended_rows_present(self):
        from repro.analysis.compare import measured_comparison

        rows = measured_comparison(
            1,
            lambda faulty: EquivocatingAdversary(faulty, 0, 1),
            extended=True,
        )
        names = [row["protocol"] for row in rows]
        assert any("Phase King" in name for name in names)
        assert any("Dolev-Strong" in name for name in names)
        for row in rows:
            assert len(row["decisions"]) == 1
