"""Ablations: weaken a design choice, observe the predicted failure.

Positive tests show the protocols work; these negative controls show
*why* each quorum in Protocol 2 is what it is, by lowering one and
exhibiting a concrete adversarial execution that breaks exactly the
property the paper's corresponding lemma guarantees.
"""

import pytest

from repro.adversary import EquivocatingAdversary
from repro.avalanche.conditions import check_avalanche_condition
from repro.avalanche.protocol import Thresholds, avalanche_factory
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom


class TestRound1QuorumIsLoadBearing:
    """Lemma 3 (at most one persistent value) needs the round-1 adopt
    quorum to be 2t + 1 at n = 3t + 1.  Lower it to t + 1 and a single
    equivocator manufactures two persistent values."""

    def test_lowered_quorum_breaks_lemma3(self, config4):
        weak = Thresholds(
            round1_adopt=config4.t + 1,  # should be 2t + 1
            later_adopt=config4.t + 1,
            decide=2 * config4.t + 1,
        )
        inputs = {1: "a", 2: "a", 3: "b", 4: "b"}
        result = run_protocol(
            avalanche_factory(thresholds=weak),
            config4,
            inputs,
            adversary=EquivocatingAdversary([1], "a", "b"),
            run_full_rounds=1,
            record_trace=True,
        )
        round1_vals = {
            snapshot["val"]
            for snapshot in result.trace.snapshots_in_round(1).values()
            if not is_bottom(snapshot["val"])
        }
        assert len(round1_vals) == 2, (
            "expected the weakened quorum to admit two persistent "
            f"values, got {round1_vals}"
        )

    def test_paper_quorum_preserves_lemma3_same_scenario(self, config4):
        """Control: the identical attack against the paper's quorum."""
        inputs = {1: "a", 2: "a", 3: "b", 4: "b"}
        result = run_protocol(
            avalanche_factory(),  # standard 2t + 1
            config4,
            inputs,
            adversary=EquivocatingAdversary([1], "a", "b"),
            run_full_rounds=1,
            record_trace=True,
        )
        round1_vals = {
            snapshot["val"]
            for snapshot in result.trace.snapshots_in_round(1).values()
            if not is_bottom(snapshot["val"])
        }
        assert len(round1_vals) <= 1


class TestDecideQuorumIsLoadBearing:
    """The decide quorum must be 2t + 1: decisions then rest on t + 1
    correct voters, which forces the avalanche.  Lower it to t + 1 and
    an equivocator splits the correct processors' decisions."""

    def attack(self, thresholds, config):
        inputs = {1: "a", 2: "a", 3: "b", 4: "b"}
        return run_protocol(
            avalanche_factory(thresholds=thresholds),
            config,
            inputs,
            adversary=EquivocatingAdversary([1], "a", "b"),
            run_full_rounds=4,
        )

    def test_lowered_quorum_splits_decisions(self, config4):
        weak = Thresholds(
            round1_adopt=config4.t + 1,
            later_adopt=config4.t + 1,
            decide=config4.t + 1,  # should be 2t + 1
        )
        result = self.attack(weak, config4)
        decided = {
            value
            for value in result.decisions.values()
            if not is_bottom(value)
        }
        violations = check_avalanche_condition(
            result.decisions,
            result.decision_rounds,
            sorted(result.processes),
            result.rounds,
        )
        assert len(decided) == 2 or violations, (
            "expected the weakened decide quorum to break the "
            "avalanche condition"
        )

    def test_paper_quorum_survives_same_attack(self, config4):
        result = self.attack(None, config4)
        violations = check_avalanche_condition(
            result.decisions,
            result.decision_rounds,
            sorted(result.processes),
            result.rounds,
        )
        assert not violations


class TestAdoptQuorumIsLoadBearing:
    """The later-round adopt quorum must exceed t, or the adversary
    alone can plant a value no correct processor ever held — breaking
    plausibility (Lemma 4's base case)."""

    def test_adopt_quorum_of_t_admits_planted_values(self, config7):
        weak = Thresholds(
            round1_adopt=2 * config7.t + 1,
            later_adopt=config7.t,  # should be t + 1
            decide=2 * config7.t + 1,
        )
        # No correct processor ever inputs "evil"; the two faulty
        # processors alone reach the weakened t = 2 adopt quorum.
        inputs = {p: BOTTOM for p in config7.process_ids}
        result = run_protocol(
            avalanche_factory(thresholds=weak),
            config7,
            inputs,
            adversary=EquivocatingAdversary([6, 7], "evil", "evil"),
            run_full_rounds=3,
            record_trace=True,
        )
        planted = any(
            snapshot["val"] == "evil"
            for round_number in result.trace.rounds
            for snapshot in result.trace.snapshots_in_round(
                round_number
            ).values()
        )
        assert planted, "expected the weakened adopt quorum to admit a planted value"

    def test_paper_quorum_rejects_planted_values(self, config7):
        inputs = {p: BOTTOM for p in config7.process_ids}
        result = run_protocol(
            avalanche_factory(),
            config7,
            inputs,
            adversary=EquivocatingAdversary([6, 7], "evil", "evil"),
            run_full_rounds=3,
            record_trace=True,
        )
        for round_number in result.trace.rounds:
            for snapshot in result.trace.snapshots_in_round(
                round_number
            ).values():
                assert snapshot["val"] != "evil"
