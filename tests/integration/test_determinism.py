"""Replayability: identical seeds, identical executions — everywhere.

A core design requirement (DESIGN.md): every execution is a pure
function of ``(protocol, inputs, adversary, seed)``.  These tests
replay the most state-heavy stacks and compare full traces.
"""

import pytest

from repro.adversary import RandomGarbageAdversary
from repro.adversary.omission import OmissionAdversary
from repro.agreement.ben_or import ben_or_factory
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.compact.crash_variant import crash_compact_factory
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig


def trace_fingerprint(result):
    return [
        (e.round_number, e.sender, e.receiver, repr(e.payload))
        for e in result.trace.envelopes
    ]


class TestCompactDeterminism:
    def test_same_seed_identical_traces(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}
        runs = [
            run_compact_byzantine_agreement(
                config7,
                inputs,
                value_alphabet=[0, 1],
                k=1,
                adversary=RandomGarbageAdversary([2, 5]),
                seed=42,
                record_trace=True,
            )
            for _ in range(2)
        ]
        assert trace_fingerprint(runs[0]) == trace_fingerprint(runs[1])
        assert runs[0].decisions == runs[1].decisions

    def test_different_seeds_differ(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}
        fingerprints = []
        for seed in (1, 2):
            result = run_compact_byzantine_agreement(
                config7,
                inputs,
                value_alphabet=[0, 1],
                k=1,
                adversary=RandomGarbageAdversary(
                    [2, 5], palette=list(range(20))
                ),
                seed=seed,
                record_trace=True,
            )
            fingerprints.append(trace_fingerprint(result))
        assert fingerprints[0] != fingerprints[1]


class TestBenOrDeterminism:
    def test_coins_replay(self, config7):
        """Randomized protocol + random adversary, still replayable."""
        inputs = {p: p % 2 for p in config7.process_ids}
        outcomes = set()
        for _ in range(2):
            result = run_protocol(
                ben_or_factory(seed=11),
                config7,
                inputs,
                adversary=RandomGarbageAdversary([3, 6]),
                max_rounds=600,
                seed=11,
            )
            outcomes.add(
                (result.rounds, tuple(sorted(result.decisions.items())))
            )
        assert len(outcomes) == 1


class TestOmissionDeterminism:
    def test_random_drops_replay(self, config7):
        inputs = {p: p % 3 for p in config7.process_ids}
        fingerprints = []
        for _ in range(2):
            factory = crash_compact_factory(
                k=2, value_alphabet=[0, 1, 2], t=config7.t
            )
            result = run_protocol(
                factory,
                config7,
                inputs,
                adversary=OmissionAdversary([2, 5], factory, 0.5),
                max_rounds=config7.t + 2,
                seed=7,
                record_trace=True,
            )
            fingerprints.append(trace_fingerprint(result))
        assert fingerprints[0] == fingerprints[1]
