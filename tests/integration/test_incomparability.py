"""Section 4's incomparability claims, made concrete.

The paper argues avalanche agreement is *incomparable* to both
Byzantine agreement and crusader agreement — each pair has executions
where one's obligations are stronger.  These tests exhibit the
distinguishing executions.
"""

import pytest

from repro.adversary import EquivocatingAdversary
from repro.agreement.crusader import SENDER_FAULTY, crusader_factory
from repro.avalanche.protocol import avalanche_factory
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom


class TestAvalancheVsByzantineAgreement:
    """Five differences are listed; the observable ones here."""

    def test_avalanche_may_never_terminate(self, config4):
        """Difference 1: no termination requirement.  A 2-2 input
        split never decides — legal for avalanche, illegal for BA."""
        inputs = {1: "a", 2: "a", 3: "b", 4: "b"}
        result = run_protocol(
            avalanche_factory(), config4, inputs, run_full_rounds=10
        )
        assert all(is_bottom(d) for d in result.decisions.values())

    def test_unanimous_input_decides_in_two_rounds(self, config7):
        """Difference 2: unanimous executions must finish by round 2 —
        much faster than BA's t + 1 lower bound for t >= 2."""
        inputs = {p: "v" for p in config7.process_ids}
        result = run_protocol(
            avalanche_factory(),
            config7,
            inputs,
            adversary=EquivocatingAdversary([3, 6], "v", "w"),
            run_full_rounds=3,
        )
        assert max(result.decision_rounds.values()) <= 2 < config7.t + 1

    def test_processors_may_start_without_input(self, config7):
        """Difference 4: bottom inputs are legal."""
        inputs = {p: ("v" if p <= 5 else BOTTOM) for p in config7.process_ids}
        result = run_protocol(
            avalanche_factory(), config7, inputs, run_full_rounds=4
        )
        assert set(result.decisions.values()) == {"v"}

    def test_plausibility_is_stronger_than_ba_validity(self, config7):
        """Difference 5: BA validity allows deciding a default value
        nobody input when inputs are mixed; avalanche never may.  The
        compact BA protocol (a real BA protocol) shows the contrast."""
        from repro.compact.byzantine_agreement import (
            run_compact_byzantine_agreement,
        )

        # Mixed inputs over three values; BA may decide the default 0
        # even if... here we only check avalanche's side: any decision
        # must be some correct input.
        inputs = {p: ("x" if p % 2 else "y") for p in config7.process_ids}
        result = run_protocol(
            avalanche_factory(),
            config7,
            inputs,
            adversary=EquivocatingAdversary([2, 5], "x", "z"),
            run_full_rounds=8,
        )
        for decision in result.decisions.values():
            assert is_bottom(decision) or decision in {"x", "y"}


class TestAvalancheVsCrusader:
    """Paper: crusader agreement is harder in that all executions must
    be deciding; avalanche is harder in that the answer, if it exists,
    must be unique."""

    def test_crusader_always_decides(self, config7):
        """Even with a faulty source, every crusader execution decides
        (possibly SENDER_FAULTY) by round 2."""
        inputs = {p: "v" for p in config7.process_ids}
        result = run_protocol(
            crusader_factory(source=3),
            config7,
            inputs,
            adversary=EquivocatingAdversary([3], "x", "y"),
            max_rounds=3,
        )
        assert all(not is_bottom(d) for d in result.decisions.values())

    def test_crusader_permits_two_answers(self, config7):
        """Some correct processors may hold the value while others
        hold SENDER_FAULTY — two distinct answers in one execution,
        which avalanche's uniqueness forbids."""
        inputs = {p: "v" for p in config7.process_ids}
        result = run_protocol(
            crusader_factory(source=3),
            config7,
            inputs,
            adversary=EquivocatingAdversary([3, 6], "x", "y"),
            max_rounds=3,
        )
        answers = set(result.decisions.values())
        # The split outcome is the interesting case and this adversary
        # produces it: one real value plus the faulty verdict.
        assert SENDER_FAULTY in answers
        assert len(answers - {SENDER_FAULTY}) <= 1

    def test_avalanche_decisions_unique_in_same_scenario(self, config7):
        """The avalanche side of the comparison: across the same
        adversarial pressure, decided values are always unique."""
        inputs = {p: ("v" if p % 2 else "w") for p in config7.process_ids}
        result = run_protocol(
            avalanche_factory(),
            config7,
            inputs,
            adversary=EquivocatingAdversary([3, 6], "v", "w"),
            run_full_rounds=8,
        )
        decided = {
            d for d in result.decisions.values() if not is_bottom(d)
        }
        assert len(decided) <= 1
