"""The generality claim: the transform beyond Byzantine agreement.

Section 5.6: "our technique is more general and may therefore have
greater applicability (e.g., reducing the communications cost of the
approximate agreement protocol of Fekete)".  Here approximate
agreement — a protocol with a completely different correctness
predicate — goes through the same canonical-form transformation and
keeps its guarantees with polynomial communication (experiment E6).
"""

import pytest

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.agreement.approximate import ApproximateAgreementAutomaton
from repro.core.predicates import approximate_agreement_predicate
from repro.core.transform import canonical_form, full_information_form
from repro.types import SystemConfig

GRID = list(range(0, 33))  # fixed-point values 0..32
INPUTS = {1: 0, 2: 32, 3: 16, 4: 8, 5: 24, 6: 4, 7: 28}


@pytest.fixture
def automaton(config7):
    return ApproximateAgreementAutomaton(config7, GRID, rounds=4)


class TestApproximateThroughTransform:
    def test_fault_free_convergence(self, config7, automaton):
        form = canonical_form(automaton, k=2)
        result = form.run(INPUTS)
        values = [float(v) for v in result.decisions.values()]
        # 4 halvings of a spread of 32, plus grid rounding slack.
        assert max(values) - min(values) <= 32 / 2**4 + 1

    def test_predicate_under_adversaries(self, config7, automaton):
        predicate = approximate_agreement_predicate(epsilon=32 / 2**4 + 1)
        form = canonical_form(automaton, k=2)
        for adversary in (
            SilentAdversary([2, 5]),
            EquivocatingAdversary([2, 5], 0, 32),
        ):
            result = form.run(INPUTS, adversary=adversary)
            assert predicate(
                result.answer_vector(),
                frozenset(result.faulty_ids),
                tuple(INPUTS[p] for p in config7.process_ids),
            )

    def test_matches_full_information_form(self, config7, automaton):
        """Same decisions through the compact and the exponential
        simulation (both reconstruct the same automaton states)."""
        compact_result = canonical_form(automaton, k=2).run(INPUTS)
        fullinfo_result = full_information_form(automaton).run(INPUTS)
        assert compact_result.decisions == fullinfo_result.decisions

    def test_communication_is_polynomial_shaped(self, config7, automaton):
        """The compact form's traffic is far below the exponential
        form's for the same simulated protocol."""
        compact_result = canonical_form(automaton, k=1).run(INPUTS)
        fullinfo_result = full_information_form(automaton).run(INPUTS)
        assert (
            compact_result.metrics.total_bits
            < fullinfo_result.metrics.total_bits
        )

    def test_round_inflation_bounded(self, config7, automaton):
        form = canonical_form(automaton, epsilon=1.0)
        result = form.run(INPUTS)
        assert result.rounds <= (1 + 1.0) * automaton.rounds_to_decide
