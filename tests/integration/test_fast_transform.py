"""The n >= 4t + 1 general transformation (Section 5.6's last claim).

"If n >= 4t + 1 then a modification of our technique can transform any
(t + 1)-round consensus protocol to a (1 + eps)(t + 1)-round protocol"
— the modification being the one-round-consensus avalanche and blocks
of k + 1.  The public API carries it as ``overhead=1`` on
:func:`repro.core.transform.canonical_form`; here the *general*
transform (not just the packaged BA) runs with it.
"""

import pytest

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.agreement.approximate import ApproximateAgreementAutomaton
from repro.agreement.eig_agreement import ExponentialAgreementAutomaton
from repro.core.predicates import (
    approximate_agreement_predicate,
    byzantine_agreement_predicate,
)
from repro.core.rounds import k_for_epsilon
from repro.core.transform import canonical_form
from repro.errors import ConfigurationError
from repro.types import SystemConfig


class TestFastCanonicalForm:
    def test_k_halves_for_the_same_epsilon(self, config9):
        protocol = ExponentialAgreementAutomaton(config9, [0, 1])
        standard = canonical_form(protocol, epsilon=1.0, overhead=2)
        fast = canonical_form(protocol, epsilon=1.0, overhead=1)
        assert standard.k == 2 and fast.k == 1
        assert fast.deadline <= standard.deadline

    def test_ba_through_fast_transform(self, config9):
        protocol = ExponentialAgreementAutomaton(config9, [0, 1])
        form = canonical_form(protocol, k=1, overhead=1)
        predicate = byzantine_agreement_predicate()
        for adversary in (
            SilentAdversary([4, 9]),
            EquivocatingAdversary([4, 9], 0, 1),
        ):
            inputs = {p: p % 2 for p in config9.process_ids}
            result = form.run(inputs, adversary=adversary)
            assert result.is_deciding()
            assert result.rounds == form.deadline
            assert predicate(
                result.answer_vector(),
                frozenset(result.faulty_ids),
                tuple(inputs[p] for p in config9.process_ids),
            )

    def test_approximate_through_fast_transform(self, config9):
        grid = list(range(0, 33))
        automaton = ApproximateAgreementAutomaton(config9, grid, rounds=4)
        form = canonical_form(automaton, k=2, overhead=1)
        inputs = {
            p: [0, 32, 16, 8, 24, 4, 28, 12, 20][p - 1]
            for p in config9.process_ids
        }
        predicate = approximate_agreement_predicate(32 / 2**4 + 1)
        result = form.run(
            inputs, adversary=EquivocatingAdversary([3, 7], 0, 32)
        )
        assert predicate(
            result.answer_vector(),
            frozenset(result.faulty_ids),
            tuple(inputs[p] for p in config9.process_ids),
        )

    def test_fast_form_rejected_below_4t_plus_1(self, config7):
        protocol = ExponentialAgreementAutomaton(config7, [0, 1])
        form = canonical_form(protocol, k=1, overhead=1)
        inputs = {p: p % 2 for p in config7.process_ids}
        with pytest.raises(ConfigurationError):
            form.run(inputs)

    def test_epsilon_guarantee_with_overhead_one(self):
        """(k+1)/k <= 1 + eps needs only k = ceil(1/eps)."""
        for epsilon in (1.0, 0.5, 0.25):
            k = k_for_epsilon(epsilon, overhead=1)
            assert (k + 1) / k <= 1 + epsilon + 1e-9
            assert k <= k_for_epsilon(epsilon, overhead=2)
