"""Scale smoke tests: the largest configurations the suite runs.

The paper's protocols are proved for all n; these tests push the
implementation past the toy sizes used elsewhere, including the
largest EIG decision the suite computes (n = 13, t = 4: 154,440
distinct relay chains) — via the polynomial-space lazy path, which is
the representation the paper says one should use.
"""

import pytest

from repro.adversary import CollusionAdversary, EquivocatingAdversary
from repro.compact.byzantine_agreement import (
    compact_ba_rounds,
    run_compact_byzantine_agreement,
)
from repro.compact.lazy_decision import lazy_compact_ba_factory
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

from tests.conftest import assert_agreement_and_validity


class TestNTen:
    def test_compact_ba_n10_t3(self):
        config = SystemConfig(n=10, t=3)
        inputs = {p: p % 2 for p in config.process_ids}
        result = run_compact_byzantine_agreement(
            config,
            inputs,
            value_alphabet=[0, 1],
            k=1,
            adversary=EquivocatingAdversary([1, 2, 3], 0, 1),
        )
        assert_agreement_and_validity(result, inputs)
        assert result.rounds == compact_ba_rounds(3, 1)

    def test_compact_ba_n10_collusion_k2(self):
        config = SystemConfig(n=10, t=3)
        inputs = {p: p % 2 for p in config.process_ids}
        result = run_compact_byzantine_agreement(
            config,
            inputs,
            value_alphabet=[0, 1],
            k=2,
            adversary=CollusionAdversary([4, 5, 6]),
        )
        assert_agreement_and_validity(result, inputs)

    def test_lazy_equals_eager_n10(self):
        config = SystemConfig(n=10, t=3)
        inputs = {p: p % 2 for p in config.process_ids}
        eager = run_compact_byzantine_agreement(
            config,
            inputs,
            value_alphabet=[0, 1],
            k=1,
            adversary=EquivocatingAdversary([8, 9, 10], 0, 1),
            seed=7,
        )
        lazy = run_protocol(
            lazy_compact_ba_factory([0, 1], default=0, k=1),
            config,
            inputs,
            adversary=EquivocatingAdversary([8, 9, 10], 0, 1),
            max_rounds=compact_ba_rounds(3, 1) + 1,
            seed=7,
        )
        assert lazy.decisions == eager.decisions


class TestNThirteen:
    def test_compact_ba_n13_t4_lazy(self):
        """t = 4 over 13 processors — the suite's largest run, on the
        polynomial-space path (the eager path would materialise a
        371,293-leaf array per processor)."""
        config = SystemConfig(n=13, t=4)
        inputs = {p: p % 2 for p in config.process_ids}
        result = run_protocol(
            lazy_compact_ba_factory([0, 1], default=0, k=1),
            config,
            inputs,
            adversary=EquivocatingAdversary([1, 2, 3, 4], 0, 1),
            max_rounds=compact_ba_rounds(4, 1) + 1,
        )
        assert_agreement_and_validity(result, inputs)
        assert result.rounds == compact_ba_rounds(4, 1) == 13
