"""Corpus-wide lockstep/async differential gate.

Mirror of the static↔dynamic agreement test: every committed corpus
case replays under the async backend and must agree with the lockstep
replay on *everything* — oracle verdicts, decisions, and the full
checkpoint pickle of the result.  A disagreement here means either a
scheduler bug or a protocol that silently stopped being
communication-closed, and both are hard failures.

``repro fuzz --replay tests/fuzz/corpus --scheduler async`` is the CLI
face of the same gate (CI's fuzz-smoke job runs it).
"""

import dataclasses
import pathlib
import pickle

import pytest

from repro.fuzz.campaign import replay_case
from repro.fuzz.case import load_corpus

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"

_ENTRIES = load_corpus(CORPUS_DIR)

#: One cheap spec and one that stresses delay spread; the full axis is
#: hypothesis-explored in tests/runtime/test_scheduler_equivalence.py.
_BACKENDS = ("async", "async:6:13")


def _checkpoint_pickle(result):
    stripped = dataclasses.replace(result, processes={})
    return pickle.dumps(pickle.loads(pickle.dumps(stripped)))


@pytest.mark.parametrize(
    "path,case", _ENTRIES, ids=[path.name for path, _ in _ENTRIES]
)
@pytest.mark.parametrize("backend", _BACKENDS)
def test_corpus_case_agrees_across_backends(path, case, backend):
    reference = replay_case(case, scheduler="lockstep")
    outcome = replay_case(case, scheduler=backend)
    assert outcome.violations == reference.violations, (
        f"{path.name}: verdicts diverged under {backend}: "
        f"{list(outcome.violations)} vs {list(reference.violations)}"
    )
    assert outcome.result.decisions == reference.result.decisions, (
        f"{path.name}: decisions diverged under {backend}"
    )
    assert _checkpoint_pickle(outcome.result) == _checkpoint_pickle(
        reference.result
    ), f"{path.name}: results not pickle-identical under {backend}"


@pytest.mark.parametrize(
    "path,case", _ENTRIES, ids=[path.name for path, _ in _ENTRIES]
)
def test_corpus_case_closed_under_async_delivery(path, case):
    """Async replay traces must pass the dynamic closedness checker —
    the same cross-check CI applies with --check-closedness."""
    import repro.obs.core as _obs
    from repro.obs.events import EventLog
    from repro.obs.trace import check_closedness

    log = EventLog()
    with _obs.observing(_obs.Observer(events=log, trace=True, spans=False)):
        replay_case(case, scheduler="async:3:1")
    problems = check_closedness(log.records)
    assert problems == [], f"{path.name}: {problems}"
