"""Campaign driver: determinism across workers, clean acceptance sweep."""

import pytest

from repro.fuzz.campaign import CampaignSettings, replay_case, run_campaign
from repro.fuzz.case import FuzzCase


class TestWorkerDeterminism:
    def test_report_byte_identical_across_worker_counts(self):
        reports = [
            run_campaign(
                CampaignSettings(seed=7, cases=12, workers=workers)
            )
            for workers in (1, 2)
        ]
        assert reports[0].to_json() == reports[1].to_json()

    def test_same_seed_same_report(self):
        reports = [
            run_campaign(CampaignSettings(seed=3, cases=6)) for _ in range(2)
        ]
        assert reports[0].to_json() == reports[1].to_json()

    def test_different_seeds_change_the_campaign(self):
        first = run_campaign(CampaignSettings(seed=1, cases=6))
        second = run_campaign(CampaignSettings(seed=2, cases=6))
        assert first.to_json() != second.to_json()


class TestAcceptanceSweep:
    def test_default_protocols_clean_over_200_executions(self):
        """ISSUE acceptance: >= 200 cases over avalanche/compact-ba/eig."""
        report = run_campaign(CampaignSettings(seed=7, cases=70, workers=2))
        assert report.executions >= 200
        assert report.failures == []
        assert report.differential_failures == []
        assert report.clean

    def test_differential_and_consistency_phases_ran(self):
        report = run_campaign(CampaignSettings(seed=7, cases=12))
        # compact-ba and eig share the "ba" differential group.
        assert report.differential_checked > 0
        # eig carries the Theorem 9 full-information state oracle.
        assert report.consistency_checked.get("eig", 0) > 0


class TestReportShape:
    def test_report_records_settings(self):
        report = run_campaign(
            CampaignSettings(seed=5, cases=4, protocols=("avalanche",))
        )
        assert report.seed == 5
        assert report.cases_per_protocol == 4
        assert report.protocols == ("avalanche",)
        assert report.executions == 4
        assert "avalanche" in report.render_text()

    def test_unknown_protocol_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_campaign(
                CampaignSettings(seed=0, cases=1, protocols=("no-such",))
            )


class TestReplay:
    def test_replay_clean_case(self):
        case = FuzzCase.build(
            protocol="avalanche",
            n=4,
            t=1,
            seed=2026,
            inputs={1: 1, 2: 1, 3: 0, 4: 1},
            faulty=(3,),
        )
        outcome = replay_case(case)
        assert outcome.violations == ()
        assert not outcome.failed
        assert outcome.result.rounds >= 1

    def test_replay_is_deterministic(self):
        case = FuzzCase.build(
            protocol="compact-ba",
            n=4,
            t=1,
            seed=86,
            inputs={1: 0, 2: 1, 3: 1, 4: 0},
            faulty=(2,),
        )
        outcomes = [replay_case(case) for _ in range(2)]
        assert outcomes[0].result.decisions == outcomes[1].result.decisions
        assert outcomes[0].violations == outcomes[1].violations
