"""FuzzCase: canonicalisation, JSON round-trip, digests, corpus I/O."""

import json

import pytest

from repro.fuzz.case import CASE_SCHEMA_VERSION, FuzzCase, load_case, load_corpus
from repro.types import BOTTOM


def _case(**overrides):
    fields = dict(
        protocol="avalanche",
        n=4,
        t=1,
        seed=99,
        inputs={1: 1, 2: 0, 3: 1, 4: BOTTOM},
        faulty={3},
        rounds=4,
        mask=[(2, 3)],
        note="hand-built",
        violations=("[avalanche] something",),
    )
    fields.update(overrides)
    return FuzzCase.build(**fields)


class TestCanonicalisation:
    def test_build_normalises_collections(self):
        case = _case(inputs={2: 0, 1: 1, 4: BOTTOM, 3: 1}, faulty=[3, 3])
        assert case.inputs == ((1, 1), (2, 0), (3, 1), (4, BOTTOM))
        assert case.faulty == (3,)
        assert case.mask == ((2, 3),)

    def test_input_map(self):
        case = _case()
        assert case.input_map == {1: 1, 2: 0, 3: 1, 4: BOTTOM}

    def test_with_recanonicalises(self):
        case = _case()
        smaller = case.with_(faulty=set(), rounds=2)
        assert smaller.faulty == ()
        assert smaller.rounds == 2
        assert smaller.seed == case.seed
        assert case.faulty == (3,)  # original untouched

    def test_equality_ignores_violations(self):
        assert _case(violations=()) == _case(violations=("[x] boom",))


class TestDigest:
    def test_digest_is_stable_across_note_and_violations(self):
        base = _case()
        annotated = _case(note="different note", violations=("[y] other",))
        assert base.digest() == annotated.digest()

    def test_digest_changes_with_replay_fields(self):
        assert _case().digest() != _case(seed=100).digest()
        assert _case().digest() != _case(mask=[]).digest()
        assert _case().digest() != _case(rounds=3).digest()

    def test_filename_embeds_protocol_and_digest(self):
        case = _case()
        assert case.filename() == f"avalanche-{case.digest()}.json"


class TestJson:
    def test_round_trip_preserves_bottom(self):
        case = _case()
        clone = FuzzCase.from_json(case.to_json())
        assert clone == case
        assert clone.input_map[4] is BOTTOM
        assert clone.violations == case.violations

    def test_rejects_unknown_schema_version(self):
        payload = json.loads(_case().to_json())
        payload["schema_version"] = CASE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            FuzzCase.from_json(json.dumps(payload))

    def test_json_is_deterministic(self):
        assert _case().to_json() == _case().to_json()


class TestCorpusIO:
    def test_save_and_load_case(self, tmp_path):
        case = _case()
        path = case.save(tmp_path)
        assert path.name == case.filename()
        assert load_case(path) == case

    def test_load_corpus_sorted_by_filename(self, tmp_path):
        cases = [
            _case(seed=seed, protocol=protocol)
            for seed, protocol in ((5, "eig"), (6, "avalanche"), (7, "eig"))
        ]
        for case in cases:
            case.save(tmp_path)
        loaded = load_corpus(tmp_path)
        assert [path.name for path, _ in loaded] == sorted(
            path.name for path, _ in loaded
        )
        assert {case for _, case in loaded} == set(cases)

    def test_load_corpus_empty_dir(self, tmp_path):
        assert load_corpus(tmp_path) == []
