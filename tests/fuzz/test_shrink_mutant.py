"""End-to-end bug hunt: a weakened decision rule is caught and shrunk.

The ISSUE acceptance scenario: register a test-only avalanche mutant
whose thresholds allow a *premature round-1 decision* (decide on the
round-1 tally at only ``t + 1`` votes, far below the sound ``2t + 1``
avalanche threshold), run a seeded campaign against it, and require
that the oracles catch the violation and the shrinker reduces it to a
small replayable :class:`FuzzCase`.
"""

import pytest

from repro.fuzz.campaign import CampaignSettings, replay_case, run_campaign
from repro.fuzz.case import load_case
from repro.fuzz.protocols import (
    ProtocolSpec,
    _avalanche_rounds,
    _needs_byzantine_quorum,
    register,
    sample_avalanche_inputs,
    unregister,
)
from repro.fuzz.shrink import shrink_case

MUTANT = "avalanche-weak-mutant"


def _build_mutant(config):
    from repro.avalanche.protocol import (
        Thresholds,
        avalanche_factory,
        standard_thresholds,
    )

    good = standard_thresholds(config)
    # Sound thresholds, except: decide on the round-1 tally at t+1
    # votes.  A single equivocator can then split the round-1 tallies
    # of different correct processors and make them decide differently.
    weakened = Thresholds(
        round1_adopt=good.round1_adopt,
        later_adopt=good.later_adopt,
        decide=good.decide,
        round1_decide=config.t + 1,
    )
    return avalanche_factory(thresholds=weakened)


@pytest.fixture
def mutant_registered():
    register(ProtocolSpec(
        name=MUTANT,
        build=_build_mutant,
        sample_inputs=sample_avalanche_inputs,
        oracles=("avalanche",),
        max_rounds=lambda config: _avalanche_rounds(config) + 1,
        full_rounds=_avalanche_rounds,
        supports=_needs_byzantine_quorum,
    ))
    try:
        yield
    finally:
        unregister(MUTANT)


def test_campaign_catches_and_shrinks_the_mutant(mutant_registered, tmp_path):
    report = run_campaign(CampaignSettings(
        seed=3,
        cases=40,
        protocols=(MUTANT,),
        shrink=True,
        corpus_dir=tmp_path,
    ))

    # Caught: the weakened rule produces real agreement violations.
    assert report.failures, "the weakened decision rule went undetected"
    assert any(
        "[avalanche]" in violation
        for failure in report.failures
        for violation in failure["violations"]
    )

    # Shrunk: small enough to read (ISSUE: <= 3 rounds, <= 2 faulty).
    assert report.shrunk, "no shrunk counterexample was produced"
    for entry in report.shrunk:
        assert entry["rounds"] <= 3
        assert len(entry["faulty"]) <= 2

    # Replayable: the saved file reproduces the failure via the
    # ordinary corpus path while the mutant spec is registered.
    saved = load_case(tmp_path / report.shrunk[0]["file"])
    outcome = replay_case(saved)
    assert outcome.failed
    assert any("[avalanche]" in violation for violation in outcome.violations)


def _find_failing_case():
    """Scan seeds for one failing execution of the mutant (deterministic)."""
    from repro.fuzz.case import FuzzCase

    for seed in range(200):
        case = FuzzCase.build(
            protocol=MUTANT,
            n=4,
            t=1,
            seed=seed,
            inputs={1: 1, 2: 1, 3: 0, 4: 0},
            faulty=(4,),
        )
        outcome = replay_case(case)
        if outcome.failed:
            return case.with_(violations=outcome.violations)
    pytest.fail("no failing seed in 0..199 — mutant not being caught")


def test_shrinker_is_greedy_and_preserves_failure(mutant_registered):
    failing = _find_failing_case()
    result = shrink_case(failing)
    assert result.attempts >= 1
    assert replay_case(result.case).failed
    # Shrinking never grows the case along any axis.
    assert len(result.case.faulty) <= len(failing.faulty)
    if failing.rounds is not None and result.case.rounds is not None:
        assert result.case.rounds <= failing.rounds
    assert "shrunk from" in result.case.note


def test_clean_protocol_yields_no_failures_on_same_seed():
    """The same campaign against the *sound* thresholds stays clean."""
    report = run_campaign(CampaignSettings(
        seed=3, cases=40, protocols=("avalanche",),
    ))
    assert report.failures == []
