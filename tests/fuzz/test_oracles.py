"""Oracle unit tests over hand-built execution results.

Each oracle is exercised on a synthetic :class:`ExecutionResult` in
both directions: a compliant outcome yields no violations, and a
planted violation is reported.  The differential oracle's sound/
unsound boundary (fault-free equality, unanimous co-decision, and
*no* claim under faults with mixed inputs) is pinned explicitly.
"""

from repro.fuzz.oracles import (
    check_agreement,
    check_decided,
    check_firing_squad,
    check_validity,
    check_weak_validity,
    differential_mismatches,
    run_oracles,
)
from repro.runtime.engine import ExecutionResult
from repro.runtime.metrics import MessageMetrics
from repro.types import BOTTOM, SystemConfig


def _result(
    decisions,
    inputs=None,
    faulty=(),
    rounds=3,
    decision_rounds=None,
    n=4,
    t=1,
):
    config = SystemConfig(n=n, t=t)
    inputs = inputs if inputs is not None else {
        pid: 1 for pid in config.process_ids
    }
    correct = [pid for pid in config.process_ids if pid not in set(faulty)]
    if decision_rounds is None:
        decision_rounds = {
            pid: (1 if not (
                decisions.get(pid) is None or decisions.get(pid) is BOTTOM
            ) else None)
            for pid in correct
        }
    return ExecutionResult(
        config=config,
        inputs=inputs,
        faulty_ids=frozenset(faulty),
        rounds=rounds,
        decisions={pid: decisions.get(pid, BOTTOM) for pid in correct},
        decision_rounds=decision_rounds,
        metrics=MessageMetrics(),
        trace=None,
        processes={pid: object() for pid in correct},
    )


class TestDecided:
    def test_all_decided_clean(self):
        result = _result({1: 1, 2: 1, 3: 1}, faulty=(4,))
        assert check_decided(result) == []

    def test_undecided_processor_reported(self):
        result = _result({1: 1, 2: 1, 3: BOTTOM}, faulty=(4,))
        violations = check_decided(result)
        assert len(violations) == 1
        assert "processor 3" in violations[0]


class TestAgreement:
    def test_common_decision_clean(self):
        result = _result({1: 0, 2: 0, 3: 0}, faulty=(4,),
                         inputs={1: 0, 2: 0, 3: 1, 4: 1})
        assert check_agreement(result) == []

    def test_split_decision_reported(self):
        result = _result({1: 0, 2: 1, 3: 0}, faulty=(4,),
                         inputs={1: 0, 2: 1, 3: 0, 4: 1})
        violations = check_agreement(result)
        assert violations and "agreement violated" in violations[0]


class TestValidity:
    def test_unanimous_input_decided_clean(self):
        result = _result({1: 1, 2: 1, 3: 1}, faulty=(4,),
                         inputs={1: 1, 2: 1, 3: 1, 4: 0})
        assert check_validity(result) == []

    def test_unanimous_input_overridden_reported(self):
        result = _result({1: 0, 2: 0, 3: 0}, faulty=(4,),
                         inputs={1: 1, 2: 1, 3: 1, 4: 0})
        violations = check_validity(result)
        assert violations and "validity violated" in violations[0]


class TestWeakValidity:
    def test_binding_only_when_fault_free(self):
        under_faults = _result({1: 0, 2: 0, 3: 0}, faulty=(4,),
                               inputs={1: 1, 2: 1, 3: 1, 4: 1})
        assert check_weak_validity(under_faults) == []

    def test_fault_free_unanimity_enforced(self):
        result = _result({1: 0, 2: 0, 3: 0, 4: 0},
                         inputs={1: 1, 2: 1, 3: 1, 4: 1})
        violations = check_weak_validity(result)
        assert violations and all("weak validity" in v for v in violations)


class TestFiringSquad:
    def test_simultaneous_fire_clean(self):
        result = _result(
            {1: "FIRE", 2: "FIRE", 3: "FIRE"},
            faulty=(4,),
            inputs={1: 1, 2: 1, 3: 1, 4: 1},
            rounds=3,
            decision_rounds={1: 2, 2: 2, 3: 2},
        )
        assert check_firing_squad(result) == []

    def test_staggered_fire_reported(self):
        result = _result(
            {1: "FIRE", 2: "FIRE", 3: "FIRE"},
            faulty=(4,),
            inputs={1: 1, 2: 1, 3: 1, 4: 1},
            rounds=3,
            decision_rounds={1: 2, 2: 3, 3: 2},
        )
        violations = check_firing_squad(result)
        assert violations and "simultaneity" in violations[0]

    def test_fire_without_go_reported(self):
        result = _result(
            {1: "FIRE", 2: BOTTOM, 3: BOTTOM},
            faulty=(4,),
            inputs={1: BOTTOM, 2: BOTTOM, 3: BOTTOM, 4: BOTTOM},
            rounds=3,
            decision_rounds={1: 2, 2: None, 3: None},
        )
        violations = check_firing_squad(result)
        assert any("safety" in violation for violation in violations)

    def test_missed_deadline_reported(self):
        # All correct GOs by round 1, t=1 => deadline 2; round 5 ended.
        result = _result(
            {1: "FIRE", 2: "FIRE", 3: BOTTOM},
            faulty=(4,),
            inputs={1: 1, 2: 1, 3: 1, 4: BOTTOM},
            rounds=5,
            decision_rounds={1: 2, 2: 2, 3: None},
        )
        violations = check_firing_squad(result)
        assert any("liveness" in violation for violation in violations)


class TestRunOracles:
    def test_violations_are_name_prefixed(self):
        result = _result({1: 1, 2: 1, 3: BOTTOM}, faulty=(4,))
        violations = run_oracles(("decided",), result)
        assert violations and violations[0].startswith("[decided] ")

    def test_unknown_oracle_surfaces(self):
        result = _result({1: 1, 2: 1, 3: 1}, faulty=(4,))
        assert run_oracles(("no-such",), result) == [
            "[no-such] unknown oracle"
        ]


class TestDifferential:
    def _pair(self, reference_decisions, other_decisions, inputs, faulty=()):
        return {
            "compact-ba": _result(reference_decisions, inputs=inputs,
                                  faulty=faulty),
            "eig": _result(other_decisions, inputs=inputs, faulty=faulty),
        }

    def test_fault_free_equality_enforced(self):
        runs = self._pair(
            {1: 0, 2: 0, 3: 0, 4: 0},
            {1: 0, 2: 0, 3: 1, 4: 0},
            inputs={1: 0, 2: 0, 3: 1, 4: 0},
        )
        violations = differential_mismatches(runs)
        assert any("fault-free divergence" in v for v in violations)

    def test_unanimous_co_decision_enforced_under_faults(self):
        runs = self._pair(
            {1: 1, 2: 1, 3: 1},
            {1: 1, 2: 0, 3: 1},
            inputs={1: 1, 2: 1, 3: 1, 4: 0},
            faulty=(4,),
        )
        violations = differential_mismatches(runs)
        assert any("co-decision violated" in v for v in violations)

    def test_mixed_inputs_under_faults_make_no_claim(self):
        """The sound boundary: adaptive attacks may split the pair."""
        runs = self._pair(
            {1: 0, 2: 0, 3: 0},
            {1: 1, 2: 1, 3: 1},
            inputs={1: 0, 2: 1, 3: 0, 4: 1},
            faulty=(4,),
        )
        assert differential_mismatches(runs) == []

    def test_scenario_mismatch_is_a_campaign_bug(self):
        runs = {
            "compact-ba": _result({1: 0, 2: 0, 3: 0, 4: 0},
                                  inputs={1: 0, 2: 0, 3: 0, 4: 0}),
            "eig": _result({1: 0, 2: 0, 3: 0, 4: 0},
                           inputs={1: 0, 2: 0, 3: 0, 4: 1}),
        }
        violations = differential_mismatches(runs)
        assert any("scenario mismatch" in v for v in violations)

    def test_single_member_group_is_vacuous(self):
        runs = {"avalanche": _result({1: 1, 2: 1, 3: 1, 4: 1})}
        assert differential_mismatches(runs) == []
