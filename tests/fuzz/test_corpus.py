"""Replay the committed regression corpus.

Every file under ``tests/fuzz/corpus/`` is a seed case whose contract
is *zero oracle violations* (failing counterexamples only ever live in
the corpus while their bug does; fixing the bug re-greens the file and
it stays as a regression guard).  A corrupted or renamed file is
caught by the digest check.
"""

import pathlib

import pytest

from repro.fuzz.campaign import replay_case
from repro.fuzz.case import load_corpus

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"

_ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert len(_ENTRIES) >= 4


@pytest.mark.parametrize(
    "path,case",
    _ENTRIES,
    ids=[path.name for path, _ in _ENTRIES],
)
def test_corpus_case_replays_clean(path, case):
    outcome = replay_case(case)
    assert outcome.violations == (), (
        f"{path.name} regressed: {list(outcome.violations)}"
    )


@pytest.mark.parametrize(
    "path,case",
    _ENTRIES,
    ids=[path.name for path, _ in _ENTRIES],
)
def test_corpus_filename_matches_content(path, case):
    assert path.name == case.filename()
