"""Static/dynamic cross-validation (satellite of ISSUE 6).

protoflow certifies protocols canonical *statically*; the fuzz corpus
exercises them *dynamically* against differential oracles.  These
tests tie the two together: replaying the regression corpus must not
produce an oracle violation in any protocol whose committed
certificate passes ``is_certified_canonical`` — if it ever does,
either the oracle or the static analysis is wrong, and that
disagreement is exactly the signal worth failing loudly on.
"""

import json
import pathlib

import pytest

from repro.fuzz.campaign import replay_case
from repro.fuzz.case import load_corpus
from repro.fuzz.protocols import protocol_names
from repro.statics.flow.certificates import is_certified_canonical

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CERTIFICATES = REPO_ROOT / "tools" / "protoflow_certificates.json"

#: Which certified protocol classes one fuzz target executes.  Wrapper
#: targets list every certificate their run traverses (weak agreement
#: embeds phase king; eig runs Protocol 1 under the EIG decision rule).
SPEC_TO_CERTIFICATES = {
    "avalanche": ("repro/avalanche/protocol.py::AvalancheProcess",),
    "compact-ba": ("repro/compact/protocol.py::CompactProcess",),
    "crusader": ("repro/agreement/crusader.py::CrusaderProcess",),
    "eig": (
        "repro/fullinfo/protocol.py::FullInformationProcess",
        "repro/agreement/eig_agreement.py::ExponentialAgreementAutomaton",
    ),
    "firing-squad": ("repro/agreement/firing_squad.py::FiringSquadProcess",),
    "weak": (
        "repro/agreement/weak.py::WeakAgreementProcess",
        "repro/agreement/phase_king.py::PhaseKingProcess",
    ),
}

_ENTRIES = load_corpus(CORPUS_DIR)


@pytest.fixture(scope="module")
def certificates():
    return json.loads(CERTIFICATES.read_text(encoding="utf-8"))["protocols"]


def test_every_fuzz_target_maps_to_committed_certificates(certificates):
    assert set(SPEC_TO_CERTIFICATES) == set(protocol_names())
    for spec, keys in SPEC_TO_CERTIFICATES.items():
        for key in keys:
            assert key in certificates, f"{spec} maps to unknown {key}"


@pytest.mark.parametrize(
    "path,case",
    _ENTRIES,
    ids=[path.name for path, _ in _ENTRIES],
)
def test_no_corpus_violation_touches_a_certified_protocol(
    path, case, certificates
):
    outcome = replay_case(case)
    if not outcome.violations:
        return
    involved = SPEC_TO_CERTIFICATES[case.protocol]
    certified = [
        key for key in involved if is_certified_canonical(certificates[key])
    ]
    assert not certified, (
        f"{path.name}: oracle violations {outcome.violations} in a run "
        f"of statically certified protocol(s) {certified} — the "
        "certificate and the dynamic oracle disagree; one of them is "
        "wrong"
    )


def test_corpus_exercises_certified_canonical_protocols(certificates):
    # The cross-check above is vacuous if nothing in the corpus is
    # certified; pin that replayed targets include canonical ones.
    assert _ENTRIES, "fuzz regression corpus is empty"
    exercised = {
        key
        for _, case in _ENTRIES
        for key in SPEC_TO_CERTIFICATES[case.protocol]
    }
    assert any(
        is_certified_canonical(certificates[key]) for key in exercised
    )
