"""FuzzAdversary: seed determinism, mask semantics, payload shapes."""

import numpy as np
import pytest

from repro.adversary.base import RoundContext
from repro.fuzz.adversary import BEHAVIOURS, FuzzAdversary
from repro.runtime.engine import run_protocol
from repro.runtime.rng import derive_rng
from repro.types import SystemConfig


def _bound(config, faulty, seed, **kwargs):
    adversary = FuzzAdversary(faulty, palette=(0, 1), **kwargs)
    adversary.bind(config, derive_rng(seed, "adversary"))
    return adversary


def _context(config, round_number=1, outgoing=None):
    outgoing = outgoing if outgoing is not None else {
        1: {pid: 0 for pid in config.process_ids},
        3: {pid: 1 for pid in config.process_ids},
        4: {pid: 1 for pid in config.process_ids},
    }
    inputs = {pid: pid % 2 for pid in config.process_ids}
    return RoundContext(config, round_number, outgoing, {}, inputs)


class TestDeterminism:
    def test_same_seed_same_attack(self):
        config = SystemConfig(n=4, t=1)
        rows = []
        for _ in range(2):
            adversary = _bound(config, [2], seed=17)
            context = _context(config)
            rows.append([
                adversary.outgoing(round_number, 2, context)
                for round_number in range(1, 6)
            ])
        assert rows[0] == rows[1]

    def test_different_seeds_differ_somewhere(self):
        config = SystemConfig(n=4, t=1)
        attacks = []
        for seed in (1, 2):
            adversary = _bound(config, [2], seed=seed)
            context = _context(config)
            attacks.append([
                adversary.outgoing(round_number, 2, context)
                for round_number in range(1, 9)
            ])
        assert attacks[0] != attacks[1]

    def test_full_execution_twice_is_identical(self, tmp_path):
        from repro.avalanche.protocol import avalanche_factory

        config = SystemConfig(n=4, t=1)
        inputs = {1: 1, 2: 0, 3: 1, 4: 1}
        traces = []
        results = []
        for index in range(2):
            result = run_protocol(
                avalanche_factory(),
                config,
                inputs,
                adversary=FuzzAdversary([3], palette=(0, 1)),
                run_full_rounds=6,
                seed=23,
                record_trace=True,
            )
            results.append(result)
            path = tmp_path / f"trace-{index}.jsonl"
            result.trace.to_jsonl(path)
            traces.append(path.read_bytes())
        assert results[0].decisions == results[1].decisions
        assert results[0].decision_rounds == results[1].decision_rounds
        assert traces[0] == traces[1]


class TestMask:
    def test_masked_slot_is_silent(self):
        config = SystemConfig(n=4, t=1)
        adversary = _bound(config, [2], seed=5, mask=[(1, 2), (3, 2)])
        context = _context(config)
        assert adversary.outgoing(1, 2, context) == {}

    def test_mask_does_not_shift_other_rounds(self):
        """Masking round 1 leaves rounds 2..k drawing identically."""
        config = SystemConfig(n=4, t=1)
        plain = _bound(config, [2], seed=5)
        masked = _bound(config, [2], seed=5, mask=[(1, 2)])
        context = _context(config)
        plain_rows = [
            plain.outgoing(round_number, 2, context)
            for round_number in range(1, 6)
        ]
        masked_rows = [
            masked.outgoing(round_number, 2, context)
            for round_number in range(1, 6)
        ]
        assert masked_rows[0] == {}
        assert masked_rows[1:] == plain_rows[1:]

    def test_mask_normalised_to_frozenset(self):
        adversary = FuzzAdversary([2], mask=[(1, 2), (1, 2)])
        assert adversary.mask == frozenset({(1, 2)})


class TestBehaviours:
    def test_menu_is_stable(self):
        # The RNG indexes into this tuple; reordering it would silently
        # re-map every recorded seed to a different attack.
        assert BEHAVIOURS == (
            "silent", "omit", "equivocate", "garbage", "forge", "mimic"
        )

    def test_equivocate_splits_recipients(self):
        config = SystemConfig(n=4, t=1)
        adversary = _bound(config, [2], seed=0)
        context = _context(config)
        messages = adversary._behave_equivocate(2, 2, context)
        assert set(messages) == set(config.process_ids)
        assert all(value in (0, 1) for value in messages.values())

    def test_garbage_is_malformed(self):
        config = SystemConfig(n=4, t=1)
        adversary = _bound(config, [2], seed=0)
        context = _context(config)
        messages = adversary._behave_garbage(2, 2, context)
        assert set(messages) == set(config.process_ids)

    def test_forge_reuses_interning(self):
        """Forged copies of well-shaped arrays stay well-shaped."""
        from repro.arrays.store import shared_store
        from repro.arrays.value_array import validate_array

        config = SystemConfig(n=4, t=1)
        store = shared_store(config.n)
        template = store.intern(tuple(0 for _ in range(config.n)))
        outgoing = {
            1: {pid: template for pid in config.process_ids},
            3: {pid: template for pid in config.process_ids},
        }
        adversary = _bound(config, [2], seed=9)
        context = _context(config, round_number=2, outgoing=outgoing)
        forged = adversary._behave_forge(2, 2, context)
        for message in forged.values():
            assert validate_array(
                message, config.n, depth=1, leaf_ok=lambda leaf: leaf in (0, 1)
            )

    def test_mimic_replays_correct_row(self):
        config = SystemConfig(n=4, t=1)
        adversary = _bound(config, [2], seed=3)
        context = _context(config)
        messages = adversary._behave_mimic(1, 2, context)
        legal_rows = [
            {pid: 0 for pid in config.process_ids},
            {pid: 1 for pid in config.process_ids},
        ]
        assert messages in legal_rows


class TestCrashDowngrade:
    def test_crashed_processor_goes_silent_forever(self):
        config = SystemConfig(n=4, t=1)
        # Find a seed whose faulty processor crash-downgrades.
        for seed in range(40):
            adversary = _bound(config, [2], seed=seed)
            if adversary._crash_round:
                break
        else:
            pytest.fail("no crash downgrade in 40 seeds (probability bug?)")
        crash_round = adversary._crash_round[2]
        context = _context(config)
        for round_number in range(1, crash_round + 4):
            messages = adversary.outgoing(round_number, 2, context)
            if round_number > crash_round:
                assert messages == {}

    def test_pre_crash_rounds_mimic_one_correct_processor(self):
        config = SystemConfig(n=4, t=1)
        for seed in range(40):
            adversary = _bound(config, [2], seed=seed)
            if adversary._crash_round.get(2, 0) >= 3:
                break
        else:
            pytest.skip("no late-crashing seed in range")
        context = _context(config)
        row = adversary.outgoing(1, 2, context)
        assert row in (
            {pid: 0 for pid in config.process_ids},
            {pid: 1 for pid in config.process_ids},
        )


def test_bind_rejects_too_many_faulty():
    from repro.errors import ConfigurationError

    config = SystemConfig(n=4, t=1)
    adversary = FuzzAdversary([1, 2])
    with pytest.raises(ConfigurationError):
        adversary.bind(config, np.random.default_rng(0))
