"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestTable1:
    def test_default(self, capsys):
        code, out = run_cli(capsys, "table1")
        assert code == 0
        assert "k = 2" in out
        assert "simul" in out

    def test_custom_k(self, capsys):
        _, out = run_cli(capsys, "table1", "--k", "3", "--rounds", "10")
        assert "k = 3" in out
        assert out.count("\n") >= 12


class TestRunBA:
    @pytest.mark.parametrize(
        "adversary",
        ["none", "silent", "garbage", "equivocator", "splitter",
         "malformed", "collusion"],
    )
    def test_every_adversary_choice(self, capsys, adversary):
        code, out = run_cli(
            capsys, "run-ba", "--t", "1", "--adversary", adversary
        )
        assert code == 0
        assert "decisions:" in out
        assert "rounds:" in out

    def test_explicit_k(self, capsys):
        _, out = run_cli(capsys, "run-ba", "--t", "1", "--k", "1")
        assert "message bits:" in out

    def test_explicit_epsilon(self, capsys):
        _, out = run_cli(capsys, "run-ba", "--t", "1", "--epsilon", "0.5")
        assert "rounds: 2" in out  # k = 4 covers t + 1 = 2 in one block

    def test_custom_n(self, capsys):
        _, out = run_cli(capsys, "run-ba", "--t", "1", "--n", "5")
        assert "n = 5" in out

    def test_authenticated_variant(self, capsys):
        _, out = run_cli(
            capsys, "run-ba", "--t", "2", "--authenticated"
        )
        assert "authenticated" in out
        assert "rounds: 3" in out  # t + 1 exactly


class TestCompare:
    def test_analytic_only(self, capsys):
        _, out = run_cli(capsys, "compare", "--t", "2")
        assert "Srikanth-Toueg" in out
        assert "measured" not in out

    def test_with_measured(self, capsys):
        _, out = run_cli(capsys, "compare", "--t", "1", "--measured")
        assert "measured under equivocating faults" in out


class TestOtherCommands:
    def test_tradeoff(self, capsys):
        _, out = run_cli(capsys, "tradeoff", "--t", "3")
        assert "message_exponent" in out

    def test_crossover(self, capsys):
        _, out = run_cli(capsys, "crossover", "--max-t", "5")
        assert "Figure R1" in out

    def test_avalanche(self, capsys):
        _, out = run_cli(capsys, "avalanche", "--t", "1")
        assert "decision rounds:" in out

    def test_unknown_command_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["no-such-command"])


class TestBench:
    def test_quick_suite_writes_json(self, capsys, tmp_path):
        import json

        output = tmp_path / "bench.json"
        code, out = run_cli(
            capsys, "bench", "--quick", "--workers", "1",
            "--suite", "avalanche", "--output", str(output),
        )
        assert code == 0
        assert "repro bench" in out
        assert f"wrote {output}" in out
        report = json.loads(output.read_text())
        assert report["schema_version"] == 1
        assert report["quick"] is True
        assert report["workers"] == 1
        assert [s["name"] for s in report["suites"]] == ["avalanche"]
        suite = report["suites"][0]
        for key in ("wall_time_s", "executions", "executions_per_sec",
                    "total_bits", "max_rounds", "violations", "errors"):
            assert key in suite
        assert suite["executions"] > 0
        assert report["totals"]["executions"] == suite["executions"]

    def test_default_output_name_is_dated(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, out = run_cli(
            capsys, "bench", "--quick", "--workers", "1",
            "--suite", "avalanche",
        )
        assert code == 0
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1
        assert written[0].name in out

    def test_unknown_suite_exits_2(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "bench", "--quick", "--suite", "nonsense",
            "--output", str(tmp_path / "x.json"),
        )
        assert code == 2
        assert "unknown bench suite" in out
        assert not (tmp_path / "x.json").exists()

    def test_bad_worker_count_exits_2(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "bench", "--quick", "--workers", "0",
            "--output", str(tmp_path / "x.json"),
        )
        assert code == 2
        assert "--workers" in out

    def _quick_avalanche(self, capsys, output, *extra):
        return run_cli(
            capsys, "bench", "--quick", "--workers", "1",
            "--suite", "avalanche", "--output", str(output), *extra,
        )

    def test_compare_against_own_baseline_passes(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        code, _ = self._quick_avalanche(capsys, baseline)
        assert code == 0
        code, out = self._quick_avalanche(
            capsys, tmp_path / "check.json", "--compare", str(baseline)
        )
        assert code == 0
        assert "compare: no regressions" in out
        assert "REGRESSION" not in out

    def test_compare_flags_deterministic_drift(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        self._quick_avalanche(capsys, baseline)
        doctored = json.loads(baseline.read_text())
        doctored["suites"][0]["total_bits"] += 1
        baseline.write_text(json.dumps(doctored))
        code, out = self._quick_avalanche(
            capsys, tmp_path / "check.json", "--compare", str(baseline)
        )
        assert code == 1
        assert "REGRESSION" in out
        assert "total_bits" in out

    def test_compare_flags_config_mismatch(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        self._quick_avalanche(capsys, baseline)
        doctored = json.loads(baseline.read_text())
        doctored["workers"] = 2
        baseline.write_text(json.dumps(doctored))
        code, out = self._quick_avalanche(
            capsys, tmp_path / "check.json", "--compare", str(baseline)
        )
        assert code == 1
        assert "config mismatch" in out

    def test_compare_missing_baseline_exits_2(self, capsys, tmp_path):
        code, out = self._quick_avalanche(
            capsys, tmp_path / "check.json",
            "--compare", str(tmp_path / "no-such-baseline.json"),
        )
        assert code == 2
        assert "baseline" in out

    def test_cache_dir_records_warm_vs_cold_legs(self, capsys, tmp_path):
        import json

        output = tmp_path / "bench.json"
        code, out = run_cli(
            capsys, "bench", "--quick", "--workers", "1",
            "--suite", "fullinfo-deep", "--output", str(output),
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 0
        report = json.loads(output.read_text())
        assert report["cache_dir"] == str(tmp_path / "cache")
        persist = report["suites"][0]["details"]["persist"]
        assert persist["cold_wall_s"] > 0
        assert persist["warm_wall_s"] > 0
        assert persist["warm_counters"]["hit"] > 0
        assert "miss" not in persist["warm_counters"]
        assert (tmp_path / "cache" / "manifest.jsonl").is_file()


class TestCache:
    def _seed_cache(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        code, _ = run_cli(
            capsys, "bench", "--quick", "--workers", "1",
            "--suite", "fullinfo-deep",
            "--output", str(tmp_path / "bench.json"),
            "--cache-dir", str(cache_dir),
        )
        assert code == 0
        return cache_dir

    def test_stats(self, capsys, tmp_path):
        import json

        cache_dir = self._seed_cache(capsys, tmp_path)
        code, out = run_cli(
            capsys, "cache", "stats", "--cache-dir", str(cache_dir),
            "--format", "json",
        )
        assert code == 0
        stats = json.loads(out)
        assert stats["segments"] > 0
        assert stats["bytes"] > 0
        code, out = run_cli(
            capsys, "cache", "stats", "--cache-dir", str(cache_dir)
        )
        assert code == 0
        assert "segments:" in out

    def test_verify_clean_and_corrupt(self, capsys, tmp_path):
        cache_dir = self._seed_cache(capsys, tmp_path)
        code, out = run_cli(
            capsys, "cache", "verify", "--cache-dir", str(cache_dir)
        )
        assert code == 0
        assert "ok" in out
        segment = next(cache_dir.glob("seg-*.json"))
        segment.write_bytes(b"junk")
        from repro.arrays import persist

        persist.forget_caches()  # the handler must re-read from disk
        code, out = run_cli(
            capsys, "cache", "verify", "--cache-dir", str(cache_dir)
        )
        assert code == 1
        assert "sha-mismatch" in out

    def test_gc(self, capsys, tmp_path):
        import json

        cache_dir = self._seed_cache(capsys, tmp_path)
        code, out = run_cli(
            capsys, "cache", "gc", "--cache-dir", str(cache_dir),
            "--keep-days", "30", "--format", "json",
        )
        assert code == 0
        assert json.loads(out)["removed"] == 0

    def test_missing_cache_dir_exits_2(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code, out = run_cli(capsys, "cache", "stats")
        assert code == 2
        assert "REPRO_CACHE_DIR" in out
        code, out = run_cli(
            capsys, "cache", "stats",
            "--cache-dir", str(tmp_path / "nowhere"),
        )
        assert code == 2
        assert "does not exist" in out


class TestFuzz:
    def test_small_campaign_clean(self, capsys):
        code, out = run_cli(
            capsys, "fuzz", "--seed", "7", "--cases", "4",
            "--protocol", "avalanche",
        )
        assert code == 0
        assert "all oracles passed" in out

    def test_json_format_is_machine_readable(self, capsys):
        import json

        code, out = run_cli(
            capsys, "fuzz", "--seed", "7", "--cases", "4",
            "--protocol", "avalanche", "--format", "json",
        )
        assert code == 0
        report = json.loads(out)
        assert report["seed"] == 7
        assert report["executions"] == 4
        assert report["failures"] == []

    def test_replay_corpus_directory(self, capsys):
        import pathlib

        corpus = pathlib.Path(__file__).parent / "fuzz" / "corpus"
        code, out = run_cli(capsys, "fuzz", "--replay", str(corpus))
        assert code == 0
        assert "0 still failing" in out

    def test_replay_single_file(self, capsys):
        import pathlib

        corpus = pathlib.Path(__file__).parent / "fuzz" / "corpus"
        case_file = sorted(corpus.glob("*.json"))[0]
        code, out = run_cli(capsys, "fuzz", "--replay", str(case_file))
        assert code == 0
        assert "ok" in out

    def test_replay_missing_path_exits_2(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "fuzz", "--replay", str(tmp_path / "nope")
        )
        assert code == 2

    def test_unknown_protocol_exits_2(self, capsys):
        code, out = run_cli(
            capsys, "fuzz", "--seed", "0", "--cases", "1",
            "--protocol", "no-such-protocol",
        )
        assert code == 2
        assert "unknown fuzz protocol" in out
