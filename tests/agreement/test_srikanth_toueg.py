"""Tests for the witnessed-broadcast primitive and ST-style agreement.

The three authenticated-broadcast properties — correctness,
unforgeability, relay — are tested directly against the primitive,
then the agreement layer is swept against adversaries.
"""

import pytest

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.adversary.base import Adversary
from repro.agreement.srikanth_toueg import (
    STAgreementProcess,
    WitnessedBroadcast,
    st_agreement_factory,
    st_agreement_rounds,
    st_sizer,
)
from repro.runtime.engine import run_protocol
from repro.runtime.node import Process, broadcast as broadcast_all
from repro.types import BOTTOM, SystemConfig

from tests.conftest import assert_agreement_and_validity, byzantine_adversaries


class PrimitiveHarness(Process):
    """Runs just the broadcast primitive; processor 1 broadcasts "m"."""

    def __init__(self, process_id, config, input_value):
        super().__init__(process_id, config)
        self.primitive = WitnessedBroadcast(process_id, config)
        if process_id == 1:
            self.primitive.schedule_broadcast("m", 1)
        self.accept_rounds = {}

    def outgoing(self, round_number):
        return broadcast_all(
            self.primitive.outgoing_items(round_number), self.config
        )

    def receive(self, round_number, incoming):
        for key in self.primitive.absorb(round_number, incoming):
            self.accept_rounds[key] = round_number


def primitive_factory(process_id, config, input_value):
    return PrimitiveHarness(process_id, config, input_value)


class ForgeryAdversary(Adversary):
    """Tries to forge a broadcast on behalf of correct processor 1."""

    def outgoing(self, round_number, sender, context):
        items = frozenset(
            {
                ("init", 1, "forged", 1),
                ("echo", 1, "forged", 1),
            }
        )
        return {receiver: items for receiver in self.config.process_ids}


class TestPrimitiveCorrectness:
    def test_correct_broadcast_accepted_in_its_phase(self, config7):
        inputs = {p: 0 for p in config7.process_ids}
        result = run_protocol(
            primitive_factory, config7, inputs, run_full_rounds=2
        )
        for process in result.processes.values():
            assert process.accept_rounds == {(1, "m", 1): 2}

    def test_correct_broadcast_survives_faults(self, config7):
        inputs = {p: 0 for p in config7.process_ids}
        result = run_protocol(
            primitive_factory,
            config7,
            inputs,
            adversary=SilentAdversary([6, 7]),
            run_full_rounds=2,
        )
        for process in result.processes.values():
            assert (1, "m", 1) in process.accept_rounds


class TestPrimitiveUnforgeability:
    def test_forgery_never_accepted(self, config7):
        """Processor 1 is correct and broadcast "m"; the adversary
        pushes inits and echoes for a different payload."""
        inputs = {p: 0 for p in config7.process_ids}
        result = run_protocol(
            primitive_factory,
            config7,
            inputs,
            adversary=ForgeryAdversary([6, 7]),
            run_full_rounds=6,
        )
        for process in result.processes.values():
            assert (1, "forged", 1) not in process.accept_rounds

    def test_inits_from_wrong_sender_ignored(self, config7):
        """An init claiming broadcaster 1 but sent by 6 is discarded."""
        inputs = {p: 0 for p in config7.process_ids}

        class WrongSender(Adversary):
            def outgoing(self, round_number, sender, context):
                items = frozenset({("init", 1, "spoof", 1)})
                return {r: items for r in self.config.process_ids}

        result = run_protocol(
            primitive_factory,
            config7,
            inputs,
            adversary=WrongSender([6, 7]),
            run_full_rounds=4,
        )
        for process in result.processes.values():
            assert (1, "spoof", 1) not in process.accept_rounds


class TestPrimitiveRelay:
    def test_acceptances_within_one_round_of_each_other(self, config7):
        """Even when the faulty broadcaster feeds half the system, any
        acceptance is followed by everyone else's within a round."""

        class HalfInit(Adversary):
            def outgoing(self, round_number, sender, context):
                if round_number != 1 or sender != 6:
                    return {}
                items = frozenset(
                    {("init", 6, "half", 1), ("echo", 6, "half", 1)}
                )
                return {r: items for r in (1, 2, 3)}

        inputs = {p: 0 for p in config7.process_ids}
        result = run_protocol(
            primitive_factory,
            config7,
            inputs,
            adversary=HalfInit([6]),
            run_full_rounds=6,
        )
        accept_rounds = [
            process.accept_rounds.get((6, "half", 1))
            for process in result.processes.values()
        ]
        decided = [r for r in accept_rounds if r is not None]
        if decided:
            assert None not in accept_rounds
            assert max(decided) - min(decided) <= 1


class TestSTAgreement:
    @pytest.mark.parametrize("pattern", [0, 1])
    @pytest.mark.parametrize("faulty", [(1, 2), (4, 7)])
    def test_sweep(self, config7, pattern, faulty):
        inputs = {p: (p + pattern) % 2 for p in config7.process_ids}
        for adversary in byzantine_adversaries(list(faulty)):
            result = run_protocol(
                st_agreement_factory(),
                config7,
                inputs,
                adversary=adversary,
                max_rounds=st_agreement_rounds(config7.t) + 1,
            )
            assert_agreement_and_validity(result, inputs)

    def test_round_count(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_protocol(
            st_agreement_factory(),
            config7,
            inputs,
            max_rounds=st_agreement_rounds(config7.t) + 1,
        )
        assert result.rounds == 2 * (config7.t + 1)

    def test_polynomial_bits_growth_shape(self):
        """ST traffic grows polynomially: its t->t+1 growth factor is
        far below the exponential baseline's (at small scale constants
        can make ST cost *more* in absolute bits — the paper's claim is
        about growth, and the crossover bench covers where the curves
        meet)."""
        from repro.analysis.complexity import eig_total_bits

        measured = {}
        for t in (1, 2):
            config = SystemConfig(n=3 * t + 1, t=t)
            inputs = {p: p % 2 for p in config.process_ids}
            result = run_protocol(
                st_agreement_factory(),
                config,
                inputs,
                max_rounds=st_agreement_rounds(t) + 1,
                sizer=st_sizer(config, 2),
            )
            measured[t] = result.metrics.total_bits
        st_ratio = measured[2] / measured[1]
        eig_ratio = eig_total_bits(10, 3, 2) / eig_total_bits(7, 2, 2)
        assert st_ratio < eig_ratio / 2

    def test_multivalued(self, config7):
        inputs = {p: ["x", "y", "z"][p % 3] for p in config7.process_ids}
        result = run_protocol(
            st_agreement_factory(default="x"),
            config7,
            inputs,
            max_rounds=st_agreement_rounds(config7.t) + 1,
        )
        assert len(result.decided_values()) == 1
