"""Property-based robustness tests for the witnessed-broadcast layer.

The primitive must shrug off arbitrary garbage: random item soups from
Byzantine senders can never crash a correct processor, never forge an
acceptance for a correct non-broadcaster, and never break the relay
window.
"""

from hypothesis import given, settings, strategies as st

from repro.adversary.base import Adversary
from repro.agreement.srikanth_toueg import WitnessedBroadcast
from repro.runtime.engine import run_protocol
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, SystemConfig


def garbage_items():
    """Random, frequently malformed, wire items."""
    scalar = st.one_of(
        st.integers(-3, 9),
        st.text(max_size=3),
        st.booleans(),
        st.none(),
    )
    item = st.one_of(
        st.tuples(
            st.sampled_from(["init", "echo", "junk"]),
            st.integers(-1, 9),
            scalar,
            st.integers(-1, 4),
        ),
        st.tuples(scalar),
        scalar,
    )
    return st.frozensets(item, max_size=6)


class PrimitiveHarness(Process):
    def __init__(self, process_id, config, input_value):
        super().__init__(process_id, config)
        self.primitive = WitnessedBroadcast(process_id, config)
        if process_id == 1:
            self.primitive.schedule_broadcast("m", 1)

    def outgoing(self, round_number):
        return broadcast(
            self.primitive.outgoing_items(round_number), self.config
        )

    def receive(self, round_number, incoming):
        self.primitive.absorb(round_number, incoming)


class GarbageItemAdversary(Adversary):
    def __init__(self, faulty_ids, payloads):
        super().__init__(faulty_ids)
        self._payloads = payloads

    def outgoing(self, round_number, sender, context):
        index = (round_number + sender) % len(self._payloads)
        return {
            receiver: self._payloads[index]
            for receiver in self.config.process_ids
        }


@settings(max_examples=30, deadline=None)
@given(payloads=st.lists(garbage_items(), min_size=1, max_size=4))
def test_garbage_never_crashes_or_forges(payloads):
    config = SystemConfig(n=7, t=2)
    inputs = {p: 0 for p in config.process_ids}
    result = run_protocol(
        lambda p, c, v: PrimitiveHarness(p, c, v),
        config,
        inputs,
        adversary=GarbageItemAdversary([6, 7], payloads),
        run_full_rounds=4,
    )
    for process in result.processes.values():
        accepted = process.primitive.accepted
        # The genuine broadcast is accepted on time...
        assert (1, "m", 1) in accepted
        # ...and nothing is ever accepted on behalf of the correct
        # non-broadcasters 2..5 (unforgeability against garbage).
        for key in accepted:
            broadcaster = key[0]
            assert broadcaster in (1, 6, 7), key


@settings(max_examples=20, deadline=None)
@given(
    payloads=st.lists(garbage_items(), min_size=1, max_size=3),
    seed=st.integers(0, 3),
)
def test_relay_window_under_garbage(payloads, seed):
    """Whatever is accepted anywhere is accepted everywhere within one
    round (the relay property), even for adversary-owned instances."""
    config = SystemConfig(n=7, t=2)
    inputs = {p: 0 for p in config.process_ids}
    result = run_protocol(
        lambda p, c, v: PrimitiveHarness(p, c, v),
        config,
        inputs,
        adversary=GarbageItemAdversary([6, 7], payloads),
        run_full_rounds=5,
        seed=seed,
    )
    processes = list(result.processes.values())
    all_keys = set()
    for process in processes:
        all_keys |= set(process.primitive.accepted)
    for key in all_keys:
        rounds = [
            process.primitive.accepted.get(key) for process in processes
        ]
        decided = [r for r in rounds if r is not None and r <= 4]
        if decided:
            # anyone accepting by round 4 drags everyone in by +1
            assert all(r is not None for r in rounds)
            assert max(r for r in rounds) - min(decided) <= 1
