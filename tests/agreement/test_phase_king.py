"""Tests for Phase King and Phase Queen."""

import pytest

from repro.agreement.phase_king import (
    phase_king_factory,
    phase_king_rounds,
    phase_queen_factory,
    phase_queen_rounds,
)
from repro.errors import ConfigurationError
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

from tests.conftest import assert_agreement_and_validity, byzantine_adversaries


def run_king(config, inputs, adversary=None, seed=0):
    return run_protocol(
        phase_king_factory(),
        config,
        inputs,
        adversary=adversary,
        max_rounds=phase_king_rounds(config.t) + 1,
        seed=seed,
    )


def run_queen(config, inputs, adversary=None, seed=0):
    return run_protocol(
        phase_queen_factory(),
        config,
        inputs,
        adversary=adversary,
        max_rounds=phase_queen_rounds(config.t) + 1,
        seed=seed,
    )


class TestPhaseKing:
    @pytest.mark.parametrize("pattern", [0, 1])
    @pytest.mark.parametrize("faulty", [(1, 2), (3, 4), (6, 7)])
    def test_sweep(self, config7, pattern, faulty):
        inputs = {p: (p + pattern) % 2 for p in config7.process_ids}
        for adversary in byzantine_adversaries(list(faulty)):
            result = run_king(config7, inputs, adversary=adversary)
            assert_agreement_and_validity(result, inputs)

    def test_faulty_kings_every_phase_but_one(self, config7):
        """Faulty ids 1 and 2 are kings of phases 1 and 2; only the
        final phase has a correct king — the worst case."""
        from repro.adversary import EquivocatingAdversary

        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_king(
            config7, inputs, adversary=EquivocatingAdversary([1, 2], 0, 1)
        )
        assert_agreement_and_validity(result, inputs)

    def test_round_count(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_king(config7, inputs)
        assert result.rounds == 3 * (config7.t + 1)

    def test_requires_3t_plus_1(self):
        config = SystemConfig(n=6, t=2)
        with pytest.raises(ConfigurationError):
            run_king(config, {p: 0 for p in config.process_ids})

    def test_binary_only(self, config7):
        with pytest.raises(ConfigurationError):
            run_king(config7, {p: "x" for p in config7.process_ids})


class TestPhaseQueen:
    @pytest.mark.parametrize("pattern", [0, 1])
    @pytest.mark.parametrize("faulty", [(1, 2), (5, 9)])
    def test_sweep(self, config9, pattern, faulty):
        inputs = {p: (p + pattern) % 2 for p in config9.process_ids}
        for adversary in byzantine_adversaries(list(faulty)):
            result = run_queen(config9, inputs, adversary=adversary)
            assert_agreement_and_validity(result, inputs)

    def test_round_count(self, config9):
        inputs = {p: p % 2 for p in config9.process_ids}
        result = run_queen(config9, inputs)
        assert result.rounds == 2 * (config9.t + 1)

    def test_requires_4t_plus_1(self, config7):
        with pytest.raises(ConfigurationError):
            run_queen(config7, {p: 0 for p in config7.process_ids})

    def test_faulty_queens_first(self, config9):
        from repro.adversary import EquivocatingAdversary

        inputs = {p: p % 2 for p in config9.process_ids}
        result = run_queen(
            config9, inputs, adversary=EquivocatingAdversary([1, 2], 0, 1)
        )
        assert_agreement_and_validity(result, inputs)

    def test_persistence_of_unanimity(self, config9):
        inputs = {p: 1 for p in config9.process_ids}
        for adversary in byzantine_adversaries([1, 2]):
            result = run_queen(config9, inputs, adversary=adversary)
            assert result.decided_values() == {1}
