"""Tests for Ben-Or, Turpin–Coan, crusader, and weak agreement."""

import pytest

from repro.adversary import (
    EquivocatingAdversary,
    RandomGarbageAdversary,
    SilentAdversary,
    VoteSplitterAdversary,
)
from repro.agreement.ben_or import ben_or_factory
from repro.agreement.crusader import SENDER_FAULTY, crusader_factory
from repro.agreement.phase_king import PhaseKingProcess, phase_king_rounds
from repro.agreement.turpin_coan import turpin_coan_factory
from repro.agreement.weak import weak_agreement_factory
from repro.errors import ConfigurationError
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom

from tests.conftest import assert_agreement_and_validity


def king_binary_factory(process_id, config, bit):
    return PhaseKingProcess(process_id, config, bit)


class TestBenOr:
    def test_unanimity_decides_in_one_phase(self, config7):
        inputs = {p: 1 for p in config7.process_ids}
        result = run_protocol(
            ben_or_factory(seed=0), config7, inputs, max_rounds=10
        )
        assert result.decided_values() == {1}
        assert result.rounds == 2

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agreement_under_adversaries(self, config7, seed):
        inputs = {p: p % 2 for p in config7.process_ids}
        for adversary in (
            SilentAdversary([3, 6]),
            VoteSplitterAdversary([3, 6]),
            EquivocatingAdversary([3, 6], 0, 1),
        ):
            result = run_protocol(
                ben_or_factory(seed=seed),
                config7,
                inputs,
                adversary=adversary,
                max_rounds=600,
                seed=seed,
            )
            assert_agreement_and_validity(result, inputs)

    def test_decision_window_is_one_phase(self, config7):
        """All correct processors decide within one phase of the first."""
        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_protocol(
            ben_or_factory(seed=5),
            config7,
            inputs,
            adversary=VoteSplitterAdversary([1, 5]),
            max_rounds=600,
            seed=5,
        )
        rounds = sorted(result.decision_rounds.values())
        assert rounds[-1] - rounds[0] <= 2

    def test_binary_only(self, config7):
        with pytest.raises(ConfigurationError):
            run_protocol(
                ben_or_factory(),
                config7,
                {p: "x" for p in config7.process_ids},
                max_rounds=4,
            )


class TestTurpinCoan:
    def make(self, default="z"):
        return turpin_coan_factory(king_binary_factory, default=default)

    def run(self, config, inputs, adversary=None, seed=0):
        return run_protocol(
            self.make(),
            config,
            inputs,
            adversary=adversary,
            max_rounds=2 + phase_king_rounds(config.t) + 1,
            seed=seed,
        )

    def test_unanimity(self, config7):
        inputs = {p: "apple" for p in config7.process_ids}
        result = self.run(config7, inputs)
        assert result.decided_values() == {"apple"}

    def test_agreement_with_mixed_values(self, config7):
        inputs = {p: ["a", "b", "c"][p % 3] for p in config7.process_ids}
        for adversary in (
            RandomGarbageAdversary([2, 6], palette=["a", "b", "q"]),
            EquivocatingAdversary([2, 6], "a", "b"),
            SilentAdversary([2, 6]),
        ):
            result = self.run(config7, inputs, adversary=adversary)
            decided = result.decided_values()
            assert len(decided) == 1
            # decision is a real candidate or the default, never junk
            assert decided <= {"a", "b", "c", "z"}

    def test_unanimous_correct_beats_adversary(self, config7):
        inputs = {p: "apple" for p in config7.process_ids}
        result = self.run(
            config7,
            inputs,
            adversary=EquivocatingAdversary([3, 4], "pear", "plum"),
        )
        assert result.decided_values() == {"apple"}

    def test_two_round_overhead(self, config7):
        inputs = {p: "apple" for p in config7.process_ids}
        result = self.run(config7, inputs)
        assert result.rounds == 2 + phase_king_rounds(config7.t)


class TestCrusader:
    def test_correct_source_all_agree(self, config7):
        inputs = {p: "v" for p in config7.process_ids}
        result = run_protocol(
            crusader_factory(source=3),
            config7,
            inputs,
            adversary=SilentAdversary([6, 7]),
            max_rounds=3,
        )
        assert result.decided_values() == {"v"}
        assert result.rounds == 2

    def test_faulty_source_never_two_values(self, config7):
        inputs = {p: "v" for p in config7.process_ids}
        for adversary in (
            EquivocatingAdversary([3], "x", "y"),
            RandomGarbageAdversary([3], palette=["x", "y", "z"]),
            SilentAdversary([3]),
        ):
            result = run_protocol(
                crusader_factory(source=3),
                config7,
                inputs,
                adversary=adversary,
                max_rounds=3,
            )
            values = {
                decision
                for decision in result.decisions.values()
                if decision is not SENDER_FAULTY
            }
            assert len(values) <= 1

    def test_silent_source_detected(self, config7):
        inputs = {p: "v" for p in config7.process_ids}
        result = run_protocol(
            crusader_factory(source=3),
            config7,
            inputs,
            adversary=SilentAdversary([3]),
            max_rounds=3,
        )
        assert result.decided_values() == {SENDER_FAULTY}


class TestWeakAgreement:
    def run(self, config, inputs, adversary=None):
        return run_protocol(
            weak_agreement_factory(king_binary_factory),
            config,
            inputs,
            adversary=adversary,
            max_rounds=1 + phase_king_rounds(config.t) + 1,
        )

    def test_weak_validity_no_faults(self, config7):
        inputs = {p: 1 for p in config7.process_ids}
        result = self.run(config7, inputs)
        assert result.decided_values() == {1}

    def test_agreement_with_faults(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}
        for adversary in (
            EquivocatingAdversary([2, 5], 0, 1),
            SilentAdversary([2, 5]),
        ):
            result = self.run(config7, inputs, adversary=adversary)
            assert len(result.decided_values()) == 1

    def test_faults_may_force_default(self, config7):
        """With a fault present, unanimity may legally collapse to the
        default — weak validity imposes nothing here."""
        inputs = {p: 1 for p in config7.process_ids}
        result = self.run(config7, inputs, adversary=SilentAdversary([4]))
        assert len(result.decided_values()) == 1

    def test_binary_only(self, config7):
        with pytest.raises(ConfigurationError):
            self.run(config7, {p: "x" for p in config7.process_ids})
