"""Tests for the exponential EIG baseline."""

import pytest

from repro.agreement.eig_agreement import (
    ExponentialAgreementAutomaton,
    run_eig_agreement,
)
from repro.analysis.complexity import eig_total_bits
from repro.types import SystemConfig

from tests.conftest import assert_agreement_and_validity, byzantine_adversaries


class TestCorrectness:
    @pytest.mark.parametrize("faulty", [(1,), (2,), (4,)])
    def test_n4_sweep(self, config4, faulty):
        inputs = {p: p % 2 for p in config4.process_ids}
        for adversary in byzantine_adversaries(list(faulty)):
            result = run_eig_agreement(
                config4, inputs, [0, 1], adversary=adversary
            )
            assert_agreement_and_validity(result, inputs)

    @pytest.mark.parametrize("faulty", [(1, 2), (5, 6)])
    def test_n7_sweep(self, config7, faulty):
        inputs = {p: p % 2 for p in config7.process_ids}
        for adversary in byzantine_adversaries(list(faulty)):
            result = run_eig_agreement(
                config7, inputs, [0, 1], adversary=adversary
            )
            assert_agreement_and_validity(result, inputs)

    def test_decides_at_t_plus_one(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_eig_agreement(config7, inputs, [0, 1])
        assert result.rounds == config7.t + 1

    def test_multivalued(self, config4):
        inputs = {1: "x", 2: "y", 3: "x", 4: "z"}
        result = run_eig_agreement(config4, inputs, ["x", "y", "z"])
        assert len(result.decided_values()) == 1


class TestExponentialCost:
    def test_metered_bits_match_model(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_eig_agreement(config4, inputs, [0, 1])
        assert result.metrics.total_bits == eig_total_bits(
            config4.n, config4.t, 2
        )

    def test_bits_grow_exponentially_in_t(self):
        costs = [eig_total_bits(3 * t + 1, t, 2) for t in (1, 2, 3, 4)]
        ratios = [after / before for before, after in zip(costs, costs[1:])]
        # Exponential shape: every step multiplies cost by a large and
        # *increasing* factor (the message depth and n both grow).
        assert all(ratio > 10 for ratio in ratios)
        assert ratios[1] > ratios[0]
        assert ratios[2] > ratios[1]


class TestAutomatonForm:
    def test_declares_horizon(self, config4):
        automaton = ExponentialAgreementAutomaton(config4, [0, 1])
        assert automaton.rounds_to_decide == config4.t + 1

    def test_runs_natively(self, config4):
        from repro.core.automaton import automaton_factory
        from repro.runtime.engine import run_protocol

        automaton = ExponentialAgreementAutomaton(config4, [0, 1])
        inputs = {p: 1 for p in config4.process_ids}
        result = run_protocol(
            automaton_factory(automaton),
            config4,
            inputs,
            max_rounds=config4.t + 2,
        )
        assert result.decided_values() == {1}
