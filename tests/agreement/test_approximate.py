"""Tests for synchronous approximate agreement."""

import pytest

from repro.adversary import (
    EquivocatingAdversary,
    MalformedArrayAdversary,
    SilentAdversary,
)
from repro.agreement.approximate import (
    ApproximateAgreementAutomaton,
    approximate_factory,
    rounds_for_precision,
)
from repro.core.automaton import automaton_factory
from repro.errors import ConfigurationError
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig


FLOAT_INPUTS = {1: 0.0, 2: 10.0, 3: 5.0, 4: 2.0, 5: 8.0, 6: 1.0, 7: 9.0}


class TestRoundsForPrecision:
    def test_halving_arithmetic(self):
        assert rounds_for_precision(8.0, 1.0) == 3
        assert rounds_for_precision(10.0, 1.0) == 4

    def test_already_converged_needs_one_round(self):
        assert rounds_for_precision(0.5, 1.0) == 1

    def test_epsilon_positive(self):
        with pytest.raises(ConfigurationError):
            rounds_for_precision(1.0, 0.0)


class TestFloatProtocol:
    def test_epsilon_closeness(self, config7):
        rounds = rounds_for_precision(10.0, 0.25)
        result = run_protocol(
            approximate_factory(rounds=rounds),
            config7,
            FLOAT_INPUTS,
            max_rounds=rounds + 1,
        )
        values = list(result.decisions.values())
        assert max(values) - min(values) <= 0.25

    def test_range_validity_under_extreme_adversary(self, config7):
        rounds = rounds_for_precision(10.0, 0.5)
        result = run_protocol(
            approximate_factory(rounds=rounds),
            config7,
            FLOAT_INPUTS,
            adversary=EquivocatingAdversary([2, 5], -1e9, 1e9),
            max_rounds=rounds + 1,
        )
        correct_inputs = [
            FLOAT_INPUTS[p] for p in config7.process_ids if p not in (2, 5)
        ]
        low, high = min(correct_inputs), max(correct_inputs)
        for value in result.decisions.values():
            assert low <= value <= high

    def test_convergence_factor_at_most_half(self, config7):
        """One round at least halves the correct-value spread."""
        result = run_protocol(
            approximate_factory(rounds=1),
            config7,
            FLOAT_INPUTS,
            adversary=EquivocatingAdversary([2, 5], -100.0, 100.0),
            max_rounds=2,
        )
        correct_inputs = [
            FLOAT_INPUTS[p] for p in config7.process_ids if p not in (2, 5)
        ]
        spread_before = max(correct_inputs) - min(correct_inputs)
        values = list(result.decisions.values())
        assert max(values) - min(values) <= spread_before / 2 + 1e-9

    def test_malformed_and_silent_faults(self, config7):
        rounds = 6
        for adversary in (
            MalformedArrayAdversary([3, 4]),
            SilentAdversary([3, 4]),
        ):
            result = run_protocol(
                approximate_factory(rounds=rounds),
                config7,
                FLOAT_INPUTS,
                adversary=adversary,
                max_rounds=rounds + 1,
            )
            values = list(result.decisions.values())
            assert max(values) - min(values) < 1.0

    def test_numeric_inputs_required(self, config7):
        with pytest.raises(ConfigurationError):
            run_protocol(
                approximate_factory(rounds=2),
                config7,
                {p: "x" for p in config7.process_ids},
                max_rounds=3,
            )


class TestGridAutomaton:
    def test_native_run_converges(self, config7):
        grid = list(range(0, 65))
        automaton = ApproximateAgreementAutomaton(config7, grid, rounds=6)
        inputs = {1: 0, 2: 64, 3: 32, 4: 16, 5: 48, 6: 8, 7: 56}
        result = run_protocol(
            automaton_factory(automaton), config7, inputs, max_rounds=8
        )
        values = list(result.decisions.values())
        assert max(values) - min(values) <= 2  # epsilon + grid step

    def test_declares_horizon(self, config7):
        automaton = ApproximateAgreementAutomaton(config7, range(10), rounds=4)
        assert automaton.rounds_to_decide == 4

    def test_junk_messages_replaced_by_own_value(self, config7):
        automaton = ApproximateAgreementAutomaton(config7, range(10), rounds=2)
        messages = (5, "junk", 5, 5, 5, 5, 5)
        state = automaton.transition(1, messages)
        assert state == ("approx", 1, 5)

    def test_decision_waits_for_horizon(self, config7):
        automaton = ApproximateAgreementAutomaton(config7, range(10), rounds=3)
        early = ("approx", 2, 5)
        late = ("approx", 3, 5)
        assert automaton.decision(1, early) is BOTTOM
        assert automaton.decision(1, late) == 5
