"""Fuzz coverage for the agreement catalog (ISSUE 5, satellite S3).

Seeded campaigns over the catalog protocols — crusader, weak
agreement, firing squad — must come out clean: their oracles encode
exactly the guarantees each protocol claims (crusader's two-value
rule, weak validity's fault-free binding, the squad's simultaneity/
safety/liveness triple), and the generative adversary covers the
Byzantine envelope those claims are quantified over.
"""

import pytest

from repro.fuzz.campaign import CampaignSettings, run_campaign

CATALOG = ("crusader", "weak", "firing-squad")


@pytest.mark.parametrize("protocol", CATALOG)
def test_catalog_protocol_survives_fuzzing(protocol):
    report = run_campaign(CampaignSettings(
        seed=11, cases=30, protocols=(protocol,),
    ))
    assert report.executions == 30
    assert report.failures == [], report.render_text()


def test_catalog_campaign_clean_and_deterministic():
    reports = [
        run_campaign(CampaignSettings(seed=11, cases=20, protocols=CATALOG))
        for _ in range(2)
    ]
    assert reports[0].clean
    assert reports[0].executions == 60
    assert reports[0].to_json() == reports[1].to_json()


def test_catalog_clean_at_larger_system_size():
    report = run_campaign(CampaignSettings(
        seed=13, cases=8, protocols=CATALOG, n=7, t=2,
    ))
    assert report.clean, report.render_text()
