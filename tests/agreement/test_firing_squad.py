"""Tests for the Byzantine firing squad."""

import pytest

from repro.agreement.firing_squad import (
    FiringSquadProcess,
    fire_deadline,
    firing_squad_factory,
)
from repro.errors import ConfigurationError
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom

from tests.conftest import byzantine_adversaries


def run_squad(config, inputs, adversary=None, rounds=12, seed=0):
    return run_protocol(
        firing_squad_factory(),
        config,
        inputs,
        adversary=adversary,
        run_full_rounds=rounds,
        seed=seed,
    )


class TestSimultaneity:
    def test_all_fire_in_same_round(self, config4):
        inputs = {1: 2, 2: 4, 3: 1, 4: BOTTOM}
        result = run_squad(config4, inputs, rounds=10)
        fire_rounds = set(result.decision_rounds.values())
        assert result.decided_values() == {"FIRE"}
        assert len(fire_rounds) == 1

    @pytest.mark.parametrize("faulty", [(1,), (4,)])
    def test_simultaneity_under_adversaries(self, config4, faulty):
        inputs = {p: (p if p % 2 else BOTTOM) for p in config4.process_ids}
        for adversary in byzantine_adversaries(list(faulty)):
            result = run_squad(config4, inputs, adversary=adversary, rounds=10)
            fired = {
                r
                for p, r in result.decision_rounds.items()
                if result.decisions[p] == "FIRE"
            }
            undecided = [
                p
                for p, d in result.decisions.items()
                if is_bottom(d)
            ]
            # Either everyone fired in one common round, or (if the GO
            # pattern never forced it) nobody did.
            assert len(fired) <= 1
            if fired:
                assert not undecided


class TestSafety:
    def test_no_go_no_fire(self, config4):
        inputs = {p: BOTTOM for p in config4.process_ids}
        result = run_squad(config4, inputs, rounds=8)
        assert all(is_bottom(d) for d in result.decisions.values())

    def test_no_correct_go_no_fire_despite_adversary(self, config7):
        """Faulty processors scream GO; correct ones never received
        one — nobody may fire."""
        inputs = {p: BOTTOM for p in config7.process_ids}
        inputs[6] = 1  # the faulty processor's nominal input
        inputs[7] = 1
        for adversary in byzantine_adversaries([6, 7], values=(0, 1)):
            result = run_squad(config7, inputs, adversary=adversary, rounds=8)
            assert all(is_bottom(d) for d in result.decisions.values())


class TestLiveness:
    def test_unanimous_go_fires_by_deadline(self, config4):
        go_round = 2
        inputs = {p: go_round for p in config4.process_ids}
        result = run_squad(config4, inputs, rounds=10)
        assert result.decided_values() == {"FIRE"}
        assert max(result.decision_rounds.values()) <= fire_deadline(
            go_round, config4.t
        )

    def test_staggered_gos_fire_by_last_deadline(self, config7):
        inputs = {p: p % 3 + 1 for p in config7.process_ids}  # GO by round 3
        for adversary in byzantine_adversaries([2, 5], values=(0, 1)):
            result = run_squad(config7, inputs, adversary=adversary, rounds=12)
            assert result.decided_values() == {"FIRE"}
            assert max(result.decision_rounds.values()) <= fire_deadline(
                3, config7.t
            )


class TestHousekeeping:
    def test_live_instances_bounded(self, config4):
        inputs = {p: BOTTOM for p in config4.process_ids}
        result = run_protocol(
            firing_squad_factory(),
            config4,
            inputs,
            run_full_rounds=10,
            record_trace=True,
        )
        for round_number in result.trace.rounds:
            for snapshot in result.trace.snapshots_in_round(
                round_number
            ).values():
                assert len(snapshot["live_instances"]) <= config4.t + 1

    def test_input_validation(self, config4):
        with pytest.raises(ConfigurationError):
            FiringSquadProcess(1, config4, "go-now")
        with pytest.raises(ConfigurationError):
            FiringSquadProcess(1, config4, 0)

    def test_requires_byzantine_quorum(self):
        with pytest.raises(ConfigurationError):
            FiringSquadProcess(1, SystemConfig(n=6, t=2), 1)
