"""Tests for the lower-bound formulas and their relation to protocols."""

import pytest

from repro.agreement.lower_bounds import (
    min_processors_for_agreement,
    min_processors_for_fast_avalanche,
    min_rounds_for_agreement,
)
from repro.compact.byzantine_agreement import compact_ba_rounds
from repro.errors import ConfigurationError


class TestFormulas:
    def test_rounds(self):
        assert min_rounds_for_agreement(0) == 1
        assert min_rounds_for_agreement(3) == 4

    def test_processors(self):
        assert min_processors_for_agreement(2) == 7
        assert min_processors_for_fast_avalanche(2) == 9

    def test_negative_t_rejected(self):
        for formula in (
            min_rounds_for_agreement,
            min_processors_for_agreement,
            min_processors_for_fast_avalanche,
        ):
            with pytest.raises(ConfigurationError):
                formula(-1)


class TestProtocolsRespectBounds:
    def test_compact_rounds_never_beat_the_bound(self):
        for t in range(1, 8):
            for k in range(1, 8):
                assert compact_ba_rounds(t, k) >= min_rounds_for_agreement(t)

    def test_compact_approaches_the_bound_as_k_grows(self):
        """With k >= t + 1 the compact protocol hits exactly t + 1
        rounds — the abstract's 'factor arbitrarily close to 1'."""
        for t in range(1, 6):
            assert compact_ba_rounds(t, k=t + 1) == min_rounds_for_agreement(t)

    def test_exponential_baseline_is_optimal_in_rounds(self):
        for t in range(1, 6):
            assert t + 1 == min_rounds_for_agreement(t)
