"""Tests for early-stopping crash consensus (min(f+2, t+1) rounds)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.crash import CrashAdversary
from repro.agreement.early_stopping import (
    early_stopping_factory,
    early_stopping_rounds,
)
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig


def run_early(config, inputs, crash_rounds=None, cut=0.5, seed=0):
    factory = early_stopping_factory()
    adversary = (
        CrashAdversary(crash_rounds, factory, cut_fraction=cut)
        if crash_rounds
        else None
    )
    return run_protocol(
        factory,
        config,
        inputs,
        adversary=adversary,
        max_rounds=config.t + 2,
        seed=seed,
    )


@pytest.fixture
def big_config():
    return SystemConfig(n=7, t=5)  # crash model: any t < n works


class TestEarlyStopping:
    def test_fault_free_decides_in_two_rounds(self, big_config):
        """f = 0: decision at round 2 even though t = 5."""
        inputs = {p: p % 3 for p in big_config.process_ids}
        result = run_early(big_config, inputs)
        assert result.rounds == 2
        assert all(r == 2 for r in result.decision_rounds.values())
        assert len(result.decided_values()) == 1

    def test_one_crash_decides_by_round_three(self, big_config):
        inputs = {p: p % 3 for p in big_config.process_ids}
        result = run_early(big_config, inputs, crash_rounds={3: 1})
        assert max(result.decision_rounds.values()) <= early_stopping_rounds(
            1, big_config.t
        )
        assert len(result.decided_values()) == 1

    def test_bound_formula(self):
        assert early_stopping_rounds(0, 5) == 2
        assert early_stopping_rounds(2, 5) == 4
        assert early_stopping_rounds(5, 5) == 6
        assert early_stopping_rounds(9, 5) == 6  # capped at t + 1

    def test_rounds_adaptive_vs_static_variant(self, big_config):
        """The point of the protocol: fault-free it beats the compact
        crash variant's fixed t + 1 = 6 rounds by a factor of 3."""
        inputs = {p: p % 3 for p in big_config.process_ids}
        result = run_early(big_config, inputs)
        assert result.rounds == 2 < big_config.t + 1


class TestCorrectness:
    @pytest.mark.parametrize("cut", [0.0, 0.4, 0.8, 1.0])
    @pytest.mark.parametrize(
        "crash_rounds",
        [{2: 1}, {2: 1, 5: 2}, {1: 1, 4: 1}, {3: 2, 6: 3}],
    )
    def test_agreement_and_bound_under_crash_schedules(
        self, big_config, cut, crash_rounds
    ):
        inputs = {p: p % 3 for p in big_config.process_ids}
        result = run_early(big_config, inputs, crash_rounds, cut=cut)
        assert len(result.decided_values()) == 1
        bound = early_stopping_rounds(len(crash_rounds), big_config.t)
        assert max(result.decision_rounds.values()) <= bound

    def test_validity_on_unanimity(self, big_config):
        inputs = {p: "v" for p in big_config.process_ids}
        result = run_early(big_config, inputs, crash_rounds={1: 1, 2: 2})
        assert result.decided_values() == {"v"}

    def test_decision_is_some_input(self, big_config):
        inputs = {p: f"value-{p}" for p in big_config.process_ids}
        result = run_early(big_config, inputs, crash_rounds={4: 2})
        decided = next(iter(result.decided_values()))
        assert decided in set(inputs.values())


@settings(max_examples=40, deadline=None)
@given(
    crash_spec=st.dictionaries(
        st.integers(1, 7), st.integers(1, 5), min_size=0, max_size=4
    ),
    cut=st.sampled_from([0.0, 0.3, 0.6, 1.0]),
    pattern=st.integers(0, 3),
)
def test_early_stopping_property(crash_spec, cut, pattern):
    """Random crash schedules: agreement + the adaptive round bound."""
    config = SystemConfig(n=7, t=5)
    inputs = {p: (p * (pattern + 1)) % 4 for p in config.process_ids}
    result = run_early(config, inputs, crash_spec or None, cut=cut)
    assert len(result.decided_values()) == 1
    bound = early_stopping_rounds(len(crash_spec), config.t)
    assert max(result.decision_rounds.values()) <= bound
