"""Tests for the signature oracle and Dolev–Strong agreement."""

import pytest

from repro.adversary import SilentAdversary
from repro.adversary.base import Adversary
from repro.agreement.dolev_strong import (
    dolev_strong_factory,
    dolev_strong_rounds,
)
from repro.agreement.srikanth_toueg import st_agreement_rounds
from repro.errors import AdversaryError, ConfigurationError
from repro.runtime.crypto import Signature, SignatureOracle
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

from tests.conftest import assert_agreement_and_validity


class TestSignatureOracle:
    def test_issued_signatures_verify(self):
        oracle = SignatureOracle()
        signature = oracle.sign(3, "payload")
        assert oracle.verify(signature, 3, "payload")

    def test_wrong_signer_or_payload_fails(self):
        oracle = SignatureOracle()
        signature = oracle.sign(3, "payload")
        assert not oracle.verify(signature, 4, "payload")
        assert not oracle.verify(signature, 3, "other")

    def test_fabricated_lookalike_fails(self):
        """A Byzantine strategy building its own Signature object
        cannot pass verification — the token was never issued."""
        oracle = SignatureOracle()
        oracle.sign(3, "payload")
        forged = Signature(3, "payload")
        assert not oracle.verify(forged, 3, "payload")

    def test_non_signature_objects_fail(self):
        oracle = SignatureOracle()
        assert not oracle.verify("junk", 1, "payload")
        assert not oracle.verify(None, 1, "payload")

    def test_restricted_handle(self):
        oracle = SignatureOracle()
        handle = oracle.handle_for([6, 7])
        signature = handle.sign(6, "x")
        assert handle.verify(signature, 6, "x")
        with pytest.raises(AdversaryError):
            handle.sign(1, "x")


class EquivocatingSigner(Adversary):
    """Signs two different values as itself — the authenticated-model
    equivocation — and sends each half of the system a different one."""

    def __init__(self, faulty_ids, oracle):
        super().__init__(faulty_ids)
        self._handle = oracle.handle_for(faulty_ids)

    def outgoing(self, round_number, sender, context):
        if round_number != 1:
            return {}
        messages = {}
        for receiver in self.config.process_ids:
            value = receiver % 2
            signature = self._handle.sign(sender, ("ds", sender, value))
            messages[receiver] = (("claim", sender, value, (signature,)),)
        return messages


class ForgingAdversary(Adversary):
    """Fabricates signature objects for a *correct* processor."""

    def outgoing(self, round_number, sender, context):
        forged = Signature(1, ("ds", 1, "forged-value"))
        claim = ("claim", 1, "forged-value", (forged,))
        return {
            receiver: (claim,) for receiver in self.config.process_ids
        }


class TestDolevStrong:
    def run(self, config, inputs, oracle, adversary=None, seed=0):
        return run_protocol(
            dolev_strong_factory(oracle),
            config,
            inputs,
            adversary=adversary,
            max_rounds=dolev_strong_rounds(config.t) + 1,
            seed=seed,
        )

    def test_fault_free(self, config4):
        oracle = SignatureOracle()
        inputs = {1: 1, 2: 0, 3: 1, 4: 1}
        result = self.run(config4, inputs, oracle)
        assert result.decided_values() == {1}
        assert result.rounds == config4.t + 1

    def test_works_below_3t_plus_1(self):
        """The authenticated model's power: n = 5, t = 2 (< 3t + 1)."""
        config = SystemConfig(n=5, t=2)
        oracle = SignatureOracle()
        inputs = {p: 1 for p in config.process_ids}
        result = self.run(
            config, inputs, oracle, adversary=SilentAdversary([4, 5])
        )
        assert result.decided_values() == {1}

    def test_equivocating_signer(self, config7):
        oracle = SignatureOracle()
        inputs = {p: p % 2 for p in config7.process_ids}
        result = self.run(
            config7,
            inputs,
            oracle,
            adversary=EquivocatingSigner([3, 6], oracle),
        )
        assert_agreement_and_validity(result, inputs)

    def test_forged_signatures_rejected(self, config7):
        oracle = SignatureOracle()
        inputs = {p: 1 for p in config7.process_ids}
        result = self.run(
            config7, inputs, oracle, adversary=ForgingAdversary([2, 5])
        )
        # Unanimity must survive; the forged source-1 value must not
        # contaminate anyone's extraction for source 1.
        assert result.decided_values() == {1}
        for process in result.processes.values():
            assert ("forged-value" not in
                    {v for _, v in process.snapshot()["extracted"]})

    def test_requires_correct_majority(self):
        with pytest.raises(ConfigurationError):
            run_protocol(
                dolev_strong_factory(SignatureOracle()),
                SystemConfig(n=4, t=2),
                {p: 0 for p in range(1, 5)},
                max_rounds=4,
            )


class TestSimulationRelationship:
    def test_st_costs_twice_the_rounds(self):
        """[18]'s theorem in numbers: removing signatures doubles the
        round count of the t + 1-round authenticated protocol."""
        for t in (1, 2, 3):
            assert st_agreement_rounds(t) == 2 * dolev_strong_rounds(t)

    def test_same_decisions_on_common_scenario(self, config7):
        """Both protocols solve the same problem: identical correct
        decisions on a fault-free mixed-input run."""
        from repro.agreement.srikanth_toueg import st_agreement_factory

        inputs = {p: p % 2 for p in config7.process_ids}
        oracle = SignatureOracle()
        authenticated = run_protocol(
            dolev_strong_factory(oracle),
            config7,
            inputs,
            max_rounds=dolev_strong_rounds(config7.t) + 1,
        )
        simulated = run_protocol(
            st_agreement_factory(),
            config7,
            inputs,
            max_rounds=st_agreement_rounds(config7.t) + 1,
        )
        assert len(authenticated.decided_values()) == 1
        assert authenticated.decided_values() == simulated.decided_values()
