"""Statistical behaviour of Ben-Or: adversaries slow it, never break it.

Randomized termination is a distribution, not a bound; these tests
characterise it over fixed seed sets (fully reproducible) and verify
the qualitative claims: fault-free near-unanimity terminates in one
phase, adversarial vote-splitting stretches the tail but agreement
still holds on every single run.
"""

import statistics

import pytest

from repro.adversary import SilentAdversary, VoteSplitterAdversary
from repro.agreement.ben_or import ben_or_factory
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

from tests.conftest import assert_agreement_and_validity

SEEDS = list(range(12))


def run_ben_or(config, inputs, adversary_maker, seed):
    return run_protocol(
        ben_or_factory(seed=seed),
        config,
        inputs,
        adversary=adversary_maker(),
        max_rounds=800,
        seed=seed,
    )


class TestDistributions:
    def test_unanimous_always_one_phase(self, config7):
        inputs = {p: 1 for p in config7.process_ids}
        rounds = []
        for seed in SEEDS:
            result = run_ben_or(
                config7, inputs, lambda: VoteSplitterAdversary([3, 6]), seed
            )
            assert result.decided_values() == {1}
            rounds.append(result.rounds)
        assert max(rounds) == 2  # one two-round phase, every seed

    def test_splitter_slows_but_never_breaks(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}
        silent_rounds, splitter_rounds = [], []
        for seed in SEEDS:
            silent = run_ben_or(
                config7, inputs, lambda: SilentAdversary([3, 6]), seed
            )
            splitter = run_ben_or(
                config7, inputs, lambda: VoteSplitterAdversary([3, 6]), seed
            )
            assert_agreement_and_validity(silent, inputs)
            assert_agreement_and_validity(splitter, inputs)
            silent_rounds.append(silent.rounds)
            splitter_rounds.append(splitter.rounds)
        # The splitter actively starves quorums: its median round count
        # cannot beat the silent adversary's.
        assert statistics.median(splitter_rounds) >= statistics.median(
            silent_rounds
        )

    def test_rounds_always_even(self, config7):
        """Decisions land at phase ends (every phase = 2 rounds)."""
        inputs = {p: p % 2 for p in config7.process_ids}
        for seed in SEEDS[:6]:
            result = run_ben_or(
                config7, inputs, lambda: VoteSplitterAdversary([1, 4]), seed
            )
            assert result.rounds % 2 == 0
