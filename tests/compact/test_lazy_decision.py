"""Tests for the polynomial-space lazy decision path."""

import pytest

from repro.adversary import (
    CollusionAdversary,
    EquivocatingAdversary,
    MalformedArrayAdversary,
)
from repro.arrays.value_array import count_leaves, iter_paths, leaf_at
from repro.compact.byzantine_agreement import (
    compact_ba_rounds,
    run_compact_byzantine_agreement,
)
from repro.compact.expansion import ExpansionState
from repro.compact.lazy_decision import (
    full_state_leaf,
    lazy_compact_ba_factory,
    lazy_eig_decision,
)
from repro.compact.payload import compact_sizer, payload_is_null
from repro.errors import ProtocolViolation
from repro.fullinfo.decision import eig_byzantine_decision
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom

from tests.conftest import assert_agreement_and_validity, byzantine_adversaries


def run_exposed(config, inputs, k=2, adversary=None, seed=0):
    """One compact BA run keeping its processes for state inspection."""
    return run_compact_byzantine_agreement(
        config,
        inputs,
        value_alphabet=[0, 1],
        k=k,
        adversary=adversary,
        seed=seed,
    )


class TestFullStateLeaf:
    def test_every_leaf_matches_eager_expansion(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_exposed(
            config4, inputs, adversary=EquivocatingAdversary([3], 0, 1)
        )
        for process in result.processes.values():
            eager = process.full_state()
            depth = config4.t + 1
            for path in iter_paths(config4.n, depth):
                lazy = full_state_leaf(
                    process.expansion,
                    process.core_boundary,
                    process.core,
                    path,
                )
                assert lazy == leaf_at(eager, path), path

    def test_short_path_rejected(self, config4):
        expansion = ExpansionState(config4, [0, 1])
        core = ((0, 1, 0, 1),) * 4
        with pytest.raises(ProtocolViolation):
            full_state_leaf(expansion, 1, core, (1,))

    def test_long_path_rejected(self, config4):
        expansion = ExpansionState(config4, [0, 1])
        with pytest.raises(ProtocolViolation):
            full_state_leaf(expansion, 1, (0, 1, 0, 1), (1, 2))

    def test_missing_out_gives_bottom(self, config4):
        expansion = ExpansionState(config4, [0, 1])
        core = (1, 2, 3, 4)  # boundary-2 index array, empty OUT table
        assert is_bottom(full_state_leaf(expansion, 2, core, (1, 1)))

    def test_counter_counts_visits(self, config4):
        expansion = ExpansionState(config4, [0, 1])
        counter = [0]
        full_state_leaf(expansion, 1, (0, 1, 0, 1), (2,), _counter=counter)
        assert counter[0] > 0


class TestLazyEqualsEager:
    @pytest.mark.parametrize("strategy_index", range(6))
    def test_same_decision_under_every_adversary(self, config4, strategy_index):
        inputs = {p: p % 2 for p in config4.process_ids}
        adversary = byzantine_adversaries([2])[strategy_index]
        result = run_exposed(config4, inputs, adversary=adversary)
        for process in result.processes.values():
            eager = eig_byzantine_decision(
                process.full_state(),
                config4.n,
                config4.t,
                process.process_id,
                default=0,
                alphabet=[0, 1],
            )
            lazy = lazy_eig_decision(
                process.expansion,
                process.core_boundary,
                process.core,
                n=config4.n,
                t=config4.t,
                default=0,
                alphabet=[0, 1],
            )
            assert lazy == eager


class TestLazyFactoryEndToEnd:
    def test_agreement_and_round_count(self, config7):
        inputs = {p: p % 2 for p in config7.process_ids}
        for adversary in (
            EquivocatingAdversary([3, 6], 0, 1),
            CollusionAdversary([1, 7]),
            MalformedArrayAdversary([2, 5]),
        ):
            result = run_protocol(
                lazy_compact_ba_factory([0, 1], default=0, k=1),
                config7,
                inputs,
                adversary=adversary,
                max_rounds=compact_ba_rounds(config7.t, 1) + 1,
                sizer=compact_sizer(config7, 2),
                is_null=payload_is_null,
            )
            assert_agreement_and_validity(result, inputs)
            assert result.rounds == compact_ba_rounds(config7.t, 1)

    def test_matches_eager_factory_decisions(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        eager = run_compact_byzantine_agreement(
            config4,
            inputs,
            value_alphabet=[0, 1],
            k=2,
            adversary=EquivocatingAdversary([4], 0, 1),
            seed=3,
        )
        lazy = run_protocol(
            lazy_compact_ba_factory([0, 1], default=0, k=2),
            config4,
            inputs,
            adversary=EquivocatingAdversary([4], 0, 1),
            max_rounds=compact_ba_rounds(config4.t, 2) + 1,
            seed=3,
        )
        assert lazy.decisions == eager.decisions


class TestPolynomialWork:
    def test_lazy_touches_fraction_of_tree(self, config7):
        """The lazy rule reads only distinct-chain leaves: at n = 7,
        t = 2 that is 7*6*5 = 210 leaves out of 7^3 = 343, and node
        visits stay linear in (t + k) per leaf."""
        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_exposed(config7, inputs, k=1)
        process = result.processes[1]
        counter = [0]
        lazy_eig_decision(
            process.expansion,
            process.core_boundary,
            process.core,
            n=config7.n,
            t=config7.t,
            default=0,
            alphabet=[0, 1],
            _counter=counter,
        )
        distinct_leaves = 7 * 6 * 5
        eager_nodes = count_leaves(process.full_state())
        # Each lazy leaf costs at most depth + boundary hops.
        assert counter[0] <= distinct_leaves * (config7.t + 1 + 3)
        assert distinct_leaves < eager_nodes
