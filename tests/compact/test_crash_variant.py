"""Tests for the benign-fault compact variant (experiment E8)."""

import pytest

from repro.adversary.crash import CrashAdversary
from repro.adversary.omission import OmissionAdversary
from repro.compact.crash_variant import (
    CRASHED,
    CrashCompactProcess,
    CrashExpansion,
    crash_compact_factory,
    crash_sizer,
    flooding_decision_rule,
)
from repro.errors import ConfigurationError, ProtocolViolation
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom


ALPHABET = [0, 1, 2]


def run_crash(config, inputs, crash_rounds, k=2, cut=0.5, seed=0):
    factory = crash_compact_factory(k=k, value_alphabet=ALPHABET, t=config.t)
    adversary = CrashAdversary(crash_rounds, factory, cut_fraction=cut)
    return run_protocol(
        factory,
        config,
        inputs,
        adversary=adversary,
        max_rounds=config.t + 2,
        sizer=crash_sizer(config, len(ALPHABET)),
        seed=seed,
    )


@pytest.fixture
def inputs(config7):
    return {p: p % 3 for p in config7.process_ids}


class TestNoRoundOverhead:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_decides_in_exactly_t_plus_one_rounds(self, config7, inputs, k):
        result = run_crash(config7, inputs, {3: 1, 6: 2}, k=k)
        assert result.rounds == config7.t + 1
        assert all(
            r == config7.t + 1 for r in result.decision_rounds.values()
        )

    def test_simul_equals_round(self, config7, inputs):
        factory = crash_compact_factory(k=2, value_alphabet=ALPHABET, t=config7.t)
        result = run_protocol(
            factory,
            config7,
            inputs,
            max_rounds=config7.t + 2,
            record_trace=True,
        )
        for round_number in result.trace.rounds:
            snapshot = result.trace.snapshot(round_number, 1)
            assert snapshot["simul"] == round_number


class TestCorrectness:
    @pytest.mark.parametrize("cut", [0.0, 0.3, 0.7, 1.0])
    @pytest.mark.parametrize("crash_rounds", [(1, 1), (1, 3), (2, 2), (3, 1)])
    def test_agreement_over_crash_schedules(
        self, config7, inputs, cut, crash_rounds
    ):
        result = run_crash(
            config7,
            inputs,
            {2: crash_rounds[0], 7: crash_rounds[1]},
            cut=cut,
        )
        assert len(result.decided_values()) == 1

    def test_validity_on_unanimity(self, config7):
        inputs = {p: 2 for p in config7.process_ids}
        result = run_crash(config7, inputs, {1: 1, 4: 2})
        assert result.decided_values() == {2}

    def test_omission_model(self, config7, inputs):
        factory = crash_compact_factory(k=2, value_alphabet=ALPHABET, t=config7.t)
        for probability in (0.2, 0.5, 0.9):
            adversary = OmissionAdversary([2, 5], factory, probability)
            result = run_protocol(
                factory,
                config7,
                inputs,
                adversary=adversary,
                max_rounds=config7.t + 2,
                seed=11,
            )
            assert len(result.decided_values()) == 1

    def test_fault_free(self, config7, inputs):
        factory = crash_compact_factory(k=2, value_alphabet=ALPHABET, t=config7.t)
        result = run_protocol(
            factory, config7, inputs, max_rounds=config7.t + 2
        )
        assert len(result.decided_values()) == 1
        # Fault-free, all inputs survive flooding; min by repr of 0..2.
        assert result.decided_values() == {0}


class TestCrashExpansion:
    def test_crashed_passes_through(self, config4):
        expansion = CrashExpansion(config4, ALPHABET)
        assert expansion.expand_scalar(1, CRASHED) is CRASHED
        assert expansion.expand_scalar(3, CRASHED) is CRASHED

    def test_value_identity_at_block_one(self, config4):
        expansion = CrashExpansion(config4, ALPHABET)
        assert expansion.expand_scalar(1, 2) == 2
        assert is_bottom(expansion.expand_scalar(1, 9))

    def test_binding_lookup(self, config4):
        expansion = CrashExpansion(config4, ALPHABET)
        expansion.learn((2, 3), (0, 1, CRASHED, 2))
        assert expansion.expand_scalar(2, 3) == (0, 1, CRASHED, 2)
        assert is_bottom(expansion.expand_scalar(2, 1))

    def test_conflicting_binding_raises(self, config4):
        expansion = CrashExpansion(config4, ALPHABET)
        expansion.learn((2, 3), (0, 1, 1, 2))
        with pytest.raises(ProtocolViolation):
            expansion.learn((2, 3), (1, 1, 1, 2))

    def test_learn_reports_novelty(self, config4):
        expansion = CrashExpansion(config4, ALPHABET)
        assert expansion.learn((2, 3), (0, 0, 0, 0))
        assert not expansion.learn((2, 3), (0, 0, 0, 0))


class TestFloodingRule:
    def test_decides_canonical_min(self):
        rule = flooding_decision_rule(t=1)
        state = ((1, 2), (CRASHED, 0))
        assert rule(state, 2, 1) == 0

    def test_waits_for_horizon(self):
        rule = flooding_decision_rule(t=2)
        assert rule((0, 1), 1, 1) is BOTTOM

    def test_all_crashed_raises(self):
        rule = flooding_decision_rule(t=0)
        with pytest.raises(ProtocolViolation):
            rule((CRASHED, CRASHED), 1, 1)


class TestConstruction:
    def test_input_in_alphabet_required(self, config7):
        with pytest.raises(ConfigurationError):
            CrashCompactProcess(1, config7, 99, k=2, value_alphabet=ALPHABET)

    def test_k_positive(self, config7):
        with pytest.raises(ConfigurationError):
            CrashCompactProcess(1, config7, 0, k=0, value_alphabet=ALPHABET)
