"""Lemma 7, tested directly across processors and rounds.

    "For all b > 0 and for all correct processors p and q, if
     BLOCK(r) = b and PHASE(r) != k + 2 then phi_{b,r+1,p} is an
     extension of phi_{b,r,q}."

Expansion functions are determined by the OUT tables, so the extension
relation reduces to table containment with equal values: everything
``q`` has decided by round ``r``, ``p`` must have decided (identically)
by round ``r + 1``.  We check it over traced adversarial executions —
including the avalanche-equivocating attack built to stress exactly
this property.
"""

import pytest

from repro.adversary import (
    AvalancheEquivocator,
    CollusionAdversary,
    EquivocatingAdversary,
    SilentAdversary,
)
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.types import SystemConfig

ADVERSARIES = [
    SilentAdversary,
    lambda f: EquivocatingAdversary(f, 0, 1),
    CollusionAdversary,
    AvalancheEquivocator,
]


def collect_out_snapshots(result):
    """{round: {pid: {boundary: {subject: value}}}} from the trace."""
    tables = {}
    for round_number in result.trace.rounds:
        per_process = {}
        for process_id in result.processes:
            snapshot = result.trace.snapshot(round_number, process_id)
            if snapshot and "out" in snapshot:
                per_process[process_id] = snapshot["out"]
        if per_process:
            tables[round_number] = per_process
    return tables


def assert_extension(earlier, later, context):
    """Every (boundary, subject) in ``earlier`` appears, with the same
    value, in ``later``."""
    for boundary, table in earlier.items():
        later_table = later.get(boundary, {})
        for subject, value in table.items():
            assert subject in later_table, (context, boundary, subject)
            assert later_table[subject] == value, (context, boundary, subject)


@pytest.mark.parametrize("maker", ADVERSARIES)
@pytest.mark.parametrize("k", [1, 2])
def test_lemma7_extension_across_processors(config4, maker, k):
    inputs = {p: p % 2 for p in config4.process_ids}
    result = run_compact_byzantine_agreement(
        config4,
        inputs,
        value_alphabet=[0, 1],
        k=k,
        adversary=maker([2]),
        record_trace=True,
        expose_full_state=True,
    )
    tables = collect_out_snapshots(result)
    rounds = sorted(tables)
    schedule = result.processes[1].schedule
    for round_number in rounds:
        if round_number + 1 not in tables:
            continue
        # The paper's precondition excludes only phase(r) = k + 2,
        # where a fresh avalanche batch may deliver round-1 decisions
        # to some processors a round before others.
        if schedule.phase(round_number) == schedule.k + 2:
            continue
        for q, q_tables in tables[round_number].items():
            for p, p_tables in tables[round_number + 1].items():
                assert_extension(
                    q_tables,
                    p_tables,
                    context=(round_number, q, p),
                )


def test_lemma7_same_round_values_agree(config7):
    """A corollary used everywhere: at any single round, two correct
    processors' tables never disagree on a decided slot (they may
    differ in which slots are decided — that's the one-round lag the
    extension property spans)."""
    inputs = {p: p % 2 for p in config7.process_ids}
    result = run_compact_byzantine_agreement(
        config7,
        inputs,
        value_alphabet=[0, 1],
        k=1,
        adversary=AvalancheEquivocator([3, 6]),
        record_trace=True,
        expose_full_state=True,
    )
    for round_number, per_process in collect_out_snapshots(result).items():
        merged = {}
        for tables in per_process.values():
            for boundary, table in tables.items():
                for subject, value in table.items():
                    key = (boundary, subject)
                    assert merged.setdefault(key, value) == value, (
                        round_number,
                        key,
                    )
