"""Tests for avalanche batches and compact payloads."""

import pytest

from repro.avalanche.coding import NULL_MESSAGE, is_null_message
from repro.avalanche.protocol import standard_thresholds
from repro.compact.payload import CompactPayload, compact_sizer, payload_is_null
from repro.compact.subprotocol import AgreementBatch
from repro.types import BOTTOM, SystemConfig, is_bottom


@pytest.fixture
def config():
    return SystemConfig(n=4, t=1)


def make_batch(config, inputs=None):
    default_inputs = {q: ("v", q) for q in config.process_ids}
    return AgreementBatch(
        config,
        boundary=2,
        inputs=inputs if inputs is not None else default_inputs,
        thresholds=standard_thresholds(config),
    )


class TestAgreementBatch:
    def test_one_instance_per_subject(self, config):
        batch = make_batch(config)
        assert set(batch.instances) == set(config.process_ids)

    def test_outgoing_votes_are_inputs_initially(self, config):
        batch = make_batch(config)
        votes = batch.outgoing_votes()
        assert votes == (("v", 1), ("v", 2), ("v", 3), ("v", 4))

    def test_votes_null_compress_on_repeat(self, config):
        batch = make_batch(config)
        first = batch.outgoing_votes()
        # Step with everyone echoing the same votes: VALs stay put.
        votes_by_sender = {s: first for s in config.process_ids}
        batch.step(votes_by_sender)
        second = batch.outgoing_votes()
        assert all(is_null_message(vote) for vote in second)

    def test_consensus_decides_in_two_steps(self, config):
        inputs = {q: "core" for q in config.process_ids}
        batch = make_batch(config, inputs={q: "core-of-q" for q in config.process_ids})
        votes = batch.outgoing_votes()
        all_votes = {s: votes for s in config.process_ids}
        decided_round1 = batch.step(dict(all_votes))
        votes2 = batch.outgoing_votes()
        decided_round2 = batch.step({s: votes2 for s in config.process_ids})
        assert decided_round1 == []
        assert {subject for subject, _ in decided_round2} == set(
            config.process_ids
        )
        assert all(value == "core-of-q" for _, value in decided_round2)

    def test_null_votes_decoded_via_memory(self, config):
        batch = make_batch(config)
        votes = batch.outgoing_votes()
        batch.step({s: votes for s in config.process_ids})
        nulls = tuple(NULL_MESSAGE for _ in config.process_ids)
        decided = batch.step({s: nulls for s in config.process_ids})
        # Null votes decoded to the remembered round-1 votes: quorum
        # reached, everything decides.
        assert {subject for subject, _ in decided} == set(config.process_ids)

    def test_garbage_components_tolerated(self, config):
        batch = make_batch(config)
        decided = batch.step(
            {1: "junk", 2: 42, 3: ("short",), 4: BOTTOM}
        )
        assert decided == []

    def test_bottom_inputs_mean_no_vote(self, config):
        batch = make_batch(config, inputs={q: BOTTOM for q in config.process_ids})
        votes = batch.outgoing_votes()
        assert all(is_bottom(vote) for vote in votes)

    def test_decisions_reported_once(self, config):
        batch = make_batch(config)
        votes = batch.outgoing_votes()
        all_votes = {s: votes for s in config.process_ids}
        batch.step(dict(all_votes))
        first = batch.step(
            {s: batch.outgoing_votes() for s in config.process_ids}
        )
        later = batch.step(
            {s: batch.outgoing_votes() for s in config.process_ids}
        )
        assert first and not later
        assert batch.decided_subjects() == tuple(config.process_ids)


class TestCompactPayload:
    def test_votes_for_lookup(self):
        payload = CompactPayload(main="core", votes=((2, ("a", "b")),))
        assert payload.votes_for(2) == ("a", "b")
        assert is_bottom(payload.votes_for(3))

    def test_payload_is_null(self):
        assert payload_is_null(CompactPayload(main=BOTTOM))
        assert payload_is_null(
            CompactPayload(main=BOTTOM, votes=((2, (NULL_MESSAGE, BOTTOM)),))
        )
        assert not payload_is_null(CompactPayload(main="core"))
        assert not payload_is_null(
            CompactPayload(main=BOTTOM, votes=((2, ("vote", BOTTOM)),))
        )

    def test_non_payload_objects(self):
        assert payload_is_null(BOTTOM)
        assert payload_is_null(NULL_MESSAGE)
        assert not payload_is_null("x")


class TestCompactSizer:
    def test_main_component_charged(self, config):
        sizer = compact_sizer(config, value_alphabet_size=2)
        empty = sizer(CompactPayload(main=BOTTOM))
        with_main = sizer(CompactPayload(main=(0, 0, 0, 0)))
        assert empty == 0
        assert with_main > 0

    def test_null_votes_cost_zero(self, config):
        sizer = compact_sizer(config, value_alphabet_size=2)
        nulls = CompactPayload(
            main=BOTTOM,
            votes=((2, tuple(NULL_MESSAGE for _ in config.process_ids)),),
        )
        assert sizer(nulls) == 0

    def test_real_votes_charged(self, config):
        sizer = compact_sizer(config, value_alphabet_size=2)
        payload = CompactPayload(
            main=BOTTOM, votes=((2, ((0, 1, 0, 1), BOTTOM, BOTTOM, BOTTOM)),)
        )
        assert sizer(payload) > 0

    def test_plain_objects_measured(self, config):
        sizer = compact_sizer(config, value_alphabet_size=2)
        assert sizer(BOTTOM) == 0
        assert sizer((0, 1, 0, 1)) > 0
