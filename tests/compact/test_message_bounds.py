"""Per-round communication bounds of the compact protocol.

Section 5.6's accounting: in the non-avalanche portion each processor
broadcasts one message of size ``O(n^k log |V|)`` per round; in the
avalanche portion at most ``n`` messages of that size per round.
These tests measure every round of live executions against explicit
versions of those bounds — the property that makes the protocol
"compact" at all.
"""

import pytest

from repro.adversary import CollusionAdversary, EquivocatingAdversary
from repro.arrays.encoding import HEADER_BITS, bits_for_alphabet
from repro.compact.byzantine_agreement import (
    compact_ba_rounds,
    run_compact_byzantine_agreement,
)
from repro.types import SystemConfig


def per_message_bound(n: int, k: int, value_alphabet_size: int) -> int:
    """Explicit size bound for one CORE-sized array: a full depth-k
    array of the costlier leaf type, plus framing."""
    leaf_bits = max(
        bits_for_alphabet(value_alphabet_size), bits_for_alphabet(n)
    )
    leaves = n**k
    nodes = sum(n**level for level in range(k)) if k else 0
    return leaves * leaf_bits + nodes * HEADER_BITS


@pytest.mark.parametrize("k", [1, 2])
@pytest.mark.parametrize(
    "adversary_maker",
    [lambda f: EquivocatingAdversary(f, 0, 1), CollusionAdversary],
)
def test_per_round_bits_within_polynomial_budget(config7, k, adversary_maker):
    """Every round's total traffic stays within the Section 5.6
    budget: n^2 links x (1 main + n avalanche components) x the
    per-message bound."""
    inputs = {p: p % 2 for p in config7.process_ids}
    result = run_compact_byzantine_agreement(
        config7,
        inputs,
        value_alphabet=[0, 1],
        k=k,
        adversary=adversary_maker([2, 6]),
    )
    n = config7.n
    message_bound = per_message_bound(n, k, 2)
    round_budget = n * n * (1 + n) * message_bound
    for round_number, bits in result.metrics.bits_by_round():
        assert bits <= round_budget, (
            f"round {round_number}: {bits} bits exceeds budget "
            f"{round_budget}"
        )


def test_total_bits_scale_with_round_bound(config7):
    """Total traffic within rounds x budget — the O(t n^(k+3) log|V|)
    shape with our explicit constants."""
    inputs = {p: p % 2 for p in config7.process_ids}
    k = 1
    result = run_compact_byzantine_agreement(
        config7, inputs, value_alphabet=[0, 1], k=k,
        adversary=CollusionAdversary([1, 7]),
    )
    n = config7.n
    budget = (
        compact_ba_rounds(config7.t, k)
        * n * n * (1 + n)
        * per_message_bound(n, k, 2)
    )
    assert result.metrics.total_bits <= budget


def test_coding_keeps_settled_batches_free(config7):
    """Once every avalanche instance of a boundary has settled, its
    votes are all null: late rounds must not keep paying for old
    boundaries.  With k = 1, t = 2 the run spans three boundaries —
    the last round's bits must stay within a fresh-boundary budget
    rather than accumulating all three."""
    inputs = {p: p % 2 for p in config7.process_ids}
    result = run_compact_byzantine_agreement(
        config7, inputs, value_alphabet=[0, 1], k=1,
        adversary=EquivocatingAdversary([3, 6], 0, 1),
    )
    n = config7.n
    one_boundary_budget = n * n * (1 + n) * per_message_bound(n, 1, 2)
    last_round, last_bits = result.metrics.bits_by_round()[-1]
    assert last_bits <= one_boundary_budget
