"""Tests for the authenticated compact variant (zero overhead rounds).

The extension's claims: Byzantine agreement in exactly ``t + 1``
rounds (no `(1 + eps)` inflation) under full Byzantine behaviour, with
polynomial traffic, as long as signatures are unforgeable.  Includes a
signing adversary that equivocates *with valid signatures* — the
attack the content-addressing exists for.
"""

import pytest

from repro.adversary import SilentAdversary
from repro.adversary.base import Adversary
from repro.compact.authenticated_variant import (
    AuthCompactProcess,
    auth_compact_ba_factory,
    auth_sizer,
    digest_of,
)
from repro.errors import ConfigurationError
from repro.runtime.crypto import SignatureOracle
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig

from tests.conftest import assert_agreement_and_validity


def run_auth(config, inputs, k, oracle=None, adversary=None, seed=0,
             with_sizer=False):
    oracle = oracle or SignatureOracle()
    factory = auth_compact_ba_factory(config, [0, 1], oracle, k=k)
    return run_protocol(
        factory,
        config,
        inputs,
        adversary=adversary,
        max_rounds=config.t + 2,
        seed=seed,
        sizer=auth_sizer(config, 2) if with_sizer else None,
    )


class SigningEquivocator(Adversary):
    """Signs *two different* phase-1 COREs per block and shows each
    half of the system a different one — valid signatures throughout.
    Content addressing must keep the interpretations consistent."""

    def __init__(self, faulty_ids, oracle, k):
        super().__init__(faulty_ids)
        self._handle = oracle.handle_for(faulty_ids)
        self._k = k

    def outgoing(self, round_number, sender, context):
        phase = (round_number - 1) % self._k + 1
        block = (round_number - 1) // self._k + 1
        correct = sorted(context.correct_senders())
        if not correct:
            return {}
        messages = {}
        if phase == 1 and round_number > 1:
            # Steal two different correct processors' mains, re-sign
            # their contents as our own, split the audience.
            donors = (correct[0], correct[-1])
            for receiver in self.config.process_ids:
                donor = donors[receiver % 2]
                donor_payload = context.correct_message(donor, receiver)
                if not isinstance(donor_payload, dict):
                    continue
                main = donor_payload.get("main")
                if not (isinstance(main, tuple) and main[0] == "signed"):
                    continue
                core = main[1]
                signature = self._handle.sign(
                    sender, ("auth-core", block, digest_of(core))
                )
                messages[receiver] = {
                    "main": ("signed", core, signature),
                    "patches": donor_payload.get("patches", ()),
                }
        else:
            for receiver in self.config.process_ids:
                donor = correct[receiver % len(correct)]
                payload = context.correct_message(donor, receiver)
                if isinstance(payload, dict):
                    messages[receiver] = payload
        return messages


class ForgingEquivocator(Adversary):
    """Tries to attribute a fabricated CORE to a *correct* processor
    by shipping a certificate with a home-made 'signature'."""

    def outgoing(self, round_number, sender, context):
        n = self.config.n
        fake_core = tuple(0 for _ in range(n))
        forged = ("cert", 1, 2, fake_core, "not-a-signature")
        payload = {"main": BOTTOM, "patches": (forged,)}
        return {receiver: payload for receiver in self.config.process_ids}


class TestZeroOverheadRounds:
    @pytest.mark.parametrize("k", [1, 2])
    def test_decides_in_exactly_t_plus_one_rounds(self, config7, k):
        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_auth(
            config7, inputs, k=k, adversary=SilentAdversary([3, 6])
        )
        assert result.rounds == config7.t + 1
        assert_agreement_and_validity(result, inputs)

    def test_matches_lower_bound_unlike_nonauth_compact(self, config7):
        """t + 1 exactly — the non-cryptographic compact protocol needs
        (1 + eps)(t + 1) for any k < t + 1."""
        from repro.compact.byzantine_agreement import compact_ba_rounds

        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_auth(config7, inputs, k=1)
        assert result.rounds == config7.t + 1 < compact_ba_rounds(config7.t, 1)


class TestByzantineResilience:
    @pytest.mark.parametrize("k", [1, 2])
    def test_signing_equivocator(self, config7, k):
        oracle = SignatureOracle()
        inputs = {p: p % 2 for p in config7.process_ids}
        adversary = SigningEquivocator([3, 6], oracle, k)
        result = run_auth(
            config7, inputs, k=k, oracle=oracle, adversary=adversary
        )
        assert_agreement_and_validity(result, inputs)
        assert result.rounds == config7.t + 1

    def test_forged_certificates_rejected(self, config7):
        inputs = {p: 1 for p in config7.process_ids}
        result = run_auth(
            config7, inputs, k=2, adversary=ForgingEquivocator([2, 5])
        )
        assert result.decided_values() == {1}
        # Nobody learned the forged binding for correct processor 1.
        fake_core = tuple(0 for _ in range(config7.n))
        for process in result.processes.values():
            assert not process.expansion.has((2, 1, digest_of(fake_core)))

    def test_generic_gallery(self, config7):
        from tests.conftest import byzantine_adversaries

        inputs = {p: p % 2 for p in config7.process_ids}
        for adversary in byzantine_adversaries([2, 6]):
            result = run_auth(config7, inputs, k=1, adversary=adversary)
            assert_agreement_and_validity(result, inputs)


class TestCommunication:
    def test_polynomial_traffic(self, config7):
        """Metered bits stay within an explicit polynomial budget."""
        inputs = {p: p % 2 for p in config7.process_ids}
        result = run_auth(
            config7,
            inputs,
            k=1,
            adversary=SilentAdversary([3, 6]),
            with_sizer=True,
        )
        n, t = config7.n, config7.t
        # cores + certs: generous explicit budget, far below n^(t+1).
        budget = (t + 1) * n * n * (n * n + n) * (n * 16 + 64 + 64)
        assert 0 < result.metrics.total_bits <= budget


class TestConstruction:
    def test_requires_3t_plus_1_for_the_decision_rule(self):
        with pytest.raises(ConfigurationError):
            auth_compact_ba_factory(
                SystemConfig(n=6, t=2), [0, 1], SignatureOracle(), k=1
            )

    def test_input_validation(self, config7):
        with pytest.raises(ConfigurationError):
            AuthCompactProcess(
                1, config7, "zebra", k=1, value_alphabet=[0, 1],
                oracle=SignatureOracle(),
            )
