"""Structural and invariant tests for Protocol 3."""

import pytest

from repro.adversary import PassiveAdversary
from repro.arrays.value_array import array_depth, array_leaves, is_index_scalar
from repro.compact.payload import CompactPayload
from repro.compact.protocol import CompactProcess, compact_factory
from repro.errors import ConfigurationError
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom

from tests.conftest import byzantine_adversaries


def run_compact(config, inputs, k=2, rounds=10, adversary=None, seed=0, **kwargs):
    return run_protocol(
        compact_factory(k=k, value_alphabet=[0, 1], **kwargs),
        config,
        inputs,
        adversary=adversary,
        run_full_rounds=rounds,
        record_trace=True,
        seed=seed,
    )


class TestConstruction:
    def test_input_must_be_in_alphabet(self, config4):
        with pytest.raises(ConfigurationError):
            CompactProcess(1, config4, 7, k=2, value_alphabet=[0, 1])

    def test_fast_overhead_needs_4t_plus_1(self, config7):
        with pytest.raises(ConfigurationError):
            CompactProcess(1, config7, 0, k=2, value_alphabet=[0, 1], overhead=1)


class TestCoreShapes:
    def test_core_depth_tracks_phase(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_compact(config4, inputs, k=2, rounds=9)
        schedule = result.processes[1].schedule
        for round_number in result.trace.rounds:
            snapshot = result.trace.snapshot(round_number, 1)
            expected = min(schedule.phase(round_number), schedule.k)
            assert array_depth(snapshot["core"], config4.n) == expected

    def test_block1_core_leaves_are_values(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_compact(config4, inputs, k=2, rounds=2)
        core = result.trace.snapshot(2, 1)["core"]
        assert all(leaf in (0, 1) for leaf in array_leaves(core))

    def test_later_block_core_leaves_are_indices(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_compact(config4, inputs, k=2, rounds=6)
        core = result.trace.snapshot(6, 1)["core"]  # block 2, phase 2
        assert all(
            is_index_scalar(leaf, config4.n) for leaf in array_leaves(core)
        )

    def test_core_boundary_tracks_block(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_compact(config4, inputs, k=2, rounds=9)
        for round_number in result.trace.rounds:
            snapshot = result.trace.snapshot(round_number, 1)
            schedule = result.processes[1].schedule
            if schedule.is_progress_round(round_number):
                assert snapshot["core_boundary"] == schedule.block(round_number)


class TestMessageStructure:
    def test_no_main_component_in_rebase_and_agreement_rounds(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_compact(config4, inputs, k=2, rounds=9)
        # k=2: phase k+2 is round 4; phase 1 of block 2 is round 5.
        for round_number in (4, 5):
            for envelope in result.trace.messages_in_round(round_number):
                if envelope.sender in result.processes:
                    assert is_bottom(envelope.payload.main)

    def test_rebroadcast_round_carries_depth_k_core(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_compact(config4, inputs, k=2, rounds=3)
        for envelope in result.trace.messages_in_round(3):
            if envelope.sender in result.processes:
                assert array_depth(envelope.payload.main, config4.n) == 2

    def test_avalanche_components_present_from_agreement_round(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_compact(config4, inputs, k=2, rounds=4)
        round3 = result.trace.messages_in_round(3)[0]
        round4 = [
            e for e in result.trace.messages_in_round(4)
            if e.sender in result.processes
        ][0]
        assert round3.payload.votes == ()
        assert [boundary for boundary, _ in round4.payload.votes] == [2]


class TestSimulFidelityFaultFree:
    def test_full_state_matches_real_fullinfo_run(self, config4):
        """FULL_STATE at simulated round j == the state a real
        full-information execution reaches at round j (fault-free the
        reference execution is unique)."""
        from repro.fullinfo.protocol import full_information_factory

        inputs = {p: p % 2 for p in config4.process_ids}
        compact = run_compact(
            config4, inputs, k=2, rounds=10, expose_full_state=True
        )
        reference = run_protocol(
            full_information_factory(value_alphabet=[0, 1]),
            config4,
            inputs,
            run_full_rounds=6,
            record_trace=True,
        )
        for round_number in compact.trace.rounds:
            for process_id in config4.process_ids:
                snapshot = compact.trace.snapshot(round_number, process_id)
                if "full_state" not in snapshot:
                    continue
                simulated = snapshot["simul"]
                expected = reference.trace.snapshot(simulated, process_id)[
                    "state"
                ]
                assert snapshot["full_state"] == expected


class TestInvariantsUnderAttack:
    @pytest.mark.parametrize("k", [1, 2])
    def test_core_always_expandable(self, config4, k):
        """The paper's step-5 invariant survives every adversary.

        CompactProcess raises ProtocolViolation from its own assert if
        the invariant breaks, so a clean run is the assertion.
        """
        inputs = {p: p % 2 for p in config4.process_ids}
        for faulty in [(1,), (3,)]:
            for adversary in byzantine_adversaries(list(faulty)):
                result = run_compact(
                    config4, inputs, k=k, rounds=12, adversary=adversary
                )
                for process in result.processes.values():
                    assert not is_bottom(process.full_state())

    def test_out_agreement_across_correct_processors(self, config7):
        """All correct processors agree on every decided OUT slot."""
        inputs = {p: p % 2 for p in config7.process_ids}
        for adversary in byzantine_adversaries([2, 6]):
            result = run_compact(
                config7, inputs, k=1, rounds=12, adversary=adversary
            )
            merged = {}
            for process in result.processes.values():
                for boundary in (2, 3, 4):
                    for subject, value in process.expansion.out_table(
                        boundary
                    ).items():
                        key = (boundary, subject)
                        if key in merged:
                            assert merged[key] == value, key
                        else:
                            merged[key] = value
