"""The benign variant detects when its fault model is violated.

The crash variant's safety rests on "no equivocation".  Run it against
a *Byzantine* equivocator and its binding-consistency guard must trip
(raising :class:`ProtocolViolation`) rather than silently producing an
inconsistent simulation — fail loudly, never wrongly.
"""

import pytest

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.adversary.base import Adversary
from repro.compact.crash_variant import CrashPayload, crash_compact_factory
from repro.errors import ProtocolViolation
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

ALPHABET = [0, 1, 2]


class EquivocatingPatcher(Adversary):
    """Byzantine behaviour in benign clothing: sends *different*
    end-of-block cores (as patches) to different receivers for the
    same binding key — impossible for a genuine crash fault."""

    def outgoing(self, round_number, sender, context):
        n = self.config.n
        messages = {}
        for receiver in self.config.process_ids:
            fake_core = tuple(receiver % 3 for _ in range(n))
            messages[receiver] = CrashPayload(
                main=fake_core,
                patches=(((2, sender), fake_core),),
            )
        return messages


class TestModelGuard:
    def test_equivocating_patches_detected(self, config7):
        inputs = {p: p % 3 for p in config7.process_ids}
        factory = crash_compact_factory(
            k=1, value_alphabet=ALPHABET, t=config7.t
        )
        # Receivers compare binding copies across rounds/sources; the
        # equivocated patch for one key must eventually collide with a
        # genuine copy or another receiver's relay.
        with pytest.raises(ProtocolViolation):
            run_protocol(
                factory,
                config7,
                inputs,
                adversary=EquivocatingPatcher([6, 7]),
                max_rounds=config7.t + 2,
            )

    def test_silence_is_a_legal_benign_behaviour(self, config7):
        """Silence is valid in the crash model: no guard trips."""
        inputs = {p: p % 3 for p in config7.process_ids}
        factory = crash_compact_factory(
            k=1, value_alphabet=ALPHABET, t=config7.t
        )
        result = run_protocol(
            factory,
            config7,
            inputs,
            adversary=SilentAdversary([6, 7]),
            max_rounds=config7.t + 2,
        )
        assert len(result.decided_values()) == 1

    def test_scalar_equivocation_on_values_detected_or_survived(self, config7):
        """A plain value equivocator may or may not collide with the
        binding guard (depends on timing); the execution must either
        trip the guard or still reach agreement — never disagree
        silently."""
        inputs = {p: p % 3 for p in config7.process_ids}
        factory = crash_compact_factory(
            k=2, value_alphabet=ALPHABET, t=config7.t
        )
        try:
            result = run_protocol(
                factory,
                config7,
                inputs,
                adversary=EquivocatingAdversary([6, 7], 0, 1),
                max_rounds=config7.t + 2,
            )
        except ProtocolViolation:
            return  # loud failure: acceptable and intended
        assert len(result.decided_values()) == 1
