"""Tests for expansion functions phi_{b,r,p}."""

import pytest

from repro.compact.expansion import ExpansionState
from repro.errors import ProtocolViolation
from repro.types import BOTTOM, SystemConfig, is_bottom


@pytest.fixture
def expansion(config4):
    return ExpansionState(config4, value_alphabet=[0, 1])


class TestBlockOne:
    def test_identity_on_values(self, expansion):
        assert expansion.expand_scalar(1, 0) == 0
        assert expansion.expand_scalar(1, 1) == 1

    def test_undefined_outside_alphabet(self, expansion):
        assert is_bottom(expansion.expand_scalar(1, 7))
        assert is_bottom(expansion.expand_scalar(1, "x"))

    def test_unhashable_leaf_undefined(self, expansion):
        assert is_bottom(expansion.expand_scalar(1, [1, 2]))

    def test_identity_on_value_arrays(self, expansion):
        array = ((0, 1, 0, 1), (1, 1, 0, 0), (0, 0, 0, 0), (1, 1, 1, 1))
        assert expansion.expand(1, array) == array


class TestHigherBlocks:
    def test_index_expands_through_out_table(self, expansion):
        expansion.set_out(2, 3, (0, 1, 0, 1))
        assert expansion.expand_scalar(2, 3) == (0, 1, 0, 1)

    def test_missing_out_is_undefined(self, expansion):
        assert is_bottom(expansion.expand_scalar(2, 3))

    def test_non_index_undefined(self, expansion):
        expansion.set_out(2, 3, (0, 1, 0, 1))
        assert is_bottom(expansion.expand_scalar(2, 0))
        assert is_bottom(expansion.expand_scalar(2, 5))
        assert is_bottom(expansion.expand_scalar(2, True))

    def test_recursive_two_levels(self, expansion):
        # phi_3(q) = phi_2(OUT[3][q]); OUT[3][q] is an index array.
        expansion.set_out(2, 1, (0, 0, 0, 0))
        expansion.set_out(2, 2, (1, 1, 1, 1))
        expansion.set_out(3, 4, (1, 2, 1, 2))
        assert expansion.expand_scalar(3, 4) == (
            (0, 0, 0, 0),
            (1, 1, 1, 1),
            (0, 0, 0, 0),
            (1, 1, 1, 1),
        )

    def test_partial_nested_definition_undefined(self, expansion):
        expansion.set_out(3, 4, (1, 2, 1, 2))
        expansion.set_out(2, 1, (0, 0, 0, 0))
        # OUT[2][2] missing: the whole expansion is undefined.
        assert is_bottom(expansion.expand_scalar(3, 4))

    def test_substitutive_on_arrays(self, expansion):
        expansion.set_out(2, 1, (0, 0, 0, 0))
        expansion.set_out(2, 2, (1, 1, 1, 1))
        array = (1, 2, 1, 2)
        expanded = expansion.expand(2, array)
        assert expanded == (
            (0, 0, 0, 0),
            (1, 1, 1, 1),
            (0, 0, 0, 0),
            (1, 1, 1, 1),
        )


class TestMonotonicity:
    """Expansion functions only ever become MORE defined (Lemma 7's
    engine room): defined results are stable, undefined ones may
    flip to defined later."""

    def test_undefined_becomes_defined_after_out(self, expansion):
        array = (3, 3, 3, 3)
        assert is_bottom(expansion.expand(2, array))
        expansion.set_out(2, 3, (0, 1, 0, 1))
        assert not is_bottom(expansion.expand(2, array))

    def test_defined_results_are_stable(self, expansion):
        expansion.set_out(2, 3, (0, 1, 0, 1))
        before = expansion.expand(2, (3, 3, 3, 3))
        expansion.set_out(2, 1, (1, 1, 1, 1))  # unrelated growth
        after = expansion.expand(2, (3, 3, 3, 3))
        assert before == after

    def test_out_entries_irrevocable(self, expansion):
        expansion.set_out(2, 3, (0, 1, 0, 1))
        with pytest.raises(ProtocolViolation):
            expansion.set_out(2, 3, (1, 1, 1, 1))

    def test_idempotent_set_out_allowed(self, expansion):
        expansion.set_out(2, 3, (0, 1, 0, 1))
        expansion.set_out(2, 3, (0, 1, 0, 1))  # same value: fine


class TestBookkeeping:
    def test_has_out_and_table(self, expansion):
        assert not expansion.has_out(2, 3)
        expansion.set_out(2, 3, (0, 1, 0, 1))
        assert expansion.has_out(2, 3)
        assert expansion.out_table(2) == {3: (0, 1, 0, 1)}
        assert expansion.out_table(3) == {}

    def test_out_returns_bottom_when_missing(self, expansion):
        assert is_bottom(expansion.out(2, 1))

    def test_defined_predicate(self, expansion):
        assert expansion.defined(1, (0, 1, 0, 1))
        assert not expansion.defined(2, (1, 1, 1, 1))
