"""Property-based tests for the benign-fault compact variant.

Random crash schedules (round, cut point) and omission probabilities
must never break agreement, validity, or the exact-``t + 1``-round
guarantee — including schedules that crash a processor mid-broadcast
while it is relaying a binding it learned only one round earlier (the
case the patch-cascade induction exists for).
"""

from hypothesis import given, settings, strategies as st

from repro.adversary.crash import CrashAdversary
from repro.adversary.omission import OmissionAdversary
from repro.compact.crash_variant import crash_compact_factory
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

ALPHABET = [0, 1, 2]


@settings(max_examples=40, deadline=None)
@given(
    crash_rounds=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    faulty_pair=st.tuples(st.integers(1, 7), st.integers(1, 7)).filter(
        lambda pair: pair[0] != pair[1]
    ),
    cut=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    k=st.integers(1, 3),
    pattern=st.integers(0, 4),
)
def test_crash_schedules_property(crash_rounds, faulty_pair, cut, k, pattern):
    config = SystemConfig(n=7, t=2)
    inputs = {p: (p * (pattern + 1)) % 3 for p in config.process_ids}
    factory = crash_compact_factory(k=k, value_alphabet=ALPHABET, t=config.t)
    adversary = CrashAdversary(
        {faulty_pair[0]: crash_rounds[0], faulty_pair[1]: crash_rounds[1]},
        factory,
        cut_fraction=cut,
    )
    result = run_protocol(
        factory, config, inputs, adversary=adversary, max_rounds=config.t + 2
    )
    decisions = set(result.decisions.values())
    assert len(decisions) == 1
    assert result.rounds == config.t + 1
    correct_inputs = {inputs[p] for p in result.processes}
    if len(correct_inputs) == 1:
        assert decisions == correct_inputs


@settings(max_examples=25, deadline=None)
@given(
    probability=st.sampled_from([0.1, 0.3, 0.5, 0.7, 0.9]),
    faulty_pair=st.tuples(st.integers(1, 7), st.integers(1, 7)).filter(
        lambda pair: pair[0] != pair[1]
    ),
    seed=st.integers(0, 5),
    k=st.integers(1, 2),
)
def test_omission_schedules_property(probability, faulty_pair, seed, k):
    config = SystemConfig(n=7, t=2)
    inputs = {p: p % 3 for p in config.process_ids}
    factory = crash_compact_factory(k=k, value_alphabet=ALPHABET, t=config.t)
    adversary = OmissionAdversary(
        list(faulty_pair), factory, drop_probability=probability
    )
    result = run_protocol(
        factory,
        config,
        inputs,
        adversary=adversary,
        max_rounds=config.t + 2,
        seed=seed,
    )
    assert len(set(result.decisions.values())) == 1
    assert result.rounds == config.t + 1


@settings(max_examples=20, deadline=None)
@given(
    crash_round=st.integers(1, 3),
    cut=st.sampled_from([0.1, 0.4, 0.6, 0.9]),
    value=st.integers(0, 2),
)
def test_unanimity_survives_any_single_crash(crash_round, cut, value):
    """Validity as a property: unanimous survivors always decide their
    common value, whatever the crash timing."""
    config = SystemConfig(n=4, t=1)
    inputs = {p: value for p in config.process_ids}
    factory = crash_compact_factory(k=2, value_alphabet=ALPHABET, t=config.t)
    adversary = CrashAdversary({3: crash_round}, factory, cut_fraction=cut)
    result = run_protocol(
        factory, config, inputs, adversary=adversary, max_rounds=config.t + 2
    )
    assert set(result.decisions.values()) == {value}
