"""Structural tests for the fast variant's k + 1 block layout."""

import pytest

from repro.arrays.value_array import array_depth
from repro.compact.protocol import compact_factory
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig, is_bottom


def run_fast_traced(config, inputs, k, rounds):
    return run_protocol(
        compact_factory(k=k, value_alphabet=[0, 1], overhead=1),
        config,
        inputs,
        run_full_rounds=rounds,
        record_trace=True,
    )


@pytest.fixture
def traced(config9):
    inputs = {p: p % 2 for p in config9.process_ids}
    return run_fast_traced(config9, inputs, k=2, rounds=9)


class TestFastBlockLayout:
    def test_block_length_is_k_plus_one(self, traced):
        schedule = traced.processes[1].schedule
        assert schedule.block_length == 3

    def test_rebroadcast_at_phase_k_plus_one(self, traced):
        """k = 2: round 3 is the rebroadcast (depth-2 CORE)."""
        for envelope in traced.trace.messages_in_round(3):
            if envelope.sender in traced.processes:
                assert array_depth(envelope.payload.main, 9) == 2

    def test_no_dedicated_agreement_round(self, traced):
        """Unlike overhead 2, round 4 (phase 1 of block 2) carries the
        new batch's first votes AND performs the rebase — there is no
        votes-only round."""
        round4 = [
            e for e in traced.trace.messages_in_round(4)
            if e.sender in traced.processes
        ][0]
        assert is_bottom(round4.payload.main)  # rebase round: no main
        assert [b for b, _ in round4.payload.votes] == [2]  # votes ride along

    def test_simul_advances_at_phase_one(self, traced):
        """Phase 1 of block 2 (round 4) is a progress round: simul
        jumps from 2 to 3 even though no main component was sent."""
        snap3 = traced.trace.snapshot(3, 1)
        snap4 = traced.trace.snapshot(4, 1)
        assert snap3["simul"] == 2
        assert snap4["simul"] == 3

    def test_rebased_core_is_index_vector(self, traced):
        snap4 = traced.trace.snapshot(4, 1)
        core = snap4["core"]
        assert array_depth(core, 9) == 1
        assert all(isinstance(leaf, int) for leaf in core)

    def test_out_table_filled_at_rebase_round(self, traced):
        """Fast avalanche's round-1 decision: every correct sender's
        OUT slot is already agreed in the batch's very first round."""
        process = traced.processes[1]
        table = process.expansion.out_table(2)
        for sender in traced.processes:
            assert sender in table
