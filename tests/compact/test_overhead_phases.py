"""The simulation relation through the overhead phases.

Theorem 9's equality ``f_p(state(p, i, E')) = state(p, simul(i), E)``
quantifies over *all* actual rounds ``i``, including phases ``k + 1``
and ``k + 2`` where ``simul`` stalls — there the CORE (hence the
mapped state) must simply not change.  These tests pin that, plus the
adversary-mix coverage of heterogeneous strategy tables speaking the
compact wire format.
"""

import pytest

from repro.adversary import StrategyTable
from repro.adversary.byzantine import MalformedArrayAdversary, SilentAdversary
from repro.adversary.compact_attacks import (
    AvalancheEquivocator,
    ForgedIndexAdversary,
)
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.compact.protocol import compact_factory
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

from tests.conftest import assert_agreement_and_validity


class TestCoreFrozenDuringOverhead:
    @pytest.mark.parametrize("k", [1, 2])
    def test_core_constant_through_phases_k1_k2(self, config4, k):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_protocol(
            compact_factory(k=k, value_alphabet=[0, 1]),
            config4,
            inputs,
            adversary=MalformedArrayAdversary([3]),
            run_full_rounds=3 * (k + 2),
            record_trace=True,
        )
        schedule = result.processes[1].schedule
        for process_id in result.processes:
            previous = None
            for round_number in result.trace.rounds:
                snapshot = result.trace.snapshot(round_number, process_id)
                if not schedule.is_progress_round(round_number):
                    assert snapshot["core"] == previous["core"]
                    assert snapshot["simul"] == previous["simul"]
                previous = snapshot

    def test_simul_snapshot_matches_schedule(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        result = run_protocol(
            compact_factory(k=2, value_alphabet=[0, 1]),
            config4,
            inputs,
            run_full_rounds=9,
            record_trace=True,
        )
        schedule = result.processes[1].schedule
        for round_number in result.trace.rounds:
            snapshot = result.trace.snapshot(round_number, 1)
            assert snapshot["simul"] == schedule.simul(round_number)


class TestHeterogeneousCompactAttacks:
    def test_strategy_table_mixing_targeted_attacks(self, config7):
        """One forger and one avalanche equivocator, simultaneously."""
        inputs = {p: p % 2 for p in config7.process_ids}
        adversary = StrategyTable(
            {
                3: ForgedIndexAdversary([]),
                6: AvalancheEquivocator([]),
            }
        )
        result = run_compact_byzantine_agreement(
            config7,
            inputs,
            value_alphabet=[0, 1],
            k=2,
            adversary=adversary,
        )
        assert_agreement_and_validity(result, inputs)

    def test_strategy_table_with_silence_and_forgery(self, config7):
        inputs = {p: 1 for p in config7.process_ids}
        adversary = StrategyTable(
            {
                2: SilentAdversary([]),
                5: ForgedIndexAdversary([]),
            }
        )
        result = run_compact_byzantine_agreement(
            config7,
            inputs,
            value_alphabet=[0, 1],
            k=1,
            adversary=adversary,
        )
        assert result.decided_values() == {1}
