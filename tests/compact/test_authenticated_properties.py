"""Property-based tests for the authenticated compact variant."""

from hypothesis import given, settings, strategies as st

from repro.compact.authenticated_variant import auth_compact_ba_factory
from repro.runtime.crypto import SignatureOracle
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

from tests.conftest import byzantine_adversaries


@settings(max_examples=30, deadline=None)
@given(
    pattern=st.integers(0, 7),
    faulty=st.sets(st.integers(1, 7), min_size=1, max_size=2),
    strategy_index=st.integers(0, 5),
    k=st.integers(1, 2),
    seed=st.integers(0, 3),
)
def test_agreement_validity_and_rounds_property(
    pattern, faulty, strategy_index, k, seed
):
    config = SystemConfig(n=7, t=2)
    inputs = {p: (p * (pattern + 1)) % 2 for p in config.process_ids}
    adversary = byzantine_adversaries(sorted(faulty))[strategy_index]
    result = run_protocol(
        auth_compact_ba_factory(config, [0, 1], SignatureOracle(), k=k),
        config,
        inputs,
        adversary=adversary,
        max_rounds=config.t + 2,
        seed=seed,
    )
    decisions = set(result.decisions.values())
    assert len(decisions) == 1
    assert result.rounds == config.t + 1
    correct_inputs = {inputs[p] for p in result.processes}
    if len(correct_inputs) == 1:
        assert decisions == correct_inputs


@settings(max_examples=15, deadline=None)
@given(pattern=st.integers(0, 7))
def test_matches_nonauth_decisions_fault_free(pattern):
    """Same decision rule on the same simulated state: the
    authenticated and non-cryptographic compact protocols decide
    identically fault-free."""
    from repro.compact.byzantine_agreement import (
        run_compact_byzantine_agreement,
    )

    config = SystemConfig(n=4, t=1)
    inputs = {p: (p + pattern) % 2 for p in config.process_ids}
    plain = run_compact_byzantine_agreement(
        config, inputs, value_alphabet=[0, 1], k=2
    )
    authenticated = run_protocol(
        auth_compact_ba_factory(config, [0, 1], SignatureOracle(), k=2),
        config,
        inputs,
        max_rounds=config.t + 2,
    )
    assert authenticated.decisions == plain.decisions
