"""Corollary 10 end-to-end: agreement, validity, rounds, fidelity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compact.byzantine_agreement import (
    compact_ba_rounds,
    resolve_k,
    run_compact_byzantine_agreement,
)
from repro.core.simulation import check_fullinfo_consistency
from repro.errors import ConfigurationError
from repro.types import BOTTOM, SystemConfig

from tests.conftest import (
    assert_agreement_and_validity,
    byzantine_adversaries,
)


class TestResolveK:
    def test_exactly_one_parameter(self, config4):
        with pytest.raises(ConfigurationError):
            resolve_k(config4)
        with pytest.raises(ConfigurationError):
            resolve_k(config4, k=2, epsilon=1.0)

    def test_epsilon_derivation(self, config4):
        assert resolve_k(config4, epsilon=1.0) == 2
        assert resolve_k(config4, epsilon=0.5) == 4
        assert resolve_k(config4, epsilon=1.0, overhead=1) == 1


class TestRoundCounts:
    def test_decision_at_predicted_round(self, config4):
        inputs = {p: p % 2 for p in config4.process_ids}
        for k in (1, 2, 3):
            result = run_compact_byzantine_agreement(
                config4, inputs, value_alphabet=[0, 1], k=k
            )
            assert result.rounds == compact_ba_rounds(config4.t, k)
            assert all(
                r == result.rounds for r in result.decision_rounds.values()
            )

    def test_corollary10_round_guarantee(self):
        for t in (1, 2, 3, 4):
            for epsilon in (2.0, 1.0, 0.5, 0.25):
                k = resolve_k(SystemConfig(3 * t + 1, t), epsilon=epsilon)
                assert compact_ba_rounds(t, k) <= (1 + epsilon) * (t + 1)

    def test_fast_variant_fewer_rounds(self):
        t = 2
        k = 2
        assert compact_ba_rounds(t, k, overhead=1) < compact_ba_rounds(
            t, k, overhead=2
        )


class TestAgreementSweep:
    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("faulty", [(1,), (4,)])
    def test_n4_all_strategies(self, config4, k, faulty):
        inputs = {p: p % 2 for p in config4.process_ids}
        for adversary in byzantine_adversaries(list(faulty)):
            result = run_compact_byzantine_agreement(
                config4,
                inputs,
                value_alphabet=[0, 1],
                k=k,
                adversary=adversary,
            )
            assert_agreement_and_validity(result, inputs)

    @pytest.mark.parametrize("faulty", [(1, 2), (3, 7)])
    def test_n7_all_strategies(self, config7, faulty):
        inputs = {p: p % 2 for p in config7.process_ids}
        for adversary in byzantine_adversaries(list(faulty)):
            result = run_compact_byzantine_agreement(
                config7,
                inputs,
                value_alphabet=[0, 1],
                k=1,
                adversary=adversary,
            )
            assert_agreement_and_validity(result, inputs)

    def test_unanimity_under_attack(self, config7):
        inputs = {p: 1 for p in config7.process_ids}
        for adversary in byzantine_adversaries([2, 5]):
            result = run_compact_byzantine_agreement(
                config7,
                inputs,
                value_alphabet=[0, 1],
                k=2,
                adversary=adversary,
            )
            assert result.decided_values() == {1}

    def test_multivalued_alphabet(self, config4):
        inputs = {1: "red", 2: "green", 3: "red", 4: "blue"}
        result = run_compact_byzantine_agreement(
            config4,
            inputs,
            value_alphabet=["red", "green", "blue"],
            k=2,
        )
        assert len(result.decided_values()) == 1

    def test_fast_variant_agreement(self, config9):
        inputs = {p: p % 2 for p in config9.process_ids}
        for adversary in byzantine_adversaries([3, 8]):
            result = run_compact_byzantine_agreement(
                config9,
                inputs,
                value_alphabet=[0, 1],
                k=1,
                overhead=1,
                adversary=adversary,
            )
            assert_agreement_and_validity(result, inputs)
            assert result.rounds == compact_ba_rounds(config9.t, 1, overhead=1)


class TestMatchesExponentialBaseline:
    def test_same_decision_as_eig_fault_free(self, config4):
        """The compact protocol applies the same decision rule to a
        simulated state; fault-free, the decisions must be identical
        to the exponential protocol's."""
        from repro.agreement.eig_agreement import run_eig_agreement

        for pattern in range(3):
            inputs = {
                p: (p + pattern) % 2 for p in config4.process_ids
            }
            compact = run_compact_byzantine_agreement(
                config4, inputs, value_alphabet=[0, 1], k=2
            )
            exponential = run_eig_agreement(config4, inputs, [0, 1])
            assert compact.decisions == {
                p: exponential.decisions[p] for p in compact.decisions
            }


class TestSimulationFidelityUnderFaults:
    @pytest.mark.parametrize("strategy_index", range(6))
    def test_full_states_consistent_with_some_execution(
        self, config4, strategy_index
    ):
        """Theorem 9 checked existentially under every adversary."""
        inputs = {p: p % 2 for p in config4.process_ids}
        adversary = byzantine_adversaries([2])[strategy_index]
        result = run_compact_byzantine_agreement(
            config4,
            inputs,
            value_alphabet=[0, 1],
            k=2,
            adversary=adversary,
            record_trace=True,
            expose_full_state=True,
        )
        correct = sorted(result.processes)
        full_states = {p: [inputs[p]] for p in correct}
        progress_seen = {p: 0 for p in correct}
        for round_number in result.trace.rounds:
            for process_id in correct:
                snapshot = result.trace.snapshot(round_number, process_id)
                if (
                    snapshot
                    and "full_state" in snapshot
                    and snapshot["simul"] == progress_seen[process_id] + 1
                ):
                    full_states[process_id].append(snapshot["full_state"])
                    progress_seen[process_id] += 1
        check_fullinfo_consistency(
            full_states, correct, inputs, config4.n, value_alphabet=[0, 1]
        )


@settings(max_examples=15, deadline=None)
@given(
    pattern=st.integers(0, 7),
    faulty=st.sets(st.integers(1, 7), min_size=1, max_size=2),
    strategy_index=st.integers(0, 5),
)
def test_agreement_property(pattern, faulty, strategy_index):
    config = SystemConfig(n=7, t=2)
    inputs = {p: (p * (pattern + 1)) % 2 for p in config.process_ids}
    adversary = byzantine_adversaries(sorted(faulty))[strategy_index]
    result = run_compact_byzantine_agreement(
        config, inputs, value_alphabet=[0, 1], k=1, adversary=adversary
    )
    assert_agreement_and_validity(result, inputs)
