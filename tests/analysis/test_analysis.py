"""Tests for cost models, tradeoff tables, comparison, and rendering."""

import pytest

from repro.adversary import EquivocatingAdversary
from repro.analysis.compare import comparison_table, measured_comparison
from repro.analysis.complexity import (
    compact_bits_estimate,
    eig_total_bits,
    full_information_message_bits,
    st_bits_estimate,
)
from repro.analysis.report import format_table
from repro.analysis.tradeoff import (
    achieved_round_factor,
    epsilon_table,
    message_size_exponent,
)
from repro.errors import ConfigurationError


class TestComplexityModels:
    def test_round_one_message_is_one_value(self):
        assert full_information_message_bits(4, 1, 2) == 1

    def test_message_bits_grow_by_factor_n(self):
        small = full_information_message_bits(4, 3, 2)
        large = full_information_message_bits(4, 4, 2)
        assert large / small > 3.5

    def test_eig_total_positive_and_monotone(self):
        assert eig_total_bits(4, 1, 2) < eig_total_bits(7, 2, 2)

    def test_rounds_are_one_based(self):
        with pytest.raises(ConfigurationError):
            full_information_message_bits(4, 0, 2)

    def test_compact_estimate_polynomial_in_n(self):
        """Fixing k, the estimate grows polynomially (degree k+3)."""
        import math

        small = compact_bits_estimate(10, 3, 2, 2)
        large = compact_bits_estimate(20, 3, 2, 2)
        # Round counts match, so ratio is exactly 2 ** (k+3) = 32.
        assert large / small == pytest.approx(2**5)

    def test_compact_beats_eig_for_large_t(self):
        """The crossover: exponential loses eventually (shape claim)."""
        t = 8
        n = 3 * t + 1
        assert compact_bits_estimate(n, t, 2, 2) < eig_total_bits(n, t, 2)

    def test_st_estimate_shape(self):
        assert st_bits_estimate(7, 2, 2) < st_bits_estimate(10, 3, 2)


class TestTradeoff:
    def test_epsilon_table_rows(self):
        rows = epsilon_table([2.0, 1.0, 0.5], t=4)
        assert [row["k"] for row in rows] == [1, 2, 4]
        for row in rows:
            assert row["rounds"] <= row["guarantee"] + 1e-9
            assert row["factor"] <= 1 + row["epsilon"] + 1e-9

    def test_rounds_decrease_with_smaller_epsilon(self):
        rows = epsilon_table([2.0, 1.0, 0.5, 0.25], t=6)
        rounds = [row["rounds"] for row in rows]
        assert rounds == sorted(rounds, reverse=True)

    def test_message_exponent_increases(self):
        rows = epsilon_table([2.0, 1.0, 0.5, 0.25], t=6)
        exponents = [row["message_exponent"] for row in rows]
        assert exponents == sorted(exponents)

    def test_factor_matches_block_arithmetic(self):
        assert achieved_round_factor(2) == 2.0
        assert achieved_round_factor(4) == 1.5
        assert achieved_round_factor(2, overhead=1) == 1.5
        assert message_size_exponent(3) == 3


class TestComparison:
    def test_analytic_table_structure(self):
        rows = comparison_table(t=2)
        protocols = [row["protocol"] for row in rows]
        assert protocols[0] == "lower bound"
        assert any("EIG" in name for name in protocols)
        assert any("Srikanth" in name for name in protocols)
        assert sum("compact" in name for name in protocols) == 2

    def test_eps1_rounds_within_paper_guarantee(self):
        """eps = 1 guarantees 2t + 2 rounds (the exact count can be
        lower because the final block skips its overhead rounds);
        Srikanth-Toueg is quoted at 2t + 1."""
        rows = {row["protocol"]: row for row in comparison_table(t=3)}
        compact = rows["compact (eps=1.0, k=2)"]
        st = rows["Srikanth-Toueg (paper-quoted)"]
        assert compact["rounds"] <= 2 * 3 + 2
        assert st["rounds"] == 2 * 3 + 1

    def test_measured_comparison_runs_everything(self):
        rows = measured_comparison(
            t=1,
            adversary_maker=lambda faulty: EquivocatingAdversary(faulty, 0, 1),
        )
        assert len(rows) == 4
        for row in rows:
            assert len(row["decisions"]) == 1  # agreement everywhere
            assert row["bits"] > 0


class TestReport:
    def test_format_basic(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_column_selection_and_missing_cells(self):
        text = format_table([{"a": 1}], columns=["a", "zz"])
        assert "zz" in text

    def test_float_formatting(self):
        text = format_table([{"x": 3.14159, "y": 2.0, "z": 1234567.89}])
        assert "3.142" in text
        assert " 2" in text or "2 " in text
        assert "e+" in text  # non-integral huge floats go scientific

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
