"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.figures import ascii_chart, crossover_chart
from repro.errors import ConfigurationError


class TestAsciiChart:
    def test_basic_structure(self):
        chart = ascii_chart(
            {"a": [(1, 10), (2, 100)], "b": [(1, 20), (2, 40)]},
            title="T",
            x_label="t",
            y_label="bits",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "* a" in lines[1] and "o b" in lines[1]
        assert "log scale" in lines[2]
        assert any("*" in line for line in lines)
        assert any("o" in line for line in lines)

    def test_linear_scale(self):
        chart = ascii_chart(
            {"a": [(0, 0), (1, 5)]}, log_y=False, y_label="count"
        )
        assert "log scale" not in chart
        assert "count" in chart

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [(1, 0)]})

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": []})

    def test_single_point_does_not_divide_by_zero(self):
        chart = ascii_chart({"a": [(1, 10)]})
        assert "*" in chart

    def test_markers_cycle_over_many_series(self):
        series = {f"s{i}": [(1, 10 + i)] for i in range(9)}
        chart = ascii_chart(series)
        assert "s8" in chart

    def test_axis_extents_shown(self):
        chart = ascii_chart({"a": [(3, 10), (7, 100)]}, x_label="t")
        assert "3" in chart.splitlines()[-2]
        assert "7" in chart.splitlines()[-2]


class TestCrossoverChart:
    def test_renders_both_series(self):
        chart = crossover_chart(max_t=5)
        assert "exponential EIG" in chart
        assert "compact k=1" in chart
        assert "Figure R1" in chart

    def test_eig_tops_the_chart(self):
        """The highest plotted row belongs to the exponential series."""
        chart = crossover_chart(max_t=7)
        plot_lines = [
            line for line in chart.splitlines() if "|" in line
        ]
        top_row = next(
            line for line in plot_lines if "*" in line or "o" in line
        )
        assert "*" in top_row and "o" not in top_row
