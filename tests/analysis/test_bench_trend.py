"""``repro bench trend``: drift detection across committed baselines."""

import json
import os
import subprocess
import sys

from repro.analysis.bench import render_trend, trend_report


def bench_report(quick=True, workers=1, kernel=None, cache_dir=None,
                 suites=()):
    return {
        "schema_version": 1,
        "quick": quick,
        "workers": workers,
        "kernel": kernel,
        "cache_dir": cache_dir,
        "suites": [dict(suite) for suite in suites],
    }


def suite(name="avalanche", wall=1.0, executions=100, bits=1000,
          rounds=8, violations=0, errors=0):
    return {
        "name": name,
        "wall_time_s": wall,
        "executions_per_sec": round(executions / wall, 3),
        "executions": executions,
        "total_bits": bits,
        "max_rounds": rounds,
        "violations": violations,
        "errors": errors,
    }


def write(directory, name, report):
    (directory / name).write_text(json.dumps(report))


class TestTrendReport:
    def test_steady_wall_times_raise_no_flags(self, tmp_path):
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(suites=[suite(wall=1.0)]))
        write(tmp_path, "BENCH_2026-01-02.json",
              bench_report(suites=[suite(wall=1.1)]))
        report = trend_report(tmp_path)
        assert report["reports"] == 2
        assert report["flags"] == []

    def test_slowdown_beyond_threshold_is_flagged(self, tmp_path):
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(suites=[suite(wall=1.0)]))
        write(tmp_path, "BENCH_2026-01-02.json",
              bench_report(suites=[suite(wall=1.5)]))
        report = trend_report(tmp_path)
        assert len(report["flags"]) == 1
        assert "slower" in report["flags"][0]

    def test_speedup_is_flagged_too(self, tmp_path):
        """Unexplained speedups drift the same as slowdowns."""
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(suites=[suite(wall=1.5)]))
        write(tmp_path, "BENCH_2026-01-02.json",
              bench_report(suites=[suite(wall=1.0)]))
        report = trend_report(tmp_path)
        assert len(report["flags"]) == 1
        assert "faster" in report["flags"][0]

    def test_sub_floor_drift_is_timer_noise(self, tmp_path):
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(suites=[suite(wall=0.010)]))
        write(tmp_path, "BENCH_2026-01-02.json",
              bench_report(suites=[suite(wall=0.020)]))
        assert trend_report(tmp_path)["flags"] == []

    def test_deterministic_counter_drift_always_flags(self, tmp_path):
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(suites=[suite(bits=1000)]))
        write(tmp_path, "BENCH_2026-01-02.json",
              bench_report(suites=[suite(bits=1008)]))
        report = trend_report(tmp_path)
        assert len(report["flags"]) == 1
        assert "total_bits drifted from 1000 to 1008" in report["flags"][0]

    def test_different_configs_never_compare(self, tmp_path):
        """Kernel is part of the comparability key."""
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(kernel=None, suites=[suite(wall=1.0)]))
        write(tmp_path, "BENCH_2026-01-02.json",
              bench_report(kernel="flat", suites=[suite(wall=9.0)]))
        report = trend_report(tmp_path)
        assert report["flags"] == []
        configs = [group["config"] for group in report["groups"]]
        assert configs == ["quick/w1/flat/nocache", "quick/w1/python/nocache"]

    def test_unreadable_files_are_reported_not_fatal(self, tmp_path):
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(suites=[suite()]))
        (tmp_path / "BENCH_garbage.json").write_text("{not json")
        (tmp_path / "BENCH_shape.json").write_text('{"no": "suites"}')
        report = trend_report(tmp_path)
        assert report["reports"] == 1
        assert len(report["unreadable"]) == 2

    def test_committed_baselines_tabulate(self):
        """The repo's own BENCH_*.json files parse into the trend."""
        report = trend_report()
        assert report["reports"] >= 1
        rendered = render_trend(report)
        assert "flag" in rendered


class TestTrendCli:
    def _run(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", "bench", "trend", *argv],
            env=env, capture_output=True, text=True,
        )

    def test_exit_zero_when_no_drift(self, tmp_path):
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(suites=[suite(wall=1.0)]))
        result = self._run("--dir", str(tmp_path))
        assert result.returncode == 0
        assert "no drifts flagged" in result.stdout

    def test_exit_one_when_drift_flagged(self, tmp_path):
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(suites=[suite(wall=1.0)]))
        write(tmp_path, "BENCH_2026-01-02.json",
              bench_report(suites=[suite(wall=2.0)]))
        result = self._run("--dir", str(tmp_path))
        assert result.returncode == 1
        assert "slower" in result.stdout

    def test_json_format(self, tmp_path):
        write(tmp_path, "BENCH_2026-01-01.json",
              bench_report(suites=[suite(wall=1.0)]))
        result = self._run("--dir", str(tmp_path), "--format", "json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert payload["reports"] == 1
