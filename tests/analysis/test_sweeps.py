"""Tests for the sweep harness, driving the compact protocol at scale."""

import pytest

from repro.analysis.sweeps import (
    SweepReport,
    standard_adversary_makers,
    sweep,
)
from repro.compact.byzantine_agreement import (
    compact_ba_factory,
    compact_ba_rounds,
)
from repro.compact.payload import compact_sizer, payload_is_null
from repro.core.predicates import byzantine_agreement_predicate
from repro.types import SystemConfig


@pytest.fixture
def report(config4):
    factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
    return sweep(
        factory,
        config4,
        input_patterns=[
            {p: p % 2 for p in config4.process_ids},
            {p: 1 for p in config4.process_ids},
        ],
        fault_sets=[(1,), (4,)],
        adversary_makers=standard_adversary_makers(),
        seeds=(0, 1),
        predicate=byzantine_agreement_predicate(),
        max_rounds=compact_ba_rounds(config4.t, 1) + 1,
        sizer=compact_sizer(config4, 2),
        is_null=payload_is_null,
    )


class TestSweep:
    def test_grid_size(self, report):
        # 2 patterns x 2 fault sets x 6 adversaries x 2 seeds
        assert report.executions == 48

    def test_predicate_holds_everywhere(self, report):
        assert report.all_hold(), [
            outcome.describe() for outcome in report.violations
        ]

    def test_aggregates(self, report):
        assert report.total_bits() > 0
        assert report.max_rounds() == compact_ba_rounds(1, 1)

    def test_outcome_description(self, report):
        line = report.outcomes[0].describe()
        assert "faulty=" in line and "adversary=" in line

    def test_predicate_optional(self, config4):
        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        report = sweep(
            factory,
            config4,
            input_patterns=[{p: 0 for p in config4.process_ids}],
            fault_sets=[(1,)],
            adversary_makers=standard_adversary_makers()[:1],
            max_rounds=compact_ba_rounds(config4.t, 1) + 1,
        )
        assert report.outcomes[0].predicate_holds is None
        assert report.all_hold()  # no violations recorded

    def test_violation_detection(self, config4):
        """A predicate that always fails is reported as violations."""
        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        report = sweep(
            factory,
            config4,
            input_patterns=[{p: 0 for p in config4.process_ids}],
            fault_sets=[(1,)],
            adversary_makers=standard_adversary_makers()[:2],
            predicate=lambda ans, faulty, inputs: False,
            max_rounds=compact_ba_rounds(config4.t, 1) + 1,
        )
        assert not report.all_hold()
        assert len(report.violations) == 2
        assert "VIOLATION" in report.violations[0].describe()

    def test_predicate_exception_captured_as_error(self, config4):
        """A raising predicate becomes SweepOutcome.error, not a crash."""

        def exploding(answers, faulty, inputs):
            raise ZeroDivisionError("predicate blew up")

        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        report = sweep(
            factory,
            config4,
            input_patterns=[{p: 0 for p in config4.process_ids}],
            fault_sets=[(1,)],
            adversary_makers=standard_adversary_makers()[:2],
            predicate=exploding,
            max_rounds=compact_ba_rounds(config4.t, 1) + 1,
        )
        assert all(o.predicate_holds is None for o in report.outcomes)
        assert [o.error for o in report.outcomes] == [
            "ZeroDivisionError: predicate blew up",
            "ZeroDivisionError: predicate blew up",
        ]
        assert not report.all_hold()
        assert len(report.violations) == 2
        assert report.errors == report.violations
        assert "ERROR" in report.errors[0].describe()

    def test_predicate_errors_survive_the_pool(self, config4):
        """Errors captured in workers round-trip to the report."""

        def sometimes_exploding(answers, faulty, inputs):
            if 4 in faulty:
                raise ValueError("bad fault set")
            return True

        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        kwargs = dict(
            input_patterns=[{p: 0 for p in config4.process_ids}],
            fault_sets=[(1,), (4,)],
            adversary_makers=standard_adversary_makers()[:2],
            predicate=sometimes_exploding,
            max_rounds=compact_ba_rounds(config4.t, 1) + 1,
        )
        pooled = sweep(factory, config4, workers=2, **kwargs)
        serial = sweep(factory, config4, workers=1, **kwargs)
        assert [o.error for o in pooled.outcomes] == [
            o.error for o in serial.outcomes
        ]
        assert len(pooled.errors) == 2
        assert all(o.error == "ValueError: bad fault set"
                   for o in pooled.errors)
        assert all(4 in o.faulty for o in pooled.errors)
