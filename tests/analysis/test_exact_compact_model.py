"""The exact fault-free compact cost model matches the meter bit-for-bit.

This pins the protocol's communication structure completely: any
change to what Protocol 3 sends, when, or how the sizer charges it
breaks these equalities.
"""

import pytest

from repro.analysis.complexity import compact_exact_bits_fault_free
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.types import SystemConfig

# A value alphabet disjoint from processor indices, as the model
# documents (int values colliding with ids 1..n would be charged index
# bits by the sizer).
ALPHABET = ["a", "b"]


def measured_bits(n, t, k, overhead):
    config = SystemConfig(n=n, t=t)
    inputs = {p: ALPHABET[p % 2] for p in config.process_ids}
    result = run_compact_byzantine_agreement(
        config, inputs, value_alphabet=ALPHABET, k=k, overhead=overhead
    )
    return result.metrics.total_bits


@pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
@pytest.mark.parametrize("k", [1, 2, 3])
def test_standard_overhead_matches(n, t, k):
    assert measured_bits(n, t, k, overhead=2) == compact_exact_bits_fault_free(
        n, t, k, len(ALPHABET), overhead=2
    )


@pytest.mark.parametrize("n,t", [(5, 1), (9, 2)])
@pytest.mark.parametrize("k", [1, 2])
def test_fast_overhead_matches(n, t, k):
    assert measured_bits(n, t, k, overhead=1) == compact_exact_bits_fault_free(
        n, t, k, len(ALPHABET), overhead=1
    )


def test_model_reflects_single_block_shortcut():
    """k >= t + 1 fits the whole simulation in one block: no
    rebroadcast, no avalanche, cost collapses to the progress
    exchanges only (this is why eps can be 'bought' so cheaply at
    small t)."""
    with_avalanche = compact_exact_bits_fault_free(7, 2, 2, 2)
    single_block = compact_exact_bits_fault_free(7, 2, 3, 2)
    assert single_block < with_avalanche


def test_model_monotone_in_alphabet():
    assert compact_exact_bits_fault_free(
        7, 2, 1, 1024
    ) > compact_exact_bits_fault_free(7, 2, 1, 2)
