"""The parallel sweep executor: determinism, portability, degradation."""

import pickle

import pytest

from repro.analysis import parallel
from repro.analysis.parallel import (
    ProcessSummary,
    SweepCell,
    SweepContext,
    build_cells,
    portable_result,
)
from repro.analysis.sweeps import standard_adversary_makers, sweep
from repro.avalanche.protocol import avalanche_factory
from repro.compact.byzantine_agreement import (
    compact_ba_factory,
    compact_ba_rounds,
)
from repro.compact.payload import compact_sizer, payload_is_null
from repro.core.predicates import byzantine_agreement_predicate
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM


def avalanche_grid(config):
    return dict(
        input_patterns=[
            {p: p % 2 for p in config.process_ids},
            {p: 1 for p in config.process_ids},
        ],
        fault_sets=[(1, 2), (6, 7)],
        adversary_makers=standard_adversary_makers(),
        seeds=(0, 1),
        run_full_rounds=6,
    )


def compact_grid(config):
    return dict(
        input_patterns=[{p: p % 2 for p in config.process_ids}],
        fault_sets=[(1,), (4,)],
        adversary_makers=standard_adversary_makers(),
        seeds=(0, 1),
        predicate=byzantine_agreement_predicate(),
        max_rounds=compact_ba_rounds(config.t, 1) + 1,
        sizer=compact_sizer(config, 2),
        is_null=payload_is_null,
    )


def signature(report):
    """Everything the determinism contract quantifies over."""
    return [
        (
            outcome.result.answer_vector(),
            outcome.result.metrics.total_bits,
            dict(sorted(outcome.result.decision_rounds.items())),
            outcome.adversary_name,
            outcome.seed,
            outcome.predicate_holds,
            outcome.error,
        )
        for outcome in report.outcomes
    ]


class TestWorkerCountInvariance:
    """sweep(workers=1) and sweep(workers=4) must be indistinguishable."""

    def test_avalanche_identical_across_worker_counts(self, config7):
        grid = avalanche_grid(config7)
        serial = sweep(avalanche_factory(), config7, workers=1, **grid)
        pooled = sweep(avalanche_factory(), config7, workers=4, **grid)
        assert signature(serial) == signature(pooled)
        assert serial.total_bits() == pooled.total_bits()
        assert serial.max_rounds() == pooled.max_rounds()

    def test_compact_ba_identical_across_worker_counts(self, config4):
        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        grid = compact_grid(config4)
        serial = sweep(factory, config4, workers=1, **grid)
        pooled = sweep(factory, config4, workers=4, **grid)
        assert signature(serial) == signature(pooled)
        assert serial.all_hold() and pooled.all_hold()

    def test_reports_are_byte_identical(self, config4):
        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        grid = compact_grid(config4)
        blobs = {
            workers: pickle.dumps(sweep(factory, config4,
                                        workers=workers, **grid))
            for workers in (1, 2, 4)
        }
        assert blobs[1] == blobs[2] == blobs[4]

    def test_matches_legacy_serial_path(self, config4):
        """workers=None (live results) agrees on every metric."""
        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        grid = compact_grid(config4)
        legacy = sweep(factory, config4, **grid)
        pooled = sweep(factory, config4, workers=2, **grid)
        assert signature(legacy) == signature(pooled)


class TestCells:
    def test_build_cells_canonical_order(self, config4):
        makers = standard_adversary_makers()[:2]
        cells = build_cells(
            input_patterns=[{1: 0}, {1: 1}],
            fault_sets=[(1,), (2,)],
            adversary_makers=makers,
            seeds=(0, 7),
        )
        assert [cell.index for cell in cells] == list(range(16))
        # Innermost loop is seeds, then adversaries, faults, inputs.
        assert cells[0].seed == 0 and cells[1].seed == 7
        assert cells[0].adversary_name == cells[1].adversary_name
        assert cells[2].adversary_name != cells[0].adversary_name

    def test_cells_are_picklable(self):
        cell = SweepCell(
            index=3, inputs={1: 0, 2: 1}, faulty=(2,),
            adversary_name="silent", adversary_index=0, seed=5,
        )
        assert pickle.loads(pickle.dumps(cell)) == cell

    def test_chunking_covers_every_cell_in_order(self):
        cells = [
            SweepCell(index=i, inputs={}, faulty=(), adversary_name="x",
                      adversary_index=0, seed=0)
            for i in range(23)
        ]
        chunks = parallel._chunked(cells, workers=4)
        flattened = [cell for chunk in chunks for cell in chunk]
        assert flattened == cells
        assert all(chunk for chunk in chunks)


class TestPortability:
    def test_portable_result_replaces_processes_and_trace(self, config4):
        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        result = run_protocol(
            factory, config4, {p: 0 for p in config4.process_ids},
            max_rounds=compact_ba_rounds(config4.t, 1) + 1,
            record_trace=True,
        )
        portable = portable_result(result)
        assert portable.trace is None
        assert set(portable.processes) == set(result.processes)
        for process_id, summary in portable.processes.items():
            assert isinstance(summary, ProcessSummary)
            assert summary.decision == result.decisions[process_id]
            assert summary.has_decided()
        # The quantitative surface is untouched.
        assert portable.answer_vector() == result.answer_vector()
        assert portable.correct_ids == result.correct_ids
        assert portable.metrics.total_bits == result.metrics.total_bits
        pickle.dumps(portable)  # closure-carrying original would raise

    def test_process_summary_undecided(self):
        summary = ProcessSummary(1, BOTTOM, None)
        assert not summary.has_decided()
        assert summary.snapshot() == {"decision": BOTTOM}


class TestGracefulDegradation:
    def test_no_fork_degrades_to_serial_with_warning(
        self, config4, monkeypatch
    ):
        def no_fork(method):
            raise ValueError("fork not available")

        monkeypatch.setattr(
            parallel.multiprocessing, "get_context", no_fork
        )
        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        grid = compact_grid(config4)
        with pytest.warns(RuntimeWarning, match="fork"):
            degraded = sweep(factory, config4, workers=4, **grid)
        reference = sweep(factory, config4, workers=1, **grid)
        assert pickle.dumps(degraded) == pickle.dumps(reference)

    def test_broken_pool_degrades_to_serial_with_warning(
        self, config4, monkeypatch
    ):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, *args, **kwargs):
                raise OSError("cannot spawn worker")

        monkeypatch.setattr(
            parallel, "ProcessPoolExecutor", ExplodingPool
        )
        factory = compact_ba_factory(config4, [0, 1], default=0, k=1)
        grid = compact_grid(config4)
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            degraded = sweep(factory, config4, workers=4, **grid)
        reference = sweep(factory, config4, workers=1, **grid)
        assert pickle.dumps(degraded) == pickle.dumps(reference)
        assert parallel._WORKER_CONTEXT is None  # always cleaned up

    def test_protocol_errors_are_not_masked(self, config4):
        def exploding_factory(process_id, config, value):
            raise RuntimeError("factory exploded")

        context = SweepContext(
            factory=exploding_factory,
            config=config4,
            adversary_makers=tuple(standard_adversary_makers()[:1]),
            predicate=None,
            max_rounds=5,
            run_full_rounds=None,
            sizer=None,
            is_null=None,
        )
        cells = build_cells(
            [{p: 0 for p in config4.process_ids}], [(1,)],
            standard_adversary_makers()[:1], (0,),
        )
        with pytest.raises(RuntimeError, match="factory exploded"):
            parallel.execute_cells(context, cells, workers=1)
