"""The bench harness: suite registry and the --compare regression gate."""

import copy

from repro.analysis.bench import SUITES, bench_fullinfo_deep, compare_reports


def _report(**overrides):
    base = {
        "schema_version": 1,
        "quick": True,
        "workers": 2,
        "suites": [
            {
                "name": "fullinfo-deep",
                "wall_time_s": 1.0,
                "executions": 4,
                "total_bits": 1000,
                "max_rounds": 10,
                "violations": 0,
                "errors": 0,
            },
            {
                "name": "avalanche",
                "wall_time_s": 0.02,
                "executions": 24,
                "total_bits": 500,
                "max_rounds": 8,
                "violations": 0,
                "errors": 0,
            },
        ],
    }
    base.update(overrides)
    return base


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = _report()
        assert compare_reports(report, copy.deepcopy(report)) == []

    def test_wall_time_regression_is_flagged(self):
        current = _report()
        current["suites"][0]["wall_time_s"] = 1.5
        problems = compare_reports(current, _report())
        assert len(problems) == 1
        assert "fullinfo-deep" in problems[0]
        assert "wall time" in problems[0]

    def test_wall_time_within_threshold_passes(self):
        current = _report()
        current["suites"][0]["wall_time_s"] = 1.2
        assert compare_reports(current, _report()) == []

    def test_tiny_absolute_regressions_are_noise(self):
        # 3x relative blowup but only 40ms absolute: under the floor,
        # so a sub-100ms suite cannot flake the gate on timer jitter.
        current = _report()
        current["suites"][1]["wall_time_s"] = 0.06
        assert compare_reports(current, _report()) == []

    def test_deterministic_drift_is_flagged(self):
        current = _report()
        current["suites"][0]["total_bits"] = 1001
        problems = compare_reports(current, _report())
        assert len(problems) == 1
        assert "total_bits" in problems[0]
        assert "deterministic" in problems[0]

    def test_config_mismatch_is_flagged(self):
        problems = compare_reports(_report(quick=False), _report())
        assert any("quick" in problem for problem in problems)
        problems = compare_reports(_report(workers=4), _report())
        assert any("workers" in problem for problem in problems)

    def test_new_suite_has_no_baseline_to_regress(self):
        baseline = _report()
        baseline["suites"] = baseline["suites"][:1]
        current = _report()
        current["suites"][1]["wall_time_s"] = 99.0
        assert compare_reports(current, baseline) == []


class TestDeepSuite:
    def test_registered_after_crossover(self):
        names = list(SUITES)
        assert "fullinfo-deep" in names
        assert names.index("fullinfo-deep") > names.index(
            "fullinfo-crossover"
        )

    def test_quick_run_reaches_exponential_scale(self):
        result = bench_fullinfo_deep(quick=True, workers=1)
        assert result.name == "fullinfo-deep"
        assert result.violations == 0 and result.errors == 0
        details = result.details
        # The point of the suite: each final state stands for a tree
        # far past what per-round O(n ** r) walks could traverse in
        # the recorded wall time.
        assert details["leaves_per_state"] == (
            details["n"] ** details["rounds_per_execution"]
        )
        assert details["leaves_per_state"] >= 4 ** 10
