"""The bench harness: suite registry and the --compare regression gate."""

import copy

from repro.analysis.bench import (
    SUITES,
    bench_fullinfo_deep,
    compare_reports,
    profile_regressions,
)


def _report(**overrides):
    base = {
        "schema_version": 1,
        "quick": True,
        "workers": 2,
        "suites": [
            {
                "name": "fullinfo-deep",
                "wall_time_s": 1.0,
                "executions": 4,
                "total_bits": 1000,
                "max_rounds": 10,
                "violations": 0,
                "errors": 0,
            },
            {
                "name": "avalanche",
                "wall_time_s": 0.02,
                "executions": 24,
                "total_bits": 500,
                "max_rounds": 8,
                "violations": 0,
                "errors": 0,
            },
        ],
    }
    base.update(overrides)
    return base


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = _report()
        assert compare_reports(report, copy.deepcopy(report)) == []

    def test_wall_time_regression_is_flagged(self):
        current = _report()
        current["suites"][0]["wall_time_s"] = 1.5
        problems = compare_reports(current, _report())
        assert len(problems) == 1
        assert "fullinfo-deep" in problems[0]
        assert "wall time" in problems[0]

    def test_wall_time_within_threshold_passes(self):
        current = _report()
        current["suites"][0]["wall_time_s"] = 1.2
        assert compare_reports(current, _report()) == []

    def test_tiny_absolute_regressions_are_noise(self):
        # 3x relative blowup but only 40ms absolute: under the floor,
        # so a sub-100ms suite cannot flake the gate on timer jitter.
        current = _report()
        current["suites"][1]["wall_time_s"] = 0.06
        assert compare_reports(current, _report()) == []

    def test_deterministic_drift_is_flagged(self):
        current = _report()
        current["suites"][0]["total_bits"] = 1001
        problems = compare_reports(current, _report())
        assert len(problems) == 1
        assert "total_bits" in problems[0]
        assert "deterministic" in problems[0]

    def test_config_mismatch_is_flagged(self):
        problems = compare_reports(_report(quick=False), _report())
        assert any("quick" in problem for problem in problems)
        problems = compare_reports(_report(workers=4), _report())
        assert any("workers" in problem for problem in problems)

    def test_new_suite_has_no_baseline_to_regress(self):
        baseline = _report()
        baseline["suites"] = baseline["suites"][:1]
        current = _report()
        current["suites"][1]["wall_time_s"] = 99.0
        assert compare_reports(current, baseline) == []


class TestDeepSuite:
    def test_registered_after_crossover(self):
        names = list(SUITES)
        assert "fullinfo-deep" in names
        assert names.index("fullinfo-deep") > names.index(
            "fullinfo-crossover"
        )

    def test_quick_run_reaches_exponential_scale(self):
        result = bench_fullinfo_deep(quick=True, workers=1)
        assert result.name == "fullinfo-deep"
        assert result.violations == 0 and result.errors == 0
        details = result.details
        # The point of the suite: each final state stands for a tree
        # far past what per-round O(n ** r) walks could traverse in
        # the recorded wall time.
        assert details["leaves_per_state"] == (
            details["n"] ** details["rounds_per_execution"]
        )
        assert details["leaves_per_state"] >= 4 ** 10


def _profiled_report(**span_totals):
    report = _report()
    report["suites"][0]["profile"] = {
        span: {"count": 1, "total_s": total, "max_s": total}
        for span, total in span_totals.items()
    }
    return report


class TestProfileRegressions:
    def test_top_regressions_as_display_lines(self):
        baseline = _profiled_report(**{"sweep.execute": 0.1, "eig": 0.5})
        current = _profiled_report(**{"sweep.execute": 0.3, "eig": 0.4})
        lines = profile_regressions(current, baseline)
        assert len(lines) == 1
        assert lines[0].startswith("sweep.execute: 0.100s -> 0.300s")
        assert "+0.200s" in lines[0]
        assert "x3.00" in lines[0]

    def test_empty_without_profiles_on_both_sides(self):
        assert profile_regressions(_report(), _profiled_report(a=1.0)) == []
        assert profile_regressions(_profiled_report(a=1.0), _report()) == []

    def test_profiles_merge_across_suites(self):
        current = _profiled_report(a=1.0)
        current["suites"][1]["profile"] = {
            "a": {"count": 1, "total_s": 1.0, "max_s": 1.0}
        }
        baseline = _profiled_report(a=0.5)
        baseline["suites"][1]["profile"] = {
            "a": {"count": 1, "total_s": 0.5, "max_s": 0.5}
        }
        (line,) = profile_regressions(current, baseline)
        assert line.startswith("a: 1.000s -> 2.000s")

    def test_never_gates(self):
        # a huge span regression alone leaves compare_reports clean
        baseline = _profiled_report(a=0.001)
        current = _profiled_report(a=99.0)
        assert profile_regressions(current, baseline)
        assert compare_reports(current, baseline) == []


class TestRunBenchProfile:
    def test_every_suite_carries_a_span_rollup(self, tmp_path):
        from repro.analysis.bench import run_bench, write_report

        report = run_bench(
            suites=["avalanche"], quick=True, workers=1,
            events=tmp_path / "events.jsonl",
        )
        (suite,) = report["suites"]
        profile = suite["profile"]
        assert any(path.startswith("bench.avalanche") for path in profile)
        for stats in profile.values():
            assert set(stats) == {"count", "total_s", "max_s"}
        # the profile survives serialization (additive to schema v1)
        path = tmp_path / "bench.json"
        write_report(report, path)
        assert '"profile"' in path.read_text()
        assert report["schema_version"] == 1

    def test_profile_false_omits_the_rollup(self):
        from repro.analysis.bench import run_bench

        report = run_bench(
            suites=["avalanche"], quick=True, workers=1, profile=False,
        )
        assert "profile" not in report["suites"][0]
