"""docs/api.md must stay in sync with the code (regenerate-and-diff)."""

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def load_generator():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import gen_api_docs
    finally:
        sys.path.pop(0)
    return gen_api_docs


def test_api_docs_current():
    generator = load_generator()
    committed = (ROOT / "docs" / "api.md").read_text()
    assert generator.render() == committed, (
        "docs/api.md is stale — run: python tools/gen_api_docs.py"
    )


def test_api_docs_cover_key_modules():
    text = (ROOT / "docs" / "api.md").read_text()
    for module in (
        "repro.compact.protocol",
        "repro.avalanche.protocol",
        "repro.core.transform",
        "repro.fullinfo.decision",
    ):
        assert f"## `{module}`" in text


def test_no_undocumented_public_items():
    """Every public class/function in the library has a docstring."""
    generator = load_generator()
    undocumented = []
    for name, module in generator.iter_modules():
        for attribute_name, value in generator.public_members(name, module):
            if not generator.first_paragraph(value):
                undocumented.append(f"{name}.{attribute_name}")
    assert not undocumented, undocumented
