"""The generative fuzzing adversary.

Hand-written strategies (:mod:`repro.adversary.byzantine`) each encode
one known attack.  :class:`FuzzAdversary` instead *samples* the attack
space: every round, for every faulty sender, it draws one behaviour
from a menu covering the fault models the paper's theorems quantify
over —

* **silence** — full omission (the crash/omission end of the
  spectrum, detectable by recipients);
* **selective omission** — honest-looking traffic delivered to a
  random subset of recipients only;
* **equivocation** — one value to one half of the recipients, another
  to the rest;
* **garbage** — structurally malformed payloads (ragged or wrong-width
  tuples, junk scalars) exercising the "obviously erroneous, discarded
  immediately" validation paths;
* **forgery** — a *mutation* of real correct traffic, re-interned
  through :meth:`repro.arrays.store.ArrayStore.try_intern` so the
  payload is biased toward well-shaped, legal-but-malicious arrays
  (the hardest case: nothing about the message itself betrays the
  fault);
* **mimicry** — replaying one correct processor's outgoing row
  verbatim (legal traffic that may contradict the sender's own past).

Some faulty processors are additionally downgraded to **crash faults**
at bind time: they behave honestly (mimic a fixed correct processor)
until a sampled crash round, deliver to only a prefix of recipients in
that round, and stay silent forever after — the benign-fault end of
the adversary spectrum, inside the same execution.

Every choice flows from the adversary's bound RNG substream (the
engine derives it from the execution seed via
:func:`repro.runtime.rng.derive_rng`), and the network invokes faulty
senders in sorted order each round, so one seed fixes the entire
attack — executions are replayable, shrinkable and diffable.

A ``mask`` of ``(round, sender)`` pairs forces plain silence for those
slots *without* consuming different amounts of randomness: the slot's
behaviour is still fully sampled and only its deliveries are dropped.
Every unmasked slot therefore draws exactly what it would have drawn,
and the attack changes only through the protocol's own reaction to
the silenced messages — the property the shrinker's per-message axis
relies on.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary, RoundContext
from repro.arrays.store import shared_store
from repro.types import BOTTOM, ProcessId, Round, Value, is_bottom

#: The behaviour menu, in the fixed order the RNG indexes into.
BEHAVIOURS: Tuple[str, ...] = (
    "silent",
    "omit",
    "equivocate",
    "garbage",
    "forge",
    "mimic",
)

#: Probability that a faulty processor is downgraded to a crash fault.
_CRASH_PROBABILITY = 0.25

#: Per-leaf mutation probability inside forged arrays.
_MUTATION_RATE = 0.3


class FuzzAdversary(Adversary):
    """Seed-driven sampler over the Byzantine behaviour space.

    Parameters
    ----------
    faulty_ids:
        The fault set ``F`` for the whole execution.
    palette:
        Values used for equivocation and forged leaves; defaults to
        the values present in the execution's input vector.
    mask:
        ``(round, sender)`` pairs forced to plain silence (see the
        module docstring; the shrinker's per-message axis).
    crash_probability:
        Chance, per faulty processor, of a crash-fault downgrade.
    """

    def __init__(
        self,
        faulty_ids: Iterable[ProcessId],
        palette: Optional[Sequence[Value]] = None,
        mask: Iterable[Tuple[Round, ProcessId]] = (),
        crash_probability: float = _CRASH_PROBABILITY,
    ):
        super().__init__(faulty_ids)
        self._palette = tuple(palette) if palette is not None else None
        self.mask = frozenset(
            (int(round_number), int(sender)) for round_number, sender in mask
        )
        self._crash_probability = crash_probability
        self._crash_round: Dict[ProcessId, Round] = {}
        self._honest_mimic: Dict[ProcessId, int] = {}

    def bind(self, config, rng) -> None:  # type: ignore[override]
        super().bind(config, rng)
        # Crash downgrades are sampled once, up front, in sorted-id
        # order, so the per-round draw sequence is independent of them.
        self._crash_round = {}
        self._honest_mimic = {}
        for sender in sorted(self.faulty_ids):
            crashes = float(self.rng.random()) < self._crash_probability
            crash_round = int(self.rng.integers(1, 8))
            mimic_slot = int(self.rng.integers(0, config.n))
            if crashes:
                self._crash_round[sender] = crash_round
            self._honest_mimic[sender] = mimic_slot

    # -- behaviour dispatch --------------------------------------------------

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        # The full attack is sampled first and the mask applied last,
        # so masking a slot only drops its deliveries — it never
        # changes how much randomness is consumed, and every other
        # (round, sender) slot replays byte-identically.  This is the
        # property the shrinker's per-message axis relies on.
        messages = self._sample_outgoing(round_number, sender, context)
        if (int(round_number), int(sender)) in self.mask:
            return {}
        return messages

    def _sample_outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        rng = self.rng
        behaviour = BEHAVIOURS[int(rng.integers(0, len(BEHAVIOURS)))]
        crash_round = self._crash_round.get(sender)
        if crash_round is not None:
            if round_number > crash_round:
                return {}
            honest = self._honest_row(sender, context)
            if round_number < crash_round:
                return honest
            # The crash round itself: an atomic send cut mid-way.
            cut = int(rng.integers(0, self.config.n + 1))
            recipients = sorted(honest)[:cut]
            return {receiver: honest[receiver] for receiver in recipients}
        handler = getattr(self, f"_behave_{behaviour}")
        return handler(round_number, sender, context)

    def _honest_row(
        self, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        """What a fixed correct processor is sending, replayed verbatim."""
        correct = sorted(context.correct_senders())
        if not correct:
            return {}
        mimic = correct[self._honest_mimic[sender] % len(correct)]
        return {
            receiver: context.correct_message(mimic, receiver)
            for receiver in self.config.process_ids
        }

    def _values(self, context: RoundContext) -> List[Value]:
        if self._palette:
            return list(self._palette)
        # dict.fromkeys dedups in first-seen order (never a set walk).
        seen = sorted(
            (value for value in dict.fromkeys(context.inputs.values())
             if not is_bottom(value)),
            key=repr,
        )
        return seen or [0]

    # -- the behaviour menu ----------------------------------------------------

    def _behave_silent(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        return {}

    def _behave_omit(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        rng = self.rng
        row = self._honest_row(sender, context)
        return {
            receiver: row.get(receiver, BOTTOM)
            for receiver in self.config.process_ids
            if float(rng.random()) < 0.5
        }

    def _behave_equivocate(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        rng = self.rng
        palette = self._values(context)
        value_a = palette[int(rng.integers(0, len(palette)))]
        value_b = palette[int(rng.integers(0, len(palette)))]
        ordered = sorted(self.config.process_ids)
        middle = len(ordered) // 2
        messages: Dict[ProcessId, Any] = {}
        for receiver in ordered[:middle]:
            messages[receiver] = value_a
        for receiver in ordered[middle:]:
            messages[receiver] = value_b
        return messages

    def _behave_garbage(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        rng = self.rng
        n = self.config.n
        menu: List[Any] = [
            tuple(0 for _ in range(n + 1)),                # wrong width
            tuple((0,) if index == 0 else 0 for index in range(n)),  # ragged
            f"junk-{int(rng.integers(0, 1000))}",          # alien scalar
            ("two", "values"),                              # multi-value
            (),                                             # empty tuple
        ]
        return {
            receiver: menu[int(rng.integers(0, len(menu)))]
            for receiver in sorted(self.config.process_ids)
        }

    def _behave_forge(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        palette = self._values(context)
        messages: Dict[ProcessId, Any] = {}
        for receiver in sorted(self.config.process_ids):
            template = context.sample_correct_message(receiver)
            messages[receiver] = self._mutate(template, palette)
        return messages

    def _behave_mimic(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        rng = self.rng
        correct = sorted(context.correct_senders())
        if not correct:
            return {}
        mimic = correct[int(rng.integers(0, len(correct)))]
        return {
            receiver: context.correct_message(mimic, receiver)
            for receiver in self.config.process_ids
        }

    # -- forgery -------------------------------------------------------------

    def _mutate(self, value: Any, palette: List[Value]) -> Any:
        """A plausible corruption of ``value``, shape-preserving.

        Tuples are rebuilt with leaf flips and re-interned through the
        shared store's :meth:`try_intern` — when the mutation is
        well-shaped (the common case, since the template was) the
        forged payload is a *legal* value array indistinguishable from
        honest traffic except by content.  Scalars flip within the
        palette; unknown wire types fall back to a palette value.
        """
        rng = self.rng
        if isinstance(value, tuple):
            mutated = self._mutate_array(value, palette)
            interned = shared_store(self.config.n).try_intern(mutated)
            return interned if interned is not None else mutated
        if isinstance(value, dict):
            # e.g. firing-squad payloads: {instance-start: state}.
            return {
                key: self._mutate(component, palette)
                for key, component in sorted(
                    value.items(), key=lambda item: repr(item[0])
                )
            }
        payload = self._mutate_payload(value, palette)
        if payload is not None:
            return payload
        if is_bottom(value) or float(rng.random()) < 0.5:
            return palette[int(rng.integers(0, len(palette)))]
        return value

    def _mutate_array(self, array: Tuple[Any, ...], palette: List[Value]) -> Any:
        rng = self.rng
        components: List[Any] = []
        for component in array:
            if isinstance(component, tuple):
                components.append(self._mutate_array(component, palette))
            elif float(rng.random()) < _MUTATION_RATE:
                components.append(palette[int(rng.integers(0, len(palette)))])
            else:
                components.append(component)
        return tuple(components)

    def _mutate_payload(self, value: Any, palette: List[Value]) -> Optional[Any]:
        """Mutate a compact-protocol payload, or ``None`` if not one."""
        from repro.compact.payload import CompactPayload

        if not isinstance(value, CompactPayload):
            return None
        return CompactPayload(
            main=self._mutate(value.main, palette),
            votes=tuple(
                (boundary, self._mutate(vote_tuple, palette))
                for boundary, vote_tuple in value.votes
            ),
        )
