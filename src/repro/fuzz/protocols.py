"""The fuzz target registry: how to run and judge each protocol.

A :class:`ProtocolSpec` packages everything the campaign driver needs
to fuzz one protocol — how to build its processes for a given system
configuration, how to sample a legal input vector, how long to run,
and which oracles judge the outcome.  Registering a spec is the whole
integration surface: `repro fuzz --protocol <name>` and the corpus
replayer find it here, so every future protocol gets adversarial
coverage by adding one entry.

Specs for the paper's protocols (avalanche, compact-BA, EIG) and the
agreement catalog (crusader, weak, firing squad) are registered at
import.  Tests may register throwaway mutants (e.g. a deliberately
weakened decision rule) under fresh names; see
:func:`register` / :func:`unregister`.

``differential_group`` ties protocols that must be judged on
*identical* scenarios: members of a group share sampled inputs, fault
sets and execution seeds, which is what gives the cross-protocol
differential oracle (:func:`repro.fuzz.oracles.differential_mismatches`)
its footing — compact-BA is *defined* (Corollary 10) as a simulation
of the EIG protocol, so the two runs are comparable point by point.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import BOTTOM, ProcessId, SystemConfig, Value

#: Builds one correct processor (the run_protocol factory shape).
ProcessBuilder = Callable[[ProcessId, SystemConfig, Value], Any]

#: Samples one legal input vector for the protocol.
InputSampler = Callable[[SystemConfig, np.random.Generator], Dict[ProcessId, Value]]


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """One fuzz target."""

    name: str
    #: Builds the run_protocol process factory for a configuration.
    build: Callable[[SystemConfig], ProcessBuilder]
    #: Draws one input vector from the campaign's RNG substream.
    sample_inputs: InputSampler
    #: Names into :data:`repro.fuzz.oracles.ORACLES`, checked on every
    #: execution (portable results suffice).
    oracles: Tuple[str, ...]
    #: Safety cap on rounds (the engine raises beyond it).
    max_rounds: Callable[[SystemConfig], int]
    #: For non-terminating / externally-clocked protocols: how many
    #: full rounds to run (``None`` = run until all correct decide).
    full_rounds: Optional[Callable[[SystemConfig], int]] = None
    #: Oracles needing live process objects (run in the serial
    #: consistency phase and on replay, never through the pool).
    state_oracles: Tuple[str, ...] = ()
    #: Protocols sharing a group are run on identical scenarios and
    #: cross-checked by the differential oracle.
    differential_group: Optional[str] = None
    #: Values the adversary uses for equivocation and forged leaves.
    palette: Tuple[Value, ...] = (0, 1)
    #: Reject configurations the protocol cannot run at (returns a
    #: reason string, or ``None`` when supported).
    supports: Callable[[SystemConfig], Optional[str]] = lambda config: None

    def default_rounds(self, config: SystemConfig) -> Optional[int]:
        return None if self.full_rounds is None else self.full_rounds(config)


_REGISTRY: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add a fuzz target; its name becomes a `--protocol` choice."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"fuzz protocol {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a spec (tests registering mutants clean up with this)."""
    _REGISTRY.pop(name, None)


def get_spec(name: str) -> ProtocolSpec:
    """Look up a registered fuzz target by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fuzz protocol {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        )


def protocol_names() -> Tuple[str, ...]:
    """All registered target names, sorted."""
    return tuple(sorted(_REGISTRY))


#: What `repro fuzz` runs when no --protocol is given: the paper's
#: protocols (the acceptance trio).
DEFAULT_PROTOCOLS: Tuple[str, ...] = ("avalanche", "compact-ba", "eig")

#: Everything registered at import — campaigns over the full catalog.
CATALOG_PROTOCOLS: Tuple[str, ...] = (
    "avalanche", "compact-ba", "crusader", "eig", "firing-squad", "weak"
)


# -- input samplers ----------------------------------------------------------


def sample_binary_inputs(
    config: SystemConfig, rng: np.random.Generator
) -> Dict[ProcessId, Value]:
    """An independent fair bit per processor."""
    return {
        process_id: int(rng.integers(0, 2))
        for process_id in config.process_ids
    }


def sample_avalanche_inputs(
    config: SystemConfig, rng: np.random.Generator
) -> Dict[ProcessId, Value]:
    """Binary, with an occasional BOTTOM (a processor with no input)."""
    inputs: Dict[ProcessId, Value] = {}
    for process_id in config.process_ids:
        if float(rng.random()) < 0.1:
            inputs[process_id] = BOTTOM
        else:
            inputs[process_id] = int(rng.integers(0, 2))
    return inputs


def sample_go_rounds(
    config: SystemConfig, rng: np.random.Generator
) -> Dict[ProcessId, Value]:
    """Firing-squad stimuli: a GO round in 1..3, or never (BOTTOM)."""
    inputs: Dict[ProcessId, Value] = {}
    for process_id in config.process_ids:
        if float(rng.random()) < 0.25:
            inputs[process_id] = BOTTOM
        else:
            inputs[process_id] = int(rng.integers(1, 4))
    return inputs


def _needs_byzantine_quorum(config: SystemConfig) -> Optional[str]:
    if not config.requires_byzantine_quorum():
        return f"needs n >= 3t+1, got n={config.n}, t={config.t}"
    return None


# -- the built-in targets ----------------------------------------------------


def _build_avalanche(config: SystemConfig) -> ProcessBuilder:
    from repro.avalanche.protocol import avalanche_factory

    return avalanche_factory()


def _avalanche_rounds(config: SystemConfig) -> int:
    # Long enough for decisions to propagate and the one-round
    # avalanche window to be observable several times over.
    return config.t + 5


register(ProtocolSpec(
    name="avalanche",
    build=_build_avalanche,
    sample_inputs=sample_avalanche_inputs,
    oracles=("avalanche",),
    max_rounds=lambda config: _avalanche_rounds(config) + 1,
    full_rounds=_avalanche_rounds,
    supports=_needs_byzantine_quorum,
))


def _build_compact_ba(config: SystemConfig) -> ProcessBuilder:
    from repro.compact.byzantine_agreement import compact_ba_factory

    return compact_ba_factory(config, (0, 1), default=0, k=1)


def _compact_ba_cap(config: SystemConfig) -> int:
    from repro.compact.byzantine_agreement import compact_ba_rounds

    return compact_ba_rounds(config.t, k=1) + 1


register(ProtocolSpec(
    name="compact-ba",
    build=_build_compact_ba,
    sample_inputs=sample_binary_inputs,
    oracles=("decided", "agreement", "validity"),
    max_rounds=_compact_ba_cap,
    differential_group="ba",
    supports=_needs_byzantine_quorum,
))


def _build_eig(config: SystemConfig) -> ProcessBuilder:
    from repro.agreement.eig_agreement import eig_agreement_factory

    return eig_agreement_factory(config, (0, 1), default=0)


register(ProtocolSpec(
    name="eig",
    build=_build_eig,
    sample_inputs=sample_binary_inputs,
    oracles=("decided", "agreement", "validity"),
    max_rounds=lambda config: config.t + 2,
    state_oracles=("fullinfo-consistency",),
    differential_group="ba",
    supports=_needs_byzantine_quorum,
))


def _build_crusader(config: SystemConfig) -> ProcessBuilder:
    from repro.agreement.crusader import crusader_factory

    # The highest id is the source, so sampled fault sets cover both
    # the correct-source and faulty-source regimes.
    return crusader_factory(source=config.n)


register(ProtocolSpec(
    name="crusader",
    build=_build_crusader,
    sample_inputs=sample_binary_inputs,
    oracles=("decided", "crusader"),
    max_rounds=lambda config: 3,
    supports=_needs_byzantine_quorum,
))


def _build_weak(config: SystemConfig) -> ProcessBuilder:
    from repro.agreement.phase_king import phase_king_factory
    from repro.agreement.weak import weak_agreement_factory

    return weak_agreement_factory(phase_king_factory(), default=0)


def _weak_cap(config: SystemConfig) -> int:
    from repro.agreement.phase_king import phase_king_rounds

    # One unanimity-test round, then the inner binary protocol.
    return 1 + phase_king_rounds(config.t) + 1


register(ProtocolSpec(
    name="weak",
    build=_build_weak,
    sample_inputs=sample_binary_inputs,
    oracles=("decided", "agreement", "weak-validity"),
    max_rounds=_weak_cap,
    supports=_needs_byzantine_quorum,
))


def _build_firing_squad(config: SystemConfig) -> ProcessBuilder:
    from repro.agreement.firing_squad import firing_squad_factory

    return firing_squad_factory()


def _firing_squad_rounds(config: SystemConfig) -> int:
    # Latest sampled GO round (3) + the instance's t + 1 exchanges,
    # with one round of slack so simultaneity violations are visible.
    return 3 + config.t + 2


register(ProtocolSpec(
    name="firing-squad",
    build=_build_firing_squad,
    sample_inputs=sample_go_rounds,
    oracles=("firing-squad",),
    max_rounds=lambda config: _firing_squad_rounds(config) + 1,
    full_rounds=_firing_squad_rounds,
    supports=_needs_byzantine_quorum,
))


__all__ = [
    "CATALOG_PROTOCOLS",
    "DEFAULT_PROTOCOLS",
    "ProtocolSpec",
    "get_spec",
    "protocol_names",
    "register",
    "sample_avalanche_inputs",
    "sample_binary_inputs",
    "sample_go_rounds",
    "unregister",
]
