"""Replayable fuzz cases and the on-disk regression corpus.

A :class:`FuzzCase` freezes everything that determines one execution
under the fuzzing adversary: protocol name, system size, seed, input
vector, fault set, optional round cap, and the shrinker's silence
mask.  Replaying a case (see :func:`repro.fuzz.campaign.replay_case`)
re-derives the adversary from the seed, so the file needs none of the
attack's sampled choices — the seed *is* the attack.

Cases serialise as tagged JSON through :mod:`repro.obs.codec` (inputs
may contain :data:`~repro.types.BOTTOM`, e.g. firing-squad
never-starters), and the corpus filename embeds a content digest so
two different cases can never collide and a corrupted file is
self-evident.  Files under ``tests/fuzz/corpus/`` are replayed by the
ordinary pytest suite: a shrunk counterexample committed there becomes
a permanent regression test.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.obs.codec import decode_value, encode_value
from repro.types import ProcessId, Round, Value

#: Bumped when the serialised form changes incompatibly.
CASE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FuzzCase:
    """One replayable execution under the fuzzing adversary."""

    protocol: str
    n: int
    t: int
    seed: int
    inputs: Tuple[Tuple[ProcessId, Value], ...]
    faulty: Tuple[ProcessId, ...]
    rounds: Optional[int] = None
    mask: Tuple[Tuple[Round, ProcessId], ...] = ()
    note: str = ""
    violations: Tuple[str, ...] = field(default=(), compare=False)

    @staticmethod
    def build(
        protocol: str,
        n: int,
        t: int,
        seed: int,
        inputs: Any,
        faulty: Any,
        rounds: Optional[int] = None,
        mask: Any = (),
        note: str = "",
        violations: Any = (),
    ) -> "FuzzCase":
        """Normalise loose arguments (dicts, sets) into canonical form."""
        if isinstance(inputs, dict):
            input_items = tuple(sorted(inputs.items()))
        else:
            input_items = tuple(sorted(tuple(item) for item in inputs))
        return FuzzCase(
            protocol=protocol,
            n=int(n),
            t=int(t),
            seed=int(seed),
            inputs=input_items,
            faulty=tuple(sorted({int(pid) for pid in faulty})),
            rounds=None if rounds is None else int(rounds),
            mask=tuple(sorted({(int(r), int(s)) for r, s in mask})),
            note=note,
            violations=tuple(violations),
        )

    @property
    def input_map(self) -> dict:
        return dict(self.inputs)

    def with_(self, **changes: Any) -> "FuzzCase":
        """A copy with ``changes`` applied and re-canonicalised."""
        merged = {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "seed": self.seed,
            "inputs": self.inputs,
            "faulty": self.faulty,
            "rounds": self.rounds,
            "mask": self.mask,
            "note": self.note,
            "violations": self.violations,
        }
        merged.update(changes)
        return FuzzCase.build(**merged)

    # -- serialisation -------------------------------------------------------

    def to_json(self) -> str:
        document = {
            "schema_version": CASE_SCHEMA_VERSION,
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "seed": self.seed,
            "inputs": encode_value(tuple(self.inputs)),
            "faulty": list(self.faulty),
            "rounds": self.rounds,
            "mask": [list(entry) for entry in self.mask],
            "note": self.note,
            "violations": list(self.violations),
        }
        return json.dumps(document, indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_json(text: str) -> "FuzzCase":
        document = json.loads(text)
        version = document.get("schema_version")
        if version != CASE_SCHEMA_VERSION:
            raise ValueError(
                f"fuzz case schema {version!r} unsupported "
                f"(this build reads {CASE_SCHEMA_VERSION})"
            )
        return FuzzCase.build(
            protocol=document["protocol"],
            n=document["n"],
            t=document["t"],
            seed=document["seed"],
            inputs=decode_value(document["inputs"]),
            faulty=document["faulty"],
            rounds=document["rounds"],
            mask=tuple(tuple(entry) for entry in document["mask"]),
            note=document.get("note", ""),
            violations=tuple(document.get("violations", ())),
        )

    def digest(self) -> str:
        """Short content hash over the replay-relevant fields.

        ``note`` and ``violations`` are advisory (they describe why
        the case was saved, not what it runs), so they are excluded:
        re-shrinking the same failure always maps to the same file.
        """
        payload = json.dumps(
            {
                "protocol": self.protocol,
                "n": self.n,
                "t": self.t,
                "seed": self.seed,
                "inputs": encode_value(tuple(self.inputs)),
                "faulty": list(self.faulty),
                "rounds": self.rounds,
                "mask": [list(entry) for entry in self.mask],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def filename(self) -> str:
        return f"{self.protocol}-{self.digest()}.json"

    def save(self, corpus_dir: Path) -> Path:
        corpus_dir = Path(corpus_dir)
        corpus_dir.mkdir(parents=True, exist_ok=True)
        path = corpus_dir / self.filename()
        path.write_text(self.to_json(), encoding="utf-8")
        return path


def load_case(path: Path) -> FuzzCase:
    """Load one case file (see :meth:`FuzzCase.from_json`)."""
    return FuzzCase.from_json(Path(path).read_text(encoding="utf-8"))


def load_corpus(corpus_dir: Path) -> List[Tuple[Path, FuzzCase]]:
    """All cases under ``corpus_dir``, sorted by filename."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    entries: List[Tuple[Path, FuzzCase]] = []
    for path in sorted(corpus_dir.glob("*.json")):
        entries.append((path, load_case(path)))
    return entries


__all__ = [
    "CASE_SCHEMA_VERSION",
    "FuzzCase",
    "load_case",
    "load_corpus",
]
