"""Counterexample shrinking: minimize a failing case, keep it failing.

Greedy, deterministic descent along three axes, in the order that
empirically removes the most noise first:

1. **rounds** — for full-round protocols, cut the execution shorter
   while the failure persists (a 3-round counterexample reads in one
   sitting; a 9-round one does not);
2. **faulty set** — drop faulty processors one at a time (fewer
   attackers = smaller attack surface to stare at);
3. **per-message mask** — force individual ``(round, sender)`` slots
   to silence; every slot that can be silenced without losing the
   failure is one fewer message to consider when triaging.

Each candidate is judged by replaying it (the adversary re-derives
its whole attack from the case's seed, and the mask is engineered to
not shift RNG consumption — see :mod:`repro.fuzz.adversary`), so a
shrunk case is *by construction* still failing under the exact replay
path the corpus uses.  The loop re-runs all axes until a full pass
makes no progress or the attempt budget runs out; either way the
result is the last *verified failing* candidate, never a guess.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.fuzz.case import FuzzCase
from repro.fuzz.protocols import get_spec
from repro.types import SystemConfig

#: Replay budget: the shrinker never runs more executions than this.
DEFAULT_MAX_ATTEMPTS = 200

#: Mask exploration never looks past this many rounds (terminating
#: protocols can have large round caps; masking deep rounds of an
#: already-short failure is wasted budget).
_MASK_ROUND_LIMIT = 12

FailurePredicate = Callable[[FuzzCase], bool]


@dataclasses.dataclass(frozen=True)
class ShrinkResult:
    """The minimized case plus provenance."""

    case: FuzzCase
    original: FuzzCase
    attempts: int


def _default_fails(case: FuzzCase) -> bool:
    from repro.fuzz.campaign import replay_case

    return replay_case(case).failed


def shrink_case(
    case: FuzzCase,
    fails: Optional[FailurePredicate] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> ShrinkResult:
    """Minimize ``case`` under ``fails`` (default: replay + oracles).

    ``case`` itself must fail; otherwise the original is returned
    untouched with zero attempts (nothing to shrink — campaigns only
    hand verified failures here, but a caller replaying a stale file
    should get a no-op, not an inverted search).
    """
    judge = fails if fails is not None else _default_fails
    spec = get_spec(case.protocol)
    config = SystemConfig(n=case.n, t=case.t)

    # Materialize the rounds axis: campaign cases carry rounds=None
    # ("the spec default"), which shrinking must turn into a concrete
    # number before it can cut it down.
    current = case
    if current.rounds is None and spec.default_rounds(config) is not None:
        current = current.with_(rounds=spec.default_rounds(config))

    attempts = 0
    if not judge(current):
        return ShrinkResult(case=case, original=case, attempts=1)

    def try_candidate(candidate: FuzzCase) -> bool:
        nonlocal attempts, current
        if attempts >= max_attempts:
            return False
        attempts += 1
        if judge(candidate):
            current = candidate.with_(violations=current.violations)
            return True
        return False

    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False

        # Axis 1: fewer rounds.
        while (
            current.rounds is not None
            and current.rounds > 1
            and try_candidate(current.with_(rounds=current.rounds - 1))
        ):
            progressed = True

        # Axis 2: smaller fault set.
        for process_id in list(current.faulty):
            smaller = tuple(
                pid for pid in current.faulty if pid != process_id
            )
            if try_candidate(current.with_(faulty=smaller)):
                progressed = True

        # Axis 3: silence individual messages.
        round_bound = current.rounds
        if round_bound is None:
            round_bound = spec.max_rounds(config)
        round_bound = min(round_bound, _MASK_ROUND_LIMIT)
        for round_number in range(1, round_bound + 1):
            for sender in current.faulty:
                if (round_number, sender) in current.mask:
                    continue
                masked = current.mask + ((round_number, sender),)
                if try_candidate(current.with_(mask=masked)):
                    progressed = True

    final = current.with_(note=_provenance_note(case, attempts))
    return ShrinkResult(case=final, original=case, attempts=attempts)


def _provenance_note(original: FuzzCase, attempts: int) -> str:
    parts = [f"shrunk from digest {original.digest()} in {attempts} replays"]
    if original.note:
        parts.append(original.note)
    return "; ".join(parts)


__all__ = ["DEFAULT_MAX_ATTEMPTS", "FailurePredicate", "ShrinkResult", "shrink_case"]
