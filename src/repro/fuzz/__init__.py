"""Seeded adversarial fuzzing with differential oracles.

The paper's guarantees are universally quantified over adversary
behaviour; this package searches that space.  One seed determines a
whole campaign — generated scenarios, every adversary decision,
oracle verdicts, shrunk counterexamples — so `repro fuzz --seed S` is
byte-reproducible across runs and worker counts.

Layout:

* :mod:`repro.fuzz.adversary` — the generative :class:`FuzzAdversary`
  sampling per-round Byzantine behaviours from the seed;
* :mod:`repro.fuzz.protocols` — the target registry
  (:class:`ProtocolSpec`): how to run and judge each protocol;
* :mod:`repro.fuzz.oracles` — the paper's predicates as violation
  detectors, plus the cross-protocol differential oracle;
* :mod:`repro.fuzz.campaign` — the deterministic campaign driver and
  the single :func:`replay_case` path;
* :mod:`repro.fuzz.shrink` — greedy counterexample minimization
  (rounds → faulty set → per-message mask);
* :mod:`repro.fuzz.case` — the replayable :class:`FuzzCase` file
  format and the ``tests/fuzz/corpus/`` regression corpus.

See docs/fuzzing.md for the determinism contract and the triage
workflow.
"""

from repro.fuzz.adversary import FuzzAdversary
from repro.fuzz.campaign import (
    CampaignReport,
    CampaignSettings,
    ReplayOutcome,
    replay_case,
    run_campaign,
)
from repro.fuzz.case import FuzzCase, load_case, load_corpus
from repro.fuzz.oracles import ORACLES, STATE_ORACLES, differential_mismatches
from repro.fuzz.protocols import (
    CATALOG_PROTOCOLS,
    DEFAULT_PROTOCOLS,
    ProtocolSpec,
    get_spec,
    protocol_names,
    register,
    unregister,
)
from repro.fuzz.shrink import ShrinkResult, shrink_case

__all__ = [
    "CATALOG_PROTOCOLS",
    "CampaignReport",
    "CampaignSettings",
    "DEFAULT_PROTOCOLS",
    "FuzzAdversary",
    "FuzzCase",
    "ORACLES",
    "ProtocolSpec",
    "ReplayOutcome",
    "STATE_ORACLES",
    "ShrinkResult",
    "differential_mismatches",
    "get_spec",
    "load_case",
    "load_corpus",
    "protocol_names",
    "register",
    "replay_case",
    "run_campaign",
    "shrink_case",
    "unregister",
]
