"""Campaign driver: generate scenarios, execute, judge, shrink, persist.

A campaign is a pure function of ``(settings)`` — same settings, same
report, byte for byte, for any worker count.  The moving parts:

1. **Scenario generation.**  Scenarios (input vector, fault set,
   execution seed) are drawn from ``derive_rng(seed, "fuzz", group)``
   per differential group, so every member of a group fuzzes the
   *identical* scenario list — the precondition for the differential
   oracle — and adding a protocol to a campaign never perturbs
   another group's scenarios.
2. **Execution.**  Each protocol's cases become
   :class:`~repro.analysis.parallel.SweepCell`s fanned out through
   :func:`~repro.analysis.parallel.execute_cells`, which already pins
   byte-identical outcomes for any worker count.
3. **Judging.**  All oracles run in the campaign parent over the
   returned outcomes (pool workers never judge), so verdict strings
   are deterministic and a worker-count change cannot reorder them.
4. **Consistency phase.**  State oracles (Theorem 9) need live
   process objects, which portable pool results deliberately drop —
   so a fixed-size prefix of each stateful protocol's cases is
   re-executed serially (same seeds → same executions) and judged
   live.  The sampled count is reported; nothing is silently capped.
5. **Shrink & persist.**  Failing cases are minimized
   (:mod:`repro.fuzz.shrink`) and written to the corpus as replayable
   regression files.

:func:`replay_case` is the single re-execution path used by the
shrinker, the corpus pytest replayer, and ``repro fuzz --replay``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro.obs.core as _obs
from repro.analysis.parallel import SweepCell, SweepContext, execute_cells, run_cell
from repro.arrays.store import release_shared_stores
from repro.errors import ConfigurationError
from repro.fuzz.adversary import FuzzAdversary
from repro.fuzz.case import FuzzCase
from repro.fuzz.oracles import differential_mismatches, run_oracles
from repro.fuzz.protocols import DEFAULT_PROTOCOLS, ProtocolSpec, get_spec
from repro.runtime.engine import ExecutionResult
from repro.runtime.rng import derive_rng
from repro.types import SystemConfig

REPORT_SCHEMA_VERSION = 1

#: Name under which the fuzz adversary appears in sweep cells.
_ADVERSARY_NAME = "fuzz"


@dataclasses.dataclass(frozen=True)
class CampaignSettings:
    """Everything that determines a campaign (and hence its report)."""

    seed: int = 0
    cases: int = 25  # scenarios per protocol
    protocols: Tuple[str, ...] = DEFAULT_PROTOCOLS
    n: int = 4
    t: int = 1
    workers: int = 1
    shrink: bool = False
    corpus_dir: Optional[str] = None
    consistency_sample: int = 8
    # Round-engine backend every execution runs under ("lockstep",
    # "async", "async:<max_delay>[:<salt>]"); None honours
    # REPRO_SCHEDULER.  The scheduler's delay/reordering/round-skew
    # axis rides on its own RNG substream, so the same settings fuzz
    # the identical scenario list under every backend.
    scheduler: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class CaseVerdict:
    """One judged execution."""

    case: FuzzCase
    violations: Tuple[str, ...]

    @property
    def failed(self) -> bool:
        return bool(self.violations)


@dataclasses.dataclass
class CampaignReport:
    """The deterministic output of one campaign."""

    seed: int
    n: int
    t: int
    protocols: Tuple[str, ...]
    cases_per_protocol: int
    executions: int
    failures: List[Dict[str, Any]]
    differential_failures: List[Dict[str, Any]]
    consistency_checked: Dict[str, int]
    differential_checked: int
    shrunk: List[Dict[str, Any]]
    schema_version: int = REPORT_SCHEMA_VERSION

    @property
    def clean(self) -> bool:
        return not self.failures and not self.differential_failures

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} n={self.n} t={self.t} "
            f"protocols={','.join(self.protocols)}",
            f"  executions: {self.executions} "
            f"({self.cases_per_protocol} cases/protocol)",
        ]
        for protocol in self.protocols:
            checked = self.consistency_checked.get(protocol)
            if checked is not None:
                lines.append(
                    f"  consistency phase [{protocol}]: {checked} of "
                    f"{self.cases_per_protocol} cases re-run live "
                    "(state oracles; prefix sample, not exhaustive)"
                )
        if self.differential_checked:
            lines.append(
                f"  differential scenarios cross-checked: "
                f"{self.differential_checked}"
            )
        if self.clean:
            lines.append("  all oracles passed")
        for failure in self.failures:
            lines.append(
                f"  FAIL {failure['protocol']} case {failure['digest']} "
                f"seed={failure['seed']} faulty={failure['faulty']}"
            )
            for violation in failure["violations"]:
                lines.append(f"    - {violation}")
        for failure in self.differential_failures:
            lines.append(
                f"  DIFF-FAIL group {failure['group']} scenario "
                f"#{failure['scenario']} seed={failure['seed']}"
            )
            for violation in failure["violations"]:
                lines.append(f"    - {violation}")
        for entry in self.shrunk:
            lines.append(
                f"  shrunk {entry['protocol']} -> rounds={entry['rounds']} "
                f"faulty={entry['faulty']} mask={entry['mask']} "
                f"file={entry['file']}"
            )
        return "\n".join(lines) + "\n"


# -- scenario generation -----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _Scenario:
    index: int
    inputs: Tuple[Tuple[int, Any], ...]
    faulty: Tuple[int, ...]
    seed: int


def _group_plan(
    settings: CampaignSettings,
) -> List[Tuple[str, List[ProtocolSpec]]]:
    """Campaign protocols grouped by differential group, order kept."""
    groups: List[Tuple[str, List[ProtocolSpec]]] = []
    by_key: Dict[str, List[ProtocolSpec]] = {}
    for name in settings.protocols:
        spec = get_spec(name)
        key = spec.differential_group or spec.name
        if key not in by_key:
            by_key[key] = []
            groups.append((key, by_key[key]))
        by_key[key].append(spec)
    return groups


def _generate_scenarios(
    settings: CampaignSettings, group: str, sampler_spec: ProtocolSpec
) -> List[_Scenario]:
    config = SystemConfig(n=settings.n, t=settings.t)
    rng = derive_rng(settings.seed, "fuzz", group)
    scenarios: List[_Scenario] = []
    for index in range(settings.cases):
        inputs = sampler_spec.sample_inputs(config, rng)
        fault_count = int(rng.integers(0, settings.t + 1))
        faulty = tuple(sorted(
            int(pid) + 1 for pid in rng.permutation(settings.n)[:fault_count]
        ))
        case_seed = int(rng.integers(0, 2 ** 31))
        scenarios.append(_Scenario(
            index=index,
            inputs=tuple(sorted(inputs.items())),
            faulty=faulty,
            seed=case_seed,
        ))
    return scenarios


# -- execution ---------------------------------------------------------------


def _context_for(
    spec: ProtocolSpec,
    config: SystemConfig,
    rounds: Optional[int],
    mask: Tuple[Tuple[int, int], ...] = (),
    scheduler: Optional[str] = None,
) -> SweepContext:
    def maker(faulty: Sequence[int]) -> FuzzAdversary:
        return FuzzAdversary(faulty, palette=spec.palette, mask=mask)

    cap = spec.max_rounds(config)
    if rounds is not None:
        cap = max(cap, rounds + 1)
    return SweepContext(
        factory=spec.build(config),
        config=config,
        adversary_makers=((_ADVERSARY_NAME, maker),),
        predicate=None,
        max_rounds=cap,
        run_full_rounds=rounds,
        sizer=None,
        is_null=None,
        scheduler=scheduler,
    )


def _cell_for(case: FuzzCase, index: int) -> SweepCell:
    return SweepCell(
        index=index,
        inputs=case.input_map,
        faulty=case.faulty,
        adversary_name=_ADVERSARY_NAME,
        adversary_index=0,
        seed=case.seed,
    )


@dataclasses.dataclass(frozen=True)
class ReplayOutcome:
    """A replayed case with its live result and oracle verdicts."""

    case: FuzzCase
    result: ExecutionResult
    violations: Tuple[str, ...]

    @property
    def failed(self) -> bool:
        return bool(self.violations)


def replay_case(
    case: FuzzCase, scheduler: Optional[str] = None
) -> ReplayOutcome:
    """Re-execute one case serially with live processes and judge it.

    The single replay path: the shrinker's failure predicate, the
    corpus pytest replayer, and ``repro fuzz --replay`` all call this,
    so a saved case means the same thing everywhere.  ``scheduler``
    selects the round-engine backend; a corpus case must replay to the
    same verdicts under every backend (the differential gate in
    tests/fuzz/test_corpus.py and ``repro fuzz --replay --scheduler``).
    """
    spec = get_spec(case.protocol)
    config = SystemConfig(n=case.n, t=case.t)
    unsupported = spec.supports(config)
    if unsupported:
        raise ConfigurationError(
            f"case {case.filename()} targets {case.protocol} at an "
            f"unsupported configuration: {unsupported}"
        )
    rounds = case.rounds if case.rounds is not None else spec.default_rounds(config)
    context = _context_for(
        spec, config, rounds, mask=case.mask, scheduler=scheduler
    )
    outcome = run_cell(context, _cell_for(case, index=0), portable=False)
    violations = tuple(run_oracles(
        spec.oracles + spec.state_oracles, outcome.result
    ))
    return ReplayOutcome(case=case, result=outcome.result, violations=violations)


# -- the campaign ------------------------------------------------------------


def run_campaign(settings: CampaignSettings) -> CampaignReport:
    """Run one deterministic fuzz campaign and return its report."""
    config = SystemConfig(n=settings.n, t=settings.t)
    for name in settings.protocols:
        unsupported = get_spec(name).supports(config)
        if unsupported:
            raise ConfigurationError(f"{name}: {unsupported}")

    observer = _obs.ACTIVE
    failures: List[Dict[str, Any]] = []
    differential_failures: List[Dict[str, Any]] = []
    consistency_checked: Dict[str, int] = {}
    shrunk_entries: List[Dict[str, Any]] = []
    failing_cases: List[FuzzCase] = []
    executions = 0
    differential_checked = 0
    protocol_seq = 0

    with _obs.span("fuzz.campaign"):
        for group, specs in _group_plan(settings):
            scenarios = _generate_scenarios(settings, group, specs[0])
            group_results: Dict[str, List[ExecutionResult]] = {}
            for spec in specs:
                cases = [
                    FuzzCase.build(
                        protocol=spec.name,
                        n=settings.n,
                        t=settings.t,
                        seed=scenario.seed,
                        inputs=scenario.inputs,
                        faulty=scenario.faulty,
                    )
                    for scenario in scenarios
                ]
                verdicts, results = _run_protocol_cases(
                    spec, config, cases, settings.workers,
                    scheduler=settings.scheduler,
                )
                executions += len(results)
                group_results[spec.name] = results
                if observer is not None:
                    observer.count("fuzz.cases", len(results))
                    if observer.events_on:
                        # Telemetry rollup per finished protocol so an
                        # interrupted campaign's log still shows which
                        # protocols completed and at what cost.
                        observer.emit_rollup(
                            "protocol", protocol_seq, len(results)
                        )
                protocol_seq += 1
                for verdict in verdicts:
                    if verdict.failed:
                        failures.append(_failure_entry(verdict))
                        failing_cases.append(verdict.case.with_(
                            violations=verdict.violations
                        ))
                if spec.state_oracles:
                    checked, state_verdicts = _consistency_phase(
                        spec, config, cases, settings.consistency_sample,
                        scheduler=settings.scheduler,
                    )
                    consistency_checked[spec.name] = checked
                    for verdict in state_verdicts:
                        if verdict.failed:
                            failures.append(_failure_entry(verdict))
                            failing_cases.append(verdict.case.with_(
                                violations=verdict.violations
                            ))
            if len(specs) > 1:
                differential_checked += len(scenarios)
                differential_failures.extend(_differential_phase(
                    group, specs, scenarios, group_results
                ))
            # Each group's interned state is unrelated to the next
            # group's, so release the shared stores between them
            # (gauges recorded, persistent-cache deltas flushed)
            # instead of letting the process-wide registry grow for
            # the whole campaign.
            release_shared_stores()

        if settings.shrink and failing_cases:
            with _obs.span("fuzz.shrink"):
                shrunk_entries = _shrink_phase(failing_cases, settings)

    report = CampaignReport(
        seed=settings.seed,
        n=settings.n,
        t=settings.t,
        protocols=tuple(settings.protocols),
        cases_per_protocol=settings.cases,
        executions=executions,
        failures=failures,
        differential_failures=differential_failures,
        consistency_checked=consistency_checked,
        differential_checked=differential_checked,
        shrunk=shrunk_entries,
    )
    if observer is not None and observer.events_on:
        observer.emit(
            "fuzz_campaign",
            seed=settings.seed,
            executions=executions,
            failures=len(failures) + len(differential_failures),
            shrunk=len(shrunk_entries),
        )
    return report


def _run_protocol_cases(
    spec: ProtocolSpec,
    config: SystemConfig,
    cases: List[FuzzCase],
    workers: int,
    scheduler: Optional[str] = None,
) -> Tuple[List[CaseVerdict], List[ExecutionResult]]:
    rounds = spec.default_rounds(config)
    context = _context_for(spec, config, rounds, scheduler=scheduler)
    cells = [_cell_for(case, index) for index, case in enumerate(cases)]
    with _obs.span("fuzz.execute"):
        outcomes = execute_cells(context, cells, workers)
    verdicts: List[CaseVerdict] = []
    results: List[ExecutionResult] = []
    for case, outcome in zip(cases, outcomes):
        violations = tuple(run_oracles(spec.oracles, outcome.result))
        if outcome.error:
            violations = violations + (
                f"[engine] execution error: {outcome.error}",
            )
        verdicts.append(CaseVerdict(case=case, violations=violations))
        results.append(outcome.result)
    return verdicts, results


def _consistency_phase(
    spec: ProtocolSpec,
    config: SystemConfig,
    cases: List[FuzzCase],
    sample: int,
    scheduler: Optional[str] = None,
) -> Tuple[int, List[CaseVerdict]]:
    """Serially re-run a case prefix with live processes (state oracles).

    Re-running is sound because executions are pure functions of their
    seeds: the live run is the very execution the pool judged, with
    its states still attached.
    """
    checked = min(sample, len(cases))
    rounds = spec.default_rounds(config)
    context = _context_for(spec, config, rounds, scheduler=scheduler)
    verdicts: List[CaseVerdict] = []
    with _obs.span("fuzz.consistency"):
        for index in range(checked):
            outcome = run_cell(
                context, _cell_for(cases[index], index), portable=False
            )
            violations = tuple(run_oracles(spec.state_oracles, outcome.result))
            verdicts.append(CaseVerdict(case=cases[index], violations=violations))
    return checked, verdicts


def _differential_phase(
    group: str,
    specs: List[ProtocolSpec],
    scenarios: List[_Scenario],
    group_results: Dict[str, List[ExecutionResult]],
) -> List[Dict[str, Any]]:
    failures: List[Dict[str, Any]] = []
    with _obs.span("fuzz.differential"):
        for scenario in scenarios:
            per_protocol = {
                spec.name: group_results[spec.name][scenario.index]
                for spec in specs
            }
            violations = differential_mismatches(per_protocol)
            if violations:
                failures.append({
                    "group": group,
                    "scenario": scenario.index,
                    "seed": scenario.seed,
                    "faulty": list(scenario.faulty),
                    "violations": violations,
                })
    return failures


def _shrink_phase(
    failing_cases: List[FuzzCase], settings: CampaignSettings
) -> List[Dict[str, Any]]:
    from repro.fuzz.shrink import shrink_case

    entries: List[Dict[str, Any]] = []
    seen_digests: Dict[str, bool] = {}
    for case in failing_cases:
        result = shrink_case(case)
        shrunk = result.case
        if shrunk.digest() in seen_digests:
            continue
        seen_digests[shrunk.digest()] = True
        entry: Dict[str, Any] = {
            "protocol": shrunk.protocol,
            "digest": shrunk.digest(),
            "seed": shrunk.seed,
            "rounds": shrunk.rounds,
            "faulty": list(shrunk.faulty),
            "mask": [list(pair) for pair in shrunk.mask],
            "violations": list(shrunk.violations),
            "attempts": result.attempts,
            "file": None,
        }
        if settings.corpus_dir:
            from pathlib import Path

            path = shrunk.save(Path(settings.corpus_dir))
            entry["file"] = path.name
        entries.append(entry)
    return entries


def _failure_entry(verdict: CaseVerdict) -> Dict[str, Any]:
    return {
        "protocol": verdict.case.protocol,
        "digest": verdict.case.digest(),
        "seed": verdict.case.seed,
        "faulty": list(verdict.case.faulty),
        "violations": list(verdict.violations),
    }


__all__ = [
    "CampaignReport",
    "CampaignSettings",
    "CaseVerdict",
    "ReplayOutcome",
    "replay_case",
    "run_campaign",
]
