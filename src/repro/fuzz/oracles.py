"""Execution oracles: the paper's guarantees as violation detectors.

Every oracle takes one finished execution and returns a list of
human-readable violation strings (empty = the execution is fine),
mirroring the style of :mod:`repro.avalanche.conditions`.  Oracles
never raise on a judged failure — a raised exception means the oracle
itself could not run, which campaigns surface separately from
protocol violations.

Two tiers:

* **Result oracles** (:data:`ORACLES`) read only the portable slice
  of an :class:`~repro.runtime.engine.ExecutionResult` — decisions,
  decision rounds, inputs, fault set — so they run in the campaign
  parent over pool-transported outcomes.
* **State oracles** (:data:`STATE_ORACLES`) additionally need live
  process objects (the Theorem 9 consistency check reads
  full-information states), so campaigns run them in a serial
  consistency phase and during corpus replay.

The cross-protocol **differential oracle** is separate
(:func:`differential_mismatches`): it compares the runs of one
scenario across a differential group.  Its claims are deliberately
the *sound* subset of "compact-BA and EIG co-decide":

* with **no faulty processors**, the compact protocol's simulation is
  exact (Theorem 9 with ``F`` empty leaves the adversary no moves),
  so the two runs must decide identically, processor by processor;
* with **unanimous correct inputs**, validity pins both protocols to
  that value, so they must co-decide it even under faults.

Under faults *with mixed inputs*, equality is not a theorem: the
adversary adapts to each protocol's traffic, so the two executions
see genuinely different attacks and may legitimately settle on
different (individually correct) values — asserting equality there
would make the fuzzer cry wolf.  docs/fuzzing.md walks through this.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

from repro.core.predicates import agreement_predicate, validity_predicate
from repro.runtime.engine import ExecutionResult
from repro.types import BOTTOM, Value, is_bottom

#: An oracle judges one execution: violations, empty when clean.
Oracle = Callable[[ExecutionResult], List[str]]

_agreement = agreement_predicate()
_validity = validity_predicate()


def _inputs_tuple(result: ExecutionResult) -> Tuple[Value, ...]:
    return tuple(
        result.inputs.get(process_id, BOTTOM)
        for process_id in result.config.process_ids
    )


def check_decided(result: ExecutionResult) -> List[str]:
    """Termination: every correct processor reached a decision."""
    return [
        f"correct processor {process_id} never decided "
        f"(ran {result.rounds} rounds)"
        for process_id in result.correct_ids
        if is_bottom(result.decisions.get(process_id, BOTTOM))
    ]


def check_agreement(result: ExecutionResult) -> List[str]:
    """No two correct processors decided different values."""
    if _agreement(
        result.answer_vector(), frozenset(result.faulty_ids),
        _inputs_tuple(result),
    ):
        return []
    decided = {
        process_id: result.decisions.get(process_id, BOTTOM)
        for process_id in result.correct_ids
    }
    return [f"agreement violated: correct decisions {decided!r}"]


def check_validity(result: ExecutionResult) -> List[str]:
    """A unanimous correct input must be the decided value."""
    if _validity(
        result.answer_vector(), frozenset(result.faulty_ids),
        _inputs_tuple(result),
    ):
        return []
    return [
        "validity violated: unanimous correct input was not decided "
        f"(inputs {result.inputs!r}, decisions {result.decisions!r})"
    ]


def check_avalanche(result: ExecutionResult) -> List[str]:
    """Protocol 2's three conditions, verbatim from the checkers."""
    from repro.avalanche.conditions import (
        check_avalanche_condition,
        check_consensus_condition,
        check_plausibility_condition,
    )

    correct = result.correct_ids
    violations = list(check_avalanche_condition(
        result.decisions, result.decision_rounds, correct, result.rounds
    ))
    violations.extend(check_consensus_condition(
        result.decisions, result.decision_rounds, result.inputs, correct,
        result.rounds,
    ))
    violations.extend(check_plausibility_condition(
        result.decisions, result.inputs, correct
    ))
    return violations


def check_crusader(result: ExecutionResult) -> List[str]:
    """Crusader agreement: one common value, or SENDER_FAULTY; a
    correct source's value is mandatory for everyone."""
    from repro.agreement.crusader import SENDER_FAULTY

    source = result.config.n  # the registry's convention
    violations: List[str] = []
    values = sorted(
        {
            result.decisions.get(process_id, BOTTOM)
            for process_id in result.correct_ids
        } - {SENDER_FAULTY, BOTTOM},
        key=repr,
    )
    if len(values) > 1:
        violations.append(
            f"crusader agreement violated: distinct values decided {values!r}"
        )
    if source not in result.faulty_ids:
        required = result.inputs[source]
        for process_id in result.correct_ids:
            decision = result.decisions.get(process_id, BOTTOM)
            if decision != required:
                violations.append(
                    f"correct source sent {required!r} but processor "
                    f"{process_id} decided {decision!r}"
                )
    return violations


def check_weak_validity(result: ExecutionResult) -> List[str]:
    """Lamport's weakened validity: binding only in fault-free
    executions with unanimous inputs."""
    if result.faulty_ids:
        return []
    inputs = {result.inputs[process_id] for process_id in result.correct_ids}
    if len(inputs) != 1:
        return []
    (required,) = inputs
    return [
        f"weak validity violated: fault-free unanimous input {required!r} "
        f"but processor {process_id} decided "
        f"{result.decisions.get(process_id, BOTTOM)!r}"
        for process_id in result.correct_ids
        if result.decisions.get(process_id, BOTTOM) != required
    ]


def check_firing_squad(result: ExecutionResult) -> List[str]:
    """Simultaneity, safety and liveness of the firing squad."""
    from repro.agreement.firing_squad import fire_deadline

    violations: List[str] = []
    fired = {
        process_id: result.decision_rounds.get(process_id)
        for process_id in result.correct_ids
        if not is_bottom(result.decisions.get(process_id, BOTTOM))
    }
    go_rounds = [
        result.inputs[process_id]
        for process_id in result.correct_ids
    ]
    if len(set(fired.values())) > 1:
        violations.append(
            f"simultaneity violated: correct fire rounds {fired!r}"
        )
    if all(is_bottom(go) for go in go_rounds) and fired:
        violations.append(
            f"safety violated: no correct GO stimulus but {sorted(fired)} fired"
        )
    if not any(is_bottom(go) for go in go_rounds) and go_rounds:
        deadline = fire_deadline(max(go_rounds), result.config.t)
        if result.rounds >= deadline:
            for process_id in result.correct_ids:
                round_fired = fired.get(process_id)
                if round_fired is None:
                    violations.append(
                        f"liveness violated: all correct GOs in by round "
                        f"{max(go_rounds)} but processor {process_id} never "
                        f"fired within {result.rounds} rounds"
                    )
                elif round_fired > deadline:
                    violations.append(
                        f"liveness violated: processor {process_id} fired in "
                        f"round {round_fired} > deadline {deadline}"
                    )
    return violations


def check_fullinfo_consistency_oracle(result: ExecutionResult) -> List[str]:
    """Theorem 9 applied to a live full-information run.

    The whole state family is recovered from each processor's *final*
    state by self-component unfolding: processor ``p``'s round-``j``
    state carries its own round-``j-1`` state in component ``p`` (it
    receives its own broadcast), so ``states[j-1] = states[j][p-1]``
    down to the round-0 input.  The recovered family is then checked
    against :func:`repro.core.simulation.check_fullinfo_consistency`
    exactly as an offline verifier would check a claimed execution.
    """
    from repro.core.simulation import SimulationMismatch, check_fullinfo_consistency

    full_states: Dict[int, List] = {}
    for process_id in result.correct_ids:
        process = result.processes[process_id]
        state = getattr(process, "state", None)
        if state is None:
            return [
                "fullinfo consistency oracle needs live full-information "
                f"processes; got {type(process).__name__} (portable result?)"
            ]
        states: List = [None] * (result.rounds + 1)
        for round_number in range(result.rounds, 0, -1):
            states[round_number] = state
            state = state[process_id - 1]
        states[0] = state
        full_states[process_id] = states
    try:
        check_fullinfo_consistency(
            full_states,
            result.correct_ids,
            result.inputs,
            result.config.n,
            value_alphabet=(0, 1),
        )
    except SimulationMismatch as mismatch:
        return [f"fullinfo consistency violated: {mismatch}"]
    return []


#: Result oracles by registry name (see ProtocolSpec.oracles).
ORACLES: Dict[str, Oracle] = {
    "decided": check_decided,
    "agreement": check_agreement,
    "validity": check_validity,
    "avalanche": check_avalanche,
    "crusader": check_crusader,
    "weak-validity": check_weak_validity,
    "firing-squad": check_firing_squad,
}

#: State oracles by registry name (see ProtocolSpec.state_oracles).
STATE_ORACLES: Dict[str, Oracle] = {
    "fullinfo-consistency": check_fullinfo_consistency_oracle,
}


def run_oracles(names: Tuple[str, ...], result: ExecutionResult) -> List[str]:
    """All violations from the named result oracles, prefixed by name."""
    violations: List[str] = []
    for name in names:
        oracle = ORACLES.get(name) or STATE_ORACLES.get(name)
        if oracle is None:
            violations.append(f"[{name}] unknown oracle")
            continue
        violations.extend(f"[{name}] {text}" for text in oracle(result))
    return violations


def differential_mismatches(
    results: Mapping[str, ExecutionResult],
) -> List[str]:
    """Cross-protocol oracle over one scenario's runs (see module doc).

    ``results`` maps protocol name to its execution of the *same*
    scenario (identical inputs, fault set and seed, guaranteed by the
    campaign's shared-scenario generation for differential groups).
    """
    names = sorted(results)
    if len(names) < 2:
        return []
    violations: List[str] = []
    reference = results[names[0]]
    faulty = frozenset(reference.faulty_ids)
    correct_inputs = {
        reference.inputs[process_id]
        for process_id in reference.config.process_ids
        if process_id not in faulty
    }
    unanimous = (
        sorted(correct_inputs, key=repr)[0]
        if len(correct_inputs) == 1
        else None
    )
    for name in names[1:]:
        other = results[name]
        if other.inputs != reference.inputs or frozenset(
            other.faulty_ids
        ) != faulty:
            violations.append(
                f"differential scenario mismatch between {names[0]} and "
                f"{name}: inputs or fault sets differ (campaign bug)"
            )
            continue
        if not faulty and other.decisions != reference.decisions:
            violations.append(
                f"fault-free divergence: {names[0]} decided "
                f"{reference.decisions!r} but {name} decided "
                f"{other.decisions!r}"
            )
    if unanimous is not None and not is_bottom(unanimous):
        for name in names:
            wrong = {
                process_id: results[name].decisions.get(process_id, BOTTOM)
                for process_id in results[name].correct_ids
                if results[name].decisions.get(process_id, BOTTOM) != unanimous
            }
            if wrong:
                violations.append(
                    f"co-decision violated: unanimous correct input "
                    f"{unanimous!r} but {name} decided {wrong!r}"
                )
    return violations


__all__ = [
    "ORACLES",
    "STATE_ORACLES",
    "Oracle",
    "check_agreement",
    "check_avalanche",
    "check_crusader",
    "check_decided",
    "check_firing_squad",
    "check_fullinfo_consistency_oracle",
    "check_validity",
    "check_weak_validity",
    "differential_mismatches",
    "run_oracles",
]
