"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user the paper's artifacts without writing code:

* ``table1``    — regenerate Table 1 for any ``k``,
* ``run-ba``    — run compact Byzantine agreement with a chosen
  adversary and print decisions, rounds and metered bits,
* ``compare``   — the Section 5.6 comparison (analytic and measured),
* ``tradeoff``  — the eps <-> k table,
* ``crossover`` — the exponential-vs-polynomial growth figure,
* ``avalanche`` — a standalone avalanche agreement demo,
* ``bench``     — the perf-trajectory suite of
  :mod:`repro.analysis.bench`; writes ``BENCH_<date>.json``,
* ``cache``     — inspect the persistent structural-sharing cache of
  :mod:`repro.arrays.persist` (stats, verify, gc; see docs/perf.md),
* ``events``    — summarize / profile / validate a structured event
  log recorded via ``run-ba --events`` or ``bench --events``
  (see :mod:`repro.obs` and docs/observability.md),
* ``lint``      — the protocol-aware static analysis of
  :mod:`repro.statics` (determinism, purity and catalog contracts),
* ``fuzz``      — seeded adversarial campaigns with differential
  oracles and counterexample shrinking (see docs/fuzzing.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional

from repro.adversary import (
    CollusionAdversary,
    EquivocatingAdversary,
    MalformedArrayAdversary,
    PassiveAdversary,
    RandomGarbageAdversary,
    SilentAdversary,
    VoteSplitterAdversary,
)
from repro.analysis.compare import comparison_table, measured_comparison
from repro.analysis.figures import crossover_chart
from repro.analysis.report import format_table
from repro.analysis.tradeoff import epsilon_table
from repro.avalanche.protocol import avalanche_factory
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.core.rounds import BlockSchedule
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

ADVERSARY_CHOICES = {
    "none": lambda faulty: PassiveAdversary(),
    "silent": SilentAdversary,
    "garbage": RandomGarbageAdversary,
    "equivocator": lambda faulty: EquivocatingAdversary(faulty, 0, 1),
    "splitter": VoteSplitterAdversary,
    "malformed": MalformedArrayAdversary,
    "collusion": CollusionAdversary,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Coan (PODC 1986): communication-efficient "
            "canonical forms for fault-tolerant protocols."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    table1 = commands.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--k", type=int, default=2)
    table1.add_argument("--rounds", type=int, default=14)

    run_ba = commands.add_parser(
        "run-ba", help="run compact Byzantine agreement"
    )
    run_ba.add_argument("--t", type=int, default=2)
    run_ba.add_argument("--n", type=int, default=None)
    run_ba.add_argument("--k", type=int, default=None)
    run_ba.add_argument("--epsilon", type=float, default=None)
    run_ba.add_argument(
        "--adversary", choices=sorted(ADVERSARY_CHOICES), default="equivocator"
    )
    run_ba.add_argument("--seed", type=int, default=0)
    run_ba.add_argument(
        "--authenticated",
        action="store_true",
        help="use the signed, zero-overhead variant (t + 1 rounds)",
    )
    run_ba.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="record the structured event log to PATH (JSONL, schema in "
        "docs/observability.md) plus the execution trace to "
        "PATH.trace.jsonl",
    )
    run_ba.add_argument(
        "--events-cap",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate the event log into PATH.part-N files once a file "
        "would exceed BYTES (requires --events)",
    )
    run_ba.add_argument(
        "--trace",
        action="store_true",
        help="also emit causal deliver edges into the event log "
        "(requires --events; see docs/observability.md, 'Causal "
        "tracing')",
    )
    run_ba.add_argument(
        "--include-adversary-traffic",
        action="store_true",
        help="also meter faulty processors' traffic (diagnostics; the "
        "paper's bounds meter correct traffic only)",
    )
    run_ba.add_argument(
        "--scheduler",
        default=None,
        metavar="BACKEND",
        help="round-engine backend: 'lockstep' (default), 'async', or "
        "'async:<max_delay>[:<salt>]' — communication-closed protocols "
        "produce the identical execution under every backend "
        "(docs/runtime.md); default honours REPRO_SCHEDULER",
    )

    compare = commands.add_parser(
        "compare", help="the Section 5.6 comparison"
    )
    compare.add_argument("--t", type=int, default=2)
    compare.add_argument(
        "--measured", action="store_true", help="also run every protocol"
    )

    tradeoff = commands.add_parser("tradeoff", help="the eps <-> k table")
    tradeoff.add_argument("--t", type=int, default=4)

    crossover = commands.add_parser(
        "crossover", help="the growth-curves figure"
    )
    crossover.add_argument("--max-t", type=int, default=8)
    crossover.add_argument("--k", type=int, default=1)

    avalanche = commands.add_parser(
        "avalanche", help="standalone avalanche agreement demo"
    )
    avalanche.add_argument("--t", type=int, default=2)
    avalanche.add_argument(
        "--adversary", choices=sorted(ADVERSARY_CHOICES), default="splitter"
    )
    avalanche.add_argument("--rounds", type=int, default=8)

    bench = commands.add_parser(
        "bench",
        help="run the perf suite and write BENCH_<date>.json "
        "(see docs/perf.md)",
    )
    bench.add_argument(
        "mode",
        nargs="?",
        choices=("trend",),
        default=None,
        help="'trend': tabulate every committed BENCH_*.json as a "
        "perf trajectory instead of running the suite",
    )
    bench.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="directory holding BENCH_*.json files (trend mode; "
        "default: current directory)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="wall-time drift fraction to flag in trend mode "
        "(default 0.25)",
    )
    bench.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="trend report format (trend mode only)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small grids for CI smoke runs (seconds, not minutes)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep process-pool size (default: all available cores, "
        "capped at 4; 1 = serial reference)",
    )
    bench.add_argument(
        "--suite",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this suite (repeatable); default: all suites",
    )
    bench.add_argument(
        "--output",
        default=None,
        help="output JSON path (default: ./BENCH_<date>.json)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="baseline BENCH_*.json to gate against; exits non-zero on "
        "a >25%% per-suite wall-time regression or any drift in the "
        "deterministic counters (executions, bits, rounds); when both "
        "reports carry span profiles the top regressions are listed "
        "(informational, never gating)",
    )
    bench.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="record the suite's structured event log to PATH (JSONL)",
    )
    bench.add_argument(
        "--trace",
        action="store_true",
        help="also record causal deliver edges for every serial "
        "envelope delivery (requires --events; see "
        "docs/observability.md)",
    )
    bench.add_argument(
        "--kernel",
        choices=("flat", "python"),
        default=None,
        help="force the array kernel for this run (default: the "
        "REPRO_KERNEL environment variable, else flat); the report "
        "records which kernel produced it",
    )
    bench.add_argument(
        "--no-profile",
        action="store_true",
        help="run without the observer (no span profiles in the "
        "report); use when wall times must exclude instrumentation "
        "overhead",
    )
    bench.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="run every suite cold-then-warm against the persistent "
        "structural-sharing cache rooted at DIR (see docs/perf.md); "
        "recorded numbers are the cold leg's, the warm wall time and "
        "persist.* counter deltas land in details.persist",
    )

    cache = commands.add_parser(
        "cache",
        help="inspect the persistent structural-sharing cache "
        "(see docs/perf.md)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, description in (
        ("stats", "manifest summary: segments, entries, bytes, widths"),
        ("verify", "re-hash segments and re-derive node digests"),
        ("gc", "prune segments older than --keep-days"),
    ):
        sub = cache_sub.add_parser(name, help=description)
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="cache directory (default: the REPRO_CACHE_DIR "
            "environment variable)",
        )
        sub.add_argument(
            "--format",
            choices=("text", "json"),
            default="text",
            help="report format",
        )
        if name == "verify":
            sub.add_argument(
                "--sample",
                type=int,
                default=0,
                help="re-derive digests for at most this many nodes "
                "segments (0 = all)",
            )
        if name == "gc":
            sub.add_argument(
                "--keep-days",
                type=float,
                required=True,
                help="prune segments whose mtime is older than this "
                "many days",
            )

    events = commands.add_parser(
        "events",
        help="query a recorded event log (see docs/observability.md)",
    )
    events_sub = events.add_subparsers(dest="events_command", required=True)
    for name, description in (
        ("summarize", "per-round traffic, cache hit rates, counters"),
        ("profile", "span rollup and worker utilization"),
        ("validate", "check every record against event schema v1"),
    ):
        sub = events_sub.add_parser(name, help=description)
        sub.add_argument(
            "path",
            help="event log to read: a JSONL file (rotated .part-N "
            "siblings are included automatically) or a directory of "
            "logs",
        )
        sub.add_argument(
            "--format",
            choices=("text", "json"),
            default="text",
            help="report format",
        )
    export = events_sub.add_parser(
        "export",
        help="export to Chrome-trace/Perfetto JSON or a speedscope "
        "profile (see docs/observability.md, 'Exporters')",
    )
    export.add_argument(
        "path",
        help="event log to read (file, rotated parts, or directory)",
    )
    export.add_argument(
        "--format",
        choices=("chrome", "speedscope"),
        default="chrome",
        help="output format: 'chrome' loads in Perfetto / "
        "chrome://tracing, 'speedscope' at speedscope.app",
    )
    export.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="output JSON path (default: stdout)",
    )

    status = commands.add_parser(
        "status",
        help="summarize an in-flight or finished run from its event-"
        "log artifacts alone (progress, per-worker throughput, cache "
        "hit rates, top spans)",
    )
    status.add_argument(
        "path",
        help="event log: a JSONL file, a rotated .part-N sequence, or "
        "a directory of logs (torn final lines of a killed run are "
        "tolerated)",
    )
    status.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    status.add_argument(
        "--top-spans",
        type=int,
        default=5,
        help="how many spans to list (default 5)",
    )

    lint = commands.add_parser(
        "lint",
        help="protocol-aware static analysis (see docs/statics.md)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (json is the machine-readable schema, "
        "sarif is SARIF 2.1.0 for code-scanning upload)",
    )
    lint.add_argument(
        "--root",
        default=None,
        help="package directory to lint (default: the installed repro "
        "package)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help="suppression file (default: tools/lint_baseline.json if "
        "present)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept all current findings into the baseline file",
    )
    lint.add_argument(
        "--certificates",
        default=None,
        metavar="PATH",
        help="also write per-protocol closedness certificates (JSON) "
        "to PATH",
    )

    fuzz = commands.add_parser(
        "fuzz",
        help="seeded adversarial fuzzing (see docs/fuzzing.md)",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--cases",
        type=int,
        default=25,
        help="scenarios per protocol (default 25)",
    )
    fuzz.add_argument(
        "--protocol",
        action="append",
        default=None,
        metavar="NAME",
        help="fuzz this registered protocol (repeatable; default: "
        "avalanche, compact-ba, eig)",
    )
    fuzz.add_argument("--n", type=int, default=4)
    fuzz.add_argument("--t", type=int, default=1)
    fuzz.add_argument("--workers", type=int, default=1)
    fuzz.add_argument(
        "--shrink",
        action="store_true",
        help="minimize failing cases before reporting them",
    )
    fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="write shrunk counterexamples here as replayable cases",
    )
    fuzz.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="replay one saved case file (or every case in a "
        "directory) instead of running a campaign",
    )
    fuzz.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="campaign report format",
    )
    fuzz.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="record the campaign's structured event log to PATH "
        "(JSONL; includes per-protocol telemetry rollups for "
        "`repro status`)",
    )
    fuzz.add_argument(
        "--events-cap",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate the event log into PATH.part-N files once a file "
        "would exceed BYTES (requires --events)",
    )
    fuzz.add_argument(
        "--check-closedness",
        action="store_true",
        help="with --replay: re-run each case under a tracing "
        "observer and cross-check the observed round structure "
        "against the committed protoflow certificates "
        "(docs/statics.md)",
    )
    fuzz.add_argument(
        "--certificates",
        default=None,
        metavar="PATH",
        help="certificate catalog for --check-closedness (default: "
        "tools/protoflow_certificates.json)",
    )
    fuzz.add_argument(
        "--scheduler",
        default=None,
        metavar="BACKEND",
        help="round-engine backend for campaign executions and "
        "--replay: 'lockstep' (default), 'async', or "
        "'async:<max_delay>[:<salt>]' (docs/runtime.md); a corpus "
        "case must replay to the same verdicts under every backend",
    )

    return parser


def _command_table1(args) -> str:
    schedule = BlockSchedule(args.k)
    return format_table(
        schedule.table(args.rounds),
        columns=["r", "block", "prior", "phase", "simul"],
        title=f"Table 1 — {args.rounds} rounds, k = {args.k}",
    )


def _command_run_ba(args) -> str:
    import contextlib
    import pathlib

    n = args.n if args.n is not None else 3 * args.t + 1
    config = SystemConfig(n=n, t=args.t)
    inputs = {p: p % 2 for p in config.process_ids}
    faulty = list(range(1, args.t + 1))
    adversary = ADVERSARY_CHOICES[args.adversary](faulty)
    meter_adversary = getattr(args, "include_adversary_traffic", False)
    scheduler = getattr(args, "scheduler", None)
    events_path = getattr(args, "events", None)
    record = events_path is not None

    trace_edges = getattr(args, "trace", False)
    events_cap = getattr(args, "events_cap", None)
    if trace_edges and not record:
        return "error: --trace requires --events", 2
    if events_cap is not None and not record:
        return "error: --events-cap requires --events", 2

    scope: Any
    if record:
        from repro.obs.core import Observer, observing
        from repro.obs.events import EventLog

        scope = observing(
            Observer(
                events=EventLog(events_path, cap_bytes=events_cap),
                trace=trace_edges,
            )
        )
    else:
        scope = contextlib.nullcontext()
    with scope:
        if getattr(args, "authenticated", False):
            from repro.compact.authenticated_variant import (
                auth_compact_ba_factory,
                auth_sizer,
            )
            from repro.runtime.crypto import SignatureOracle

            result = run_protocol(
                auth_compact_ba_factory(
                    config, [0, 1], SignatureOracle(), k=args.k or 1
                ),
                config,
                inputs,
                adversary=adversary,
                max_rounds=config.t + 2,
                sizer=auth_sizer(config, 2),
                seed=args.seed,
                record_trace=record,
                meter_adversary=meter_adversary,
                scheduler=scheduler,
            )
            variant = "authenticated (zero overhead)"
        else:
            kwargs = {}
            if args.k is None and args.epsilon is None:
                kwargs["epsilon"] = 1.0
            elif args.k is not None:
                kwargs["k"] = args.k
            else:
                kwargs["epsilon"] = args.epsilon
            result = run_compact_byzantine_agreement(
                config,
                inputs,
                value_alphabet=[0, 1],
                adversary=adversary,
                seed=args.seed,
                record_trace=record,
                meter_adversary=meter_adversary,
                scheduler=scheduler,
                **kwargs,
            )
            variant = "compact (Corollary 10)"
    lines = [
        f"n = {n}, t = {args.t}, variant = {variant}, "
        f"adversary = {args.adversary} (faulty = {faulty})",
        f"decisions: {dict(sorted(result.decisions.items()))}",
        f"rounds: {result.rounds}",
        f"message bits: {result.metrics.total_bits}",
    ]
    if meter_adversary:
        lines.append("(metering includes adversary traffic)")
    if scheduler is not None:
        lines.append(f"scheduler: {scheduler}")
    if record:
        lines.append(f"events: wrote {events_path}")
        trace_path = pathlib.Path(str(events_path) + ".trace.jsonl")
        try:
            assert result.trace is not None
            result.trace.to_jsonl(trace_path)
            lines.append(f"trace: wrote {trace_path}")
        except TypeError as error:
            lines.append(f"trace: not serializable ({error})")
    return "\n".join(lines)


def _command_compare(args) -> str:
    output = format_table(
        comparison_table(args.t),
        title=f"Section 5.6 comparison, analytic (t = {args.t})",
    )
    if args.measured:
        measured = measured_comparison(
            args.t, lambda faulty: EquivocatingAdversary(faulty, 0, 1)
        )
        output += "\n\n" + format_table(
            measured,
            columns=["protocol", "rounds", "bits", "decisions"],
            title="measured under equivocating faults",
        )
    return output


def _command_tradeoff(args) -> str:
    return format_table(
        epsilon_table((2.0, 1.0, 0.5, 0.25), t=args.t),
        title=f"eps <-> k tradeoff at t = {args.t}",
    )


def _command_crossover(args) -> str:
    return crossover_chart(max_t=args.max_t, k=args.k)


def _command_avalanche(args) -> str:
    config = SystemConfig(n=3 * args.t + 1, t=args.t)
    inputs = {
        p: ("v" if p % 3 else "w") for p in config.process_ids
    }
    faulty = list(range(1, args.t + 1))
    adversary = ADVERSARY_CHOICES[args.adversary](faulty)
    result = run_protocol(
        avalanche_factory(),
        config,
        inputs,
        adversary=adversary,
        run_full_rounds=args.rounds,
    )
    lines = [
        f"avalanche agreement: n = {config.n}, t = {config.t}, "
        f"adversary = {args.adversary}",
        f"inputs: {inputs}",
        f"decisions: {dict(sorted(result.decisions.items()))}",
        f"decision rounds: {dict(sorted(result.decision_rounds.items()))}",
    ]
    return "\n".join(lines)


def _command_bench(args):
    import os
    import pathlib

    from repro.analysis.bench import (
        compare_reports,
        default_output_path,
        profile_regressions,
        render_report,
        render_trend,
        run_bench,
        trend_report,
        write_report,
    )

    if args.mode == "trend":
        import json

        directory = (
            pathlib.Path(args.dir) if args.dir is not None
            else pathlib.Path.cwd()
        )
        if not directory.is_dir():
            return f"error: {directory} is not a directory", 2
        report = trend_report(directory, threshold=args.threshold)
        if args.format == "json":
            rendered = json.dumps(report, indent=2)
        else:
            rendered = render_trend(report)
        return rendered, (1 if report["flags"] else 0)

    workers = args.workers
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    if workers < 1:
        return f"error: --workers must be >= 1, got {workers}", 2
    if args.trace and args.events is None:
        return "error: --trace requires --events", 2
    baseline = None
    if args.compare is not None:
        baseline_path = pathlib.Path(args.compare)
        if not baseline_path.is_file():
            return f"error: baseline {baseline_path} not found", 2
        import json

        baseline = json.loads(baseline_path.read_text())
    from repro.arrays import flat as _flat

    try:
        with _flat.use_kernel(
            args.kernel if args.kernel is not None else _flat.kernel_name()
        ):
            report = run_bench(
                suites=args.suite,
                quick=args.quick,
                workers=workers,
                events=(
                    pathlib.Path(args.events)
                    if args.events is not None
                    else None
                ),
                profile=not args.no_profile,
                cache_dir=(
                    pathlib.Path(args.cache_dir)
                    if args.cache_dir is not None
                    else None
                ),
                trace=args.trace,
            )
    except KeyError as error:
        return f"error: {error.args[0]}", 2
    path = (
        pathlib.Path(args.output)
        if args.output
        else default_output_path()
    )
    write_report(report, path)
    output = f"{render_report(report)}\n\nwrote {path}"
    if args.events is not None:
        output += f"\nevents: wrote {args.events}"
    if baseline is not None:
        problems = compare_reports(report, baseline)
        span_lines = profile_regressions(report, baseline)
        if span_lines:
            output += (
                "\n\nslowest span regressions (informational, wall "
                "time):\n" + "\n".join(f"  {line}" for line in span_lines)
            )
        if problems:
            verdict = "\n".join(f"REGRESSION: {line}" for line in problems)
            return f"{output}\n\n{verdict}", 1
        output += f"\n\ncompare: no regressions against {args.compare}"
    return output


def _command_cache(args):
    import json
    import os
    import pathlib

    from repro.arrays import persist

    raw = (
        args.cache_dir
        if args.cache_dir is not None
        else os.environ.get(persist.CACHE_ENV)
    )
    if not raw:
        return (
            "error: no cache directory (pass --cache-dir or set "
            f"{persist.CACHE_ENV})",
            2,
        )
    root = pathlib.Path(raw)
    if not root.is_dir():
        return f"error: cache directory {root} does not exist", 2
    cache = persist.store_for(root)

    if args.cache_command == "stats":
        stats = cache.stats()
        if args.format == "json":
            return json.dumps(stats, indent=2)
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(stats["kinds"].items())
        ) or "none"
        return "\n".join([
            f"cache {stats['path']}",
            f"segments: {stats['segments']} ({kinds})",
            f"entries: {stats['entries']}",
            f"bytes: {stats['bytes']}",
            f"widths: {stats['widths']}",
            f"fingerprints: {stats['fingerprints']}",
        ])

    if args.cache_command == "verify":
        verdict = cache.verify(sample=args.sample)
        code = 0 if verdict["ok"] else 1
        if args.format == "json":
            return json.dumps(verdict, indent=2), code
        lines = [
            f"segments checked: {verdict['segments']}",
            f"nodes segments re-digested: {verdict['redigested']}",
        ]
        for problem in verdict["corrupt"]:
            lines.append(
                f"CORRUPT {problem['segment']}: {problem['error']}"
            )
        lines.append("ok" if verdict["ok"] else "corruption detected")
        return "\n".join(lines), code

    import time

    outcome = cache.gc(keep_days=args.keep_days, now=time.time())
    if args.format == "json":
        return json.dumps(outcome, indent=2)
    return (
        f"kept {outcome['kept']} segment(s), removed {outcome['removed']}, "
        f"freed {outcome['bytes_freed']} bytes"
    )


def _command_events(args):
    import json

    from repro.obs.events import read_log, validate_records
    from repro.obs.summarize import (
        profile_records,
        render_profile,
        render_summary,
        summarize_records,
    )

    try:
        records = read_log(args.path)
    except (OSError, ValueError) as error:
        return f"error: {error}", 2

    if args.events_command == "export":
        import pathlib

        from repro.obs.export import (
            chrome_trace,
            speedscope_profile,
            validate_chrome_trace,
        )

        if args.format == "speedscope":
            payload = speedscope_profile(records)
        else:
            payload = chrome_trace(records)
            problems = validate_chrome_trace(payload)
            if problems:
                body = "\n".join(problems)
                return f"error: exported trace is invalid:\n{body}", 1
        rendered = json.dumps(payload, indent=1, sort_keys=True)
        if args.output is not None:
            target = pathlib.Path(args.output)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(rendered + "\n")
            return (
                f"wrote {args.format} export of {len(records)} "
                f"record(s) to {target}"
            )
        return rendered

    if args.events_command == "validate":
        problems = validate_records(records)
        if args.format == "json":
            payload = {
                "records": len(records),
                "valid": not problems,
                "problems": problems,
            }
            return json.dumps(payload, indent=2), (1 if problems else 0)
        if problems:
            body = "\n".join(problems)
            return f"{body}\ninvalid: {len(problems)} problem(s)", 1
        return f"OK: {len(records)} record(s) conform to event schema v1"

    if args.events_command == "summarize":
        summary = summarize_records(records)
        if args.format == "json":
            return json.dumps(summary, indent=2)
        return render_summary(summary)

    profile = profile_records(records)
    if args.format == "json":
        return json.dumps(profile, indent=2)
    return render_profile(profile)


def _command_status(args):
    import json
    import pathlib

    from repro.obs.rollup import load_status, render_status

    path = pathlib.Path(args.path)
    if not path.exists():
        return f"error: {path} does not exist", 2
    try:
        status = load_status(path, top_spans=args.top_spans)
    except OSError as error:
        return f"error: {error}", 2
    if args.format == "json":
        return json.dumps(status, indent=2)
    return render_status(status)


def _command_lint(args):
    import json
    import pathlib

    from repro.statics.baseline import Baseline, write_baseline
    from repro.statics.report import render_json, render_sarif, render_text
    from repro.statics.runner import (
        collect_findings,
        default_package_root,
        find_default_baseline,
        lint_tree,
    )

    root = (
        pathlib.Path(args.root).resolve()
        if args.root
        else default_package_root()
    )
    if not root.is_dir():
        return f"error: lint root {root} is not a directory", 2
    baseline_path = (
        pathlib.Path(args.baseline)
        if args.baseline
        else find_default_baseline(root)
    )
    try:
        if baseline_path is not None and (
            baseline_path.is_file() or not args.update_baseline
        ):
            baseline = Baseline.load(baseline_path)
        else:
            baseline = Baseline()
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
        return f"error: cannot load baseline: {error}", 2

    if args.update_baseline:
        target = (
            baseline_path
            if baseline_path is not None
            else pathlib.Path.cwd() / "tools" / "lint_baseline.json"
        )
        target.parent.mkdir(parents=True, exist_ok=True)
        findings = collect_findings(root)
        write_baseline(target, findings, previous=baseline)
        return (
            f"wrote {len(findings)} suppression(s) to {target} — fill in "
            "any TODO justifications",
            0,
        )

    result = lint_tree(root, baseline)
    if args.format == "json":
        rendered = render_json(result)
    elif args.format == "sarif":
        rendered = render_sarif(result)
    else:
        rendered = render_text(result)
    if args.certificates:
        from repro.statics.flow.certificates import (
            certify_tree,
            render_certificates,
        )

        target = pathlib.Path(args.certificates)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            render_certificates(certify_tree(root, baseline)),
            encoding="utf-8",
        )
    return rendered, result.exit_code


def _command_fuzz(args):
    import pathlib

    from repro.errors import ConfigurationError
    from repro.fuzz.campaign import CampaignSettings, replay_case, run_campaign
    from repro.fuzz.case import load_case, load_corpus
    from repro.fuzz.protocols import DEFAULT_PROTOCOLS

    if args.check_closedness and args.replay is None:
        return "error: --check-closedness requires --replay", 2

    if args.replay is not None:
        path = pathlib.Path(args.replay)
        if path.is_dir():
            entries = load_corpus(path)
            if not entries:
                return f"error: no fuzz cases under {path}", 2
        elif path.is_file():
            entries = [(path, load_case(path))]
        else:
            return f"error: {path} is neither a case file nor a corpus", 2
        if args.check_closedness:
            from repro.statics.crosscheck import (
                DEFAULT_CERTIFICATES,
                check_case,
                load_certificates,
                render_cross_check,
            )

            certificates_path = pathlib.Path(
                args.certificates
                if args.certificates is not None
                else DEFAULT_CERTIFICATES
            )
            try:
                certificates = load_certificates(certificates_path)
            except (OSError, ValueError) as error:
                return f"error: {error}", 2
            cases = []
            for case_path, case in entries:
                try:
                    cases.append(check_case(
                        case, certificates, scheduler=args.scheduler
                    ))
                except ConfigurationError as error:
                    return f"error: {case_path.name}: {error}", 2
            report = {
                "corpus": str(path),
                "certificates": str(certificates_path),
                "cases": cases,
                "disagreements": [
                    entry["case"] for entry in cases
                    if not entry["agrees"]
                ],
                "ok": all(entry["agrees"] for entry in cases),
            }
            import json

            if args.format == "json":
                rendered = json.dumps(report, indent=2)
            else:
                rendered = render_cross_check(report)
            return rendered, (0 if report["ok"] else 1)
        lines = []
        failures = 0
        for case_path, case in entries:
            try:
                outcome = replay_case(case, scheduler=args.scheduler)
            except ConfigurationError as error:
                return f"error: {case_path.name}: {error}", 2
            if outcome.failed:
                failures += 1
                lines.append(f"FAIL {case_path.name}")
                lines.extend(f"  - {text}" for text in outcome.violations)
            else:
                lines.append(f"ok   {case_path.name}")
        lines.append(
            f"{len(entries)} case(s) replayed, {failures} still failing"
        )
        return "\n".join(lines), (1 if failures else 0)

    if args.events_cap is not None and args.events is None:
        return "error: --events-cap requires --events", 2
    protocols = tuple(args.protocol) if args.protocol else DEFAULT_PROTOCOLS
    settings = CampaignSettings(
        seed=args.seed,
        cases=args.cases,
        protocols=protocols,
        n=args.n,
        t=args.t,
        workers=args.workers,
        shrink=args.shrink or args.corpus is not None,
        corpus_dir=args.corpus,
        scheduler=args.scheduler,
    )
    scope: Any
    if args.events is not None:
        from repro.obs.core import Observer, observing
        from repro.obs.events import EventLog

        scope = observing(
            Observer(
                events=EventLog(args.events, cap_bytes=args.events_cap)
            )
        )
    else:
        import contextlib

        scope = contextlib.nullcontext()
    try:
        with scope:
            report = run_campaign(settings)
    except ConfigurationError as error:
        return f"error: {error}", 2
    if args.format == "json":
        rendered = report.to_json()
    else:
        rendered = report.render_text().rstrip("\n")
    if args.events is not None and args.format != "json":
        rendered += f"\nevents: wrote {args.events}"
    return rendered, (0 if report.clean else 1)


_HANDLERS = {
    "table1": _command_table1,
    "run-ba": _command_run_ba,
    "compare": _command_compare,
    "tradeoff": _command_tradeoff,
    "crossover": _command_crossover,
    "avalanche": _command_avalanche,
    "bench": _command_bench,
    "cache": _command_cache,
    "events": _command_events,
    "status": _command_status,
    "lint": _command_lint,
    "fuzz": _command_fuzz,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Handlers return either the report text (exit code 0) or a
    ``(text, exit_code)`` pair — ``lint`` uses the latter so CI can
    gate on findings.
    """
    args = _build_parser().parse_args(argv)
    output = _HANDLERS[args.command](args)
    code = 0
    if isinstance(output, tuple):
        output, code = output
    print(output)
    return code


if __name__ == "__main__":
    sys.exit(main())
