"""The process harness protocols implement.

A round of any protocol consists of three components performed in
order: sending messages, receiving messages, and a local state change
(Section 3.1).  A :class:`Process` exposes exactly that structure:

* :meth:`Process.outgoing` is called first each round and returns the
  messages to send,
* :meth:`Process.receive` is called after delivery with the full
  incoming map and performs the local state change.

Decisions are irrevocable, as the problem statements require: once
:meth:`Process.decide` has been called, a second call with a different
value raises :class:`repro.errors.DecisionError`.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from repro.errors import DecisionError
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom


def broadcast(message: Any, config: SystemConfig) -> Dict[ProcessId, Any]:
    """Send the same ``message`` to every processor (including self).

    The paper's protocols broadcast to all ``n`` processors, self
    included — a processor "can send any required information in a
    message to itself" (Section 3.1).
    """
    return {process_id: message for process_id in config.process_ids}


class Process(abc.ABC):
    """Base class for one correct processor's protocol logic.

    Subclasses implement :meth:`outgoing` and :meth:`receive`.  The
    engine guarantees that for every round ``r`` it calls
    ``outgoing(r)`` exactly once, then ``receive(r, incoming)`` exactly
    once, with ``incoming`` holding one entry per processor id (absent
    or malformed transmissions appear as :data:`BOTTOM`).

    The contract is deliberately *scheduler-independent*: the per-round
    call sequence above is fixed, but *when* one processor's
    ``receive(r, ...)`` runs relative to another's is backend policy
    (:mod:`repro.runtime.scheduler`) — the lockstep reference calls
    receivers in processor-id order, the async backend in delivery-
    completion order.  A protocol therefore must not communicate with
    other processes except through its returned messages (no shared
    mutable state, no out-of-band channels); protolint's purity pass
    checks this statically, and the scheduler-invariance suite
    (tests/runtime/test_scheduler_equivalence.py) demonstrates that
    violating it — and only violating it — makes backends observable.

    The base class declares ``__slots__`` so its four fields never pay
    for a dict entry; subclasses that declare their own ``__slots__``
    stay fully dict-free on the hot path, and subclasses that don't
    still get a ``__dict__`` for their extra state as usual.
    """

    __slots__ = ("process_id", "config", "_decision", "_decision_round")

    def __init__(self, process_id: ProcessId, config: SystemConfig):
        self.process_id = process_id
        self.config = config
        self._decision: Value = BOTTOM
        self._decision_round: Optional[Round] = None

    # -- round structure ------------------------------------------------

    @abc.abstractmethod
    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        """Messages to send this round, keyed by destination.

        Destinations omitted from the map receive :data:`BOTTOM`.
        """

    @abc.abstractmethod
    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        """Local state change, given this round's received messages."""

    # -- decisions --------------------------------------------------------

    def decide(self, value: Value, round_number: Round) -> None:
        """Irrevocably decide ``value``.

        Idempotent for the same value; raises :class:`DecisionError`
        on any attempt to change an existing decision, and on an
        attempt to decide :data:`BOTTOM`.
        """
        if is_bottom(value):
            raise DecisionError(
                f"processor {self.process_id} attempted to decide BOTTOM"
            )
        if self.has_decided():
            if self._decision != value:
                raise DecisionError(
                    f"processor {self.process_id} attempted to change its "
                    f"decision from {self._decision!r} to {value!r}"
                )
            return
        self._decision = value
        self._decision_round = round_number

    def has_decided(self) -> bool:
        """Whether this processor has irrevocably decided."""
        return not is_bottom(self._decision)

    @property
    def decision(self) -> Value:
        """The decided value, or :data:`BOTTOM` if undecided."""
        return self._decision

    @property
    def decision_round(self) -> Optional[Round]:
        """The round in which the decision was made, or ``None``."""
        return self._decision_round

    # -- introspection ----------------------------------------------------

    def snapshot(self) -> Any:
        """A representation of local state for traces and checkers.

        Protocols that participate in simulation checking override
        this; the default exposes only the decision status.
        """
        return {"decision": self._decision}
