"""Message envelopes.

Protocol code deals in bare payloads; the network wraps each payload in
an :class:`Envelope` carrying its origin, destination, and round — the
same bookkeeping the paper attaches to the message set ``M`` of an
execution ``(k, F, I, M)``.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.types import ProcessId, Round


@dataclasses.dataclass(frozen=True)
class Envelope:
    """One message in flight: payload plus origin/destination/round."""

    sender: ProcessId
    receiver: ProcessId
    round_number: Round
    payload: Any

    def __repr__(self) -> str:
        return (
            f"Envelope(r{self.round_number} {self.sender}->{self.receiver}: "
            f"{self.payload!r})"
        )
