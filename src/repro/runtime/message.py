"""Message envelopes.

Protocol code deals in bare payloads; the network wraps each payload in
an :class:`Envelope` carrying its origin, destination, and round — the
same bookkeeping the paper attaches to the message set ``M`` of an
execution ``(k, F, I, M)``.

``Envelope`` is deliberately a hand-rolled ``__slots__`` class rather
than a dataclass: traced executions allocate one per delivered message
(``n^2`` per round), and the per-instance ``__dict__`` of a plain class
dominated allocation profiles of full-information runs.
"""

from __future__ import annotations

from typing import Any

from repro.types import ProcessId, Round


class Envelope:
    """One message in flight: payload plus origin/destination/round.

    Value semantics match the frozen dataclass it replaced: equality
    and hashing are field-wise, and instances are treated as immutable
    by convention (the network never rewrites a recorded envelope).
    """

    __slots__ = ("sender", "receiver", "round_number", "payload")

    def __init__(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        round_number: Round,
        payload: Any,
    ):
        self.sender = sender
        self.receiver = receiver
        self.round_number = round_number
        self.payload = payload

    def _key(self):
        return (self.sender, self.receiver, self.round_number, self.payload)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Envelope):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"Envelope(r{self.round_number} {self.sender}->{self.receiver}: "
            f"{self.payload!r})"
        )
