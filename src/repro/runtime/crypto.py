"""An idealised signature scheme for the authenticated fault model.

The paper's introduction lists "authenticated Byzantine" among the
fault models its framework covers.  In that model processors can sign
messages unforgeably; a faulty processor may sign anything *as
itself* but can never fabricate a correct processor's signature.

Inside a single-process simulation, unforgeability can be *ideal*
rather than cryptographic: the :class:`SignatureOracle` records every
signature it issues, and verification checks membership by object
identity.  A Byzantine strategy fabricating a look-alike object fails
verification because its object was never issued.  Faulty processors
get signing power over their own identities only, through
:meth:`SignatureOracle.handle_for`, which refuses to sign for anyone
else (raising :class:`repro.errors.AdversaryError`).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Set

from repro.errors import AdversaryError
from repro.types import ProcessId


class Signature:
    """One issued signature: an unforgeable-by-identity token."""

    __slots__ = ("signer", "payload")

    def __init__(self, signer: ProcessId, payload: Any):
        self.signer = signer
        self.payload = payload

    def __repr__(self) -> str:
        return f"Signature(by={self.signer}, payload={self.payload!r})"


class SignatureOracle:
    """Issues and verifies signatures; the system's trusted root."""

    def __init__(self) -> None:
        self._issued: Set[int] = set()
        self._alive: list = []  # keep issued tokens alive so ids stay unique

    def sign(self, signer: ProcessId, payload: Any) -> Signature:
        """Issue a signature of ``payload`` by ``signer``."""
        signature = Signature(signer, payload)
        self._issued.add(id(signature))
        self._alive.append(signature)
        return signature

    def verify(self, signature: Any, signer: ProcessId, payload: Any) -> bool:
        """Whether ``signature`` is a genuine ``signer`` signature of
        ``payload``.  Fabricated objects fail the identity check even
        if they imitate the attributes."""
        return (
            isinstance(signature, Signature)
            and id(signature) in self._issued
            and signature.signer == signer
            and signature.payload == payload
        )

    def handle_for(self, allowed: Iterable[ProcessId]) -> "SigningHandle":
        """A restricted handle that signs only for ``allowed`` ids."""
        return SigningHandle(self, frozenset(allowed))


class SigningHandle:
    """Signing power over a fixed identity set (what an adversary gets)."""

    def __init__(self, oracle: SignatureOracle, allowed: FrozenSet[ProcessId]):
        self._oracle = oracle
        self.allowed = allowed

    def sign(self, signer: ProcessId, payload: Any) -> Signature:
        if signer not in self.allowed:
            raise AdversaryError(
                f"handle for {sorted(self.allowed)} cannot sign as {signer}"
            )
        return self._oracle.sign(signer, payload)

    def verify(self, signature: Any, signer: ProcessId, payload: Any) -> bool:
        return self._oracle.verify(signature, signer, payload)
