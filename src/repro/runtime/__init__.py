"""Synchronous round-based execution substrate.

The paper's system model (Section 2): ``n`` processors over a fully
connected, reliable network; computation proceeds in rounds, and in
each round correct processors *send*, then *receive*, then make a
*local state change*.  Failed processors send arbitrary messages.

This package is that model, executable:

* :mod:`repro.runtime.node` — the :class:`Process` base class every
  protocol implements (one ``outgoing``/``receive`` pair per round),
* :mod:`repro.runtime.network` — delivers messages, letting an
  adversary speak for the faulty processors (with a full view of the
  round's correct traffic, i.e. a rushing adversary),
* :mod:`repro.runtime.scheduler` — pluggable round backends: the
  lockstep synchronous reference and an event-driven asynchronous
  scheduler that recovers rounds via communication-closedness
  (docs/runtime.md),
* :mod:`repro.runtime.engine` — drives executions to completion and
  returns a structured result,
* :mod:`repro.runtime.metrics` — exact per-round message/bit meters,
* :mod:`repro.runtime.trace` — optional full message traces,
* :mod:`repro.runtime.rng` — deterministic seeded randomness.
"""

from repro.runtime.message import Envelope
from repro.runtime.metrics import MessageMetrics, RoundUsage
from repro.runtime.node import Process, broadcast
from repro.runtime.network import SynchronousNetwork
from repro.runtime.scheduler import (
    AsyncScheduler,
    LockstepScheduler,
    Scheduler,
    SCHEDULER_ENV,
    resolve_scheduler,
)
from repro.runtime.engine import ExecutionResult, run_protocol
from repro.runtime.trace import ExecutionTrace
from repro.runtime.rng import derive_rng, make_rng
from repro.runtime.crypto import Signature, SignatureOracle
from repro.runtime.render import (
    render_decisions,
    render_execution,
    render_round,
    summarise_payload,
)

__all__ = [
    "Envelope",
    "MessageMetrics",
    "RoundUsage",
    "Process",
    "broadcast",
    "SynchronousNetwork",
    "Scheduler",
    "LockstepScheduler",
    "AsyncScheduler",
    "SCHEDULER_ENV",
    "resolve_scheduler",
    "ExecutionResult",
    "run_protocol",
    "ExecutionTrace",
    "derive_rng",
    "make_rng",
    "Signature",
    "SignatureOracle",
    "render_decisions",
    "render_execution",
    "render_round",
    "summarise_payload",
]
