"""The synchronous fully connected reliable network (Section 2).

One :meth:`SynchronousNetwork.run_round` call performs the paper's
round structure exactly:

1. **send** — every correct processor's :meth:`outgoing` is collected;
2. the adversary, seeing all of that correct traffic (rushing), fixes
   the faulty processors' messages;
3. **receive / state change** — every correct processor's
   :meth:`receive` is invoked with one entry per processor id.

Reliability and synchrony mean a correct processor's message is always
delivered within the round; an omitted or malformed faulty message is
delivered as :data:`BOTTOM`, which the recipient can detect (and the
paper's protocols do: "a single message that contains more than one
value is obviously erroneous and is discarded immediately").

Delivery ordering and the receive/state-change phase are owned by a
pluggable :class:`~repro.runtime.scheduler.Scheduler` (phase 3 above);
the network keeps the send/adversary phases, which every backend
shares — the rushing adversary's full-round view is what serialises
rounds globally.  The default backend is the lockstep reference;
see :mod:`repro.runtime.scheduler` for the asynchronous one.

Hot-path notes: sweeps run this loop millions of times, so the round
loop (a) clones a preallocated all-:data:`BOTTOM` delivery row per
receiver instead of growing dicts with ``setdefault``, (b) memoizes
the sizer per payload *object* within a round — broadcasts present the
same object up to ``n`` times — and (c) skips all trace bookkeeping
when no trace is attached.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import repro.obs.core as _obs
from repro.adversary.base import Adversary, RoundContext
from repro.arrays.store import InternedArray
from repro.obs.core import Observer
from repro.obs.events import json_safe
from repro.runtime.message import Envelope
from repro.runtime.metrics import MessageMetrics
from repro.runtime.node import Process
from repro.runtime.scheduler import LockstepScheduler, Scheduler
from repro.runtime.trace import ExecutionTrace
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom


def _default_sizer(message: Any) -> int:
    """Fallback message measure: 8 bits per scalar leaf, 2 per node.

    Protocols that make bit-level claims supply an exact sizer built
    from :class:`repro.arrays.encoding.MessageSizer`; this fallback
    keeps metrics meaningful for quick experiments.  All container
    shapes are sized structurally — tuples, lists, sets and dicts each
    cost a 2-bit node header plus the sum of their elements (dicts:
    keys and values) — so a list-shaped message is never silently
    undercounted as a single scalar leaf.
    """
    if is_bottom(message):
        return 0
    if isinstance(message, (tuple, list, set, frozenset)):
        return 2 + sum(_default_sizer(component) for component in message)
    if isinstance(message, dict):
        return 2 + sum(
            _default_sizer(key) + _default_sizer(value)
            for key, value in message.items()
        )
    return 8


class SynchronousNetwork:
    """Drives rounds over a set of correct processes plus an adversary."""

    def __init__(
        self,
        config: SystemConfig,
        processes: Mapping[ProcessId, Process],
        adversary: Adversary,
        inputs: Mapping[ProcessId, Value],
        sizer: Optional[Callable[[Any], int]] = None,
        is_null: Optional[Callable[[Any], bool]] = None,
        metrics: Optional[MessageMetrics] = None,
        trace: Optional[ExecutionTrace] = None,
        meter_adversary: bool = False,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
    ):
        overlap = set(processes) & set(adversary.faulty_ids)
        if overlap:
            raise ValueError(
                f"processors {sorted(overlap)} are both correct and faulty"
            )
        expected = set(config.process_ids)
        provided = set(processes) | set(adversary.faulty_ids)
        if provided != expected:
            raise ValueError(
                f"processes+faulty must cover 1..{config.n}; "
                f"missing {sorted(expected - provided)}"
            )
        self.config = config
        self.processes = dict(processes)
        self.adversary = adversary
        self.inputs = dict(inputs)
        self.sizer = sizer or _default_sizer
        self.is_null = is_null or is_bottom
        self.metrics = metrics if metrics is not None else MessageMetrics()
        self.trace = trace
        self.meter_adversary = meter_adversary
        self.round_number: Round = 0
        # Preallocated delivery row: every receiver's incoming map
        # starts as a clone of this (one BOTTOM slot per processor id),
        # replacing the per-round setdefault pass over n ids.
        self._bottom_row: Dict[ProcessId, Any] = {
            process_id: BOTTOM for process_id in config.process_ids
        }
        # Per-round (size, non-null) memo keyed on payload identity;
        # broadcast sends one object to n receivers, so n - 1 sizer
        # and null-check walks per sender collapse to dict hits.
        # Cleared every round, and the outgoing maps keep payloads
        # alive for the round, so an id can never be reused while
        # cached.
        self._size_cache: Dict[int, Tuple[int, bool]] = {}
        # Cross-round memo for hash-consed payloads: a canonical node's
        # key_token is unique for the store's lifetime (the store holds
        # the node alive), so this cache is never cleared — a value
        # array re-broadcast in a later round is measured by one dict
        # hit.  Both entries are stable: the sizer and the null
        # predicate are pure functions of the payload value.
        self._interned_size_cache: Dict[Any, Tuple[int, bool]] = {}
        self.scheduler = (
            scheduler if scheduler is not None else LockstepScheduler()
        )
        self.scheduler.bind(self, seed)

    def run_round(self) -> Round:
        """Execute one full round; returns its (1-based) number."""
        # Read the active observer once per round: the per-message work
        # below only pays for instrumentation it can actually reach.
        observer = _obs.ACTIVE
        events = observer is not None and observer.events_on
        self.round_number += 1
        round_number = self.round_number
        if observer is not None:
            observer.set_round(round_number)
            if events:
                observer.emit("round_start")

        # 1. Correct processors send.
        correct_outgoing: Dict[ProcessId, Dict[ProcessId, Any]] = {}
        for process_id, process in self.processes.items():
            correct_outgoing[process_id] = dict(process.outgoing(round_number))

        # 2. The adversary, having seen that traffic, fixes faulty messages.
        context = RoundContext(
            config=self.config,
            round_number=round_number,
            correct_outgoing=correct_outgoing,
            processes=self.processes,
            inputs=self.inputs,
        )
        faulty_outgoing: Dict[ProcessId, Dict[ProcessId, Any]] = {}
        for sender in sorted(self.adversary.faulty_ids):
            faulty_outgoing[sender] = dict(
                self.adversary.outgoing(round_number, sender, context)
            )

        # 3. Deliver, observe, state-change — the scheduler's phase:
        # delivery ordering and round advancement are backend policy.
        self.scheduler.dispatch(
            round_number, context, correct_outgoing, faulty_outgoing
        )
        if events:
            assert observer is not None
            usage = self.metrics.round_usage(round_number)
            observer.emit(
                "round_end",
                messages=usage.messages,
                non_null=usage.non_null_messages,
                bits=usage.bits,
            )
        return round_number

    # -- scheduler-facing primitives --------------------------------------
    #
    # The pieces a Scheduler composes phase 3 from.  Keeping them on
    # the network (rather than in each backend) pins the bookkeeping —
    # metering, snapshots, state/decide events — to one implementation,
    # so backends can only vary *ordering*, never *accounting*.

    def fresh_delivery_rows(self) -> Dict[ProcessId, Dict[ProcessId, Any]]:
        """A new all-:data:`BOTTOM` incoming map per correct receiver.

        Also resets the per-round payload-identity size memo; call
        exactly once per round, before any delivery.
        """
        self._size_cache.clear()
        return {
            receiver: dict(self._bottom_row) for receiver in self.processes
        }

    def record_state_change(
        self,
        round_number: Round,
        receiver: ProcessId,
        process: Process,
        observer: Optional[Observer],
        events: bool,
    ) -> None:
        """Post-``receive`` bookkeeping: snapshot, state/decide events."""
        if self.trace is not None:
            self.trace.record_snapshot(
                round_number, receiver, process.snapshot()
            )
        if events:
            # Lazy: render imports the engine, which imports us.
            from repro.runtime.render import summarise_payload

            assert observer is not None
            # Shape summary, never repr: full-information snapshots are
            # exponential and repr-ing them would dominate an observed
            # run.
            observer.emit(
                "state", process=receiver,
                summary=summarise_payload(process.snapshot(), limit=60),
            )
            if process.decision_round == round_number:
                observer.emit(
                    "decide", process=receiver,
                    value=json_safe(process.decision),
                )

    def emit_deliver_edge(
        self,
        round_number: Round,
        sender: ProcessId,
        receiver: ProcessId,
        payload: Any,
        observer: Optional[Observer],
        faulty: bool,
    ) -> None:
        """Emit one causal ``deliver`` edge outside :meth:`_deliver`.

        Backends that realise their own delivery order (async) meter in
        canonical order first and emit trace edges in schedule order
        afterwards; the sizing rules here mirror :meth:`_deliver`'s
        tracing block exactly.
        """
        assert observer is not None
        if faulty:
            edge_bits = _default_sizer(payload)
            edge_non_null = not is_bottom(payload)
        else:
            edge_bits, edge_non_null = self._measured(payload, observer)
        observer.emit(
            "deliver", sender=sender, receiver=receiver,
            bits=edge_bits, non_null=edge_non_null, faulty=faulty,
        )

    def _measured(
        self, payload: Any, observer: Optional[Observer] = None
    ) -> Tuple[int, bool]:
        """``(bits, non_null)`` for ``payload``, memoized together.

        Interned payloads memoize on their stable ``key_token`` and
        survive round boundaries; everything else memoizes on object
        identity within the round.  The null verdict rides in the same
        entry because both are pure functions of the payload and both
        are needed per delivery.
        """
        if type(payload) is InternedArray:
            token = payload.key_token
            entry = self._interned_size_cache.get(token)
            if entry is None:
                entry = (self.sizer(payload), not self.is_null(payload))
                self._interned_size_cache[token] = entry
                if observer is not None:
                    observer.count("net.interned_size_cache.miss")
            elif observer is not None:
                observer.count("net.interned_size_cache.hit")
            return entry
        key = id(payload)
        entry = self._size_cache.get(key)
        if entry is None:
            entry = (self.sizer(payload), not self.is_null(payload))
            self._size_cache[key] = entry
            if observer is not None:
                observer.count("net.size_cache.miss")
        elif observer is not None:
            observer.count("net.size_cache.hit")
        return entry

    def _deliver(
        self,
        round_number: Round,
        sender: ProcessId,
        per_receiver: Dict[ProcessId, Any],
        incoming_by_receiver: Dict[ProcessId, Dict[ProcessId, Any]],
        metered: bool,
        observer: Optional[Observer] = None,
        faulty: bool = False,
        tracing: bool = False,
    ) -> None:
        trace = self.trace
        events = observer is not None and observer.events_on
        # Bound lazily on the first metered delivery, so an all-bottom
        # burst creates no metric rows (rounds_used counts only rounds
        # with recorded traffic).
        record: Optional[Callable[[ProcessId, int, bool], None]] = None
        for receiver, payload in per_receiver.items():
            incoming = incoming_by_receiver.get(receiver)
            if incoming is not None:
                incoming[sender] = payload
            # Destination-is-faulty deliveries (incoming is None) "do
            # not matter" (Theorem 9) — dropped, but a correct sender's
            # cost is still metered below.
            if is_bottom(payload):
                continue
            if metered:
                if record is None:
                    record = self.metrics.sender_round_recorder(
                        round_number, sender
                    )
                bits, non_null = self._measured(payload, observer)
                record(receiver, bits, non_null)
                if events and not faulty:
                    assert observer is not None
                    observer.emit(
                        "send", sender=sender, receiver=receiver,
                        bits=bits, non_null=non_null,
                    )
            if events and faulty:
                # Adversary-fixed traffic: recorded as a corruption,
                # summarized rather than sized (a Byzantine payload's
                # size says nothing about the protocol).
                from repro.runtime.render import summarise_payload

                assert observer is not None
                observer.emit(
                    "corrupt", sender=sender, receiver=receiver,
                    summary=summarise_payload(payload),
                )
            if tracing and incoming is not None:
                # Causal trace edge: a non-bottom payload actually
                # landing in a correct receiver's incoming row.  Faulty
                # payloads are sized by the structural fallback — the
                # protocol sizer may choke on Byzantine garbage, and a
                # corrupt payload's "cost" is informational, not a
                # canonical-form bit claim.
                assert observer is not None
                if faulty:
                    edge_bits = _default_sizer(payload)
                    edge_non_null = not is_bottom(payload)
                else:
                    edge_bits, edge_non_null = self._measured(
                        payload, observer
                    )
                observer.emit(
                    "deliver", sender=sender, receiver=receiver,
                    bits=edge_bits, non_null=edge_non_null, faulty=faulty,
                )
            if incoming is not None and trace is not None:
                trace.record_envelope(
                    Envelope(sender, receiver, round_number, payload)
                )
