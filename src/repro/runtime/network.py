"""The synchronous fully connected reliable network (Section 2).

One :meth:`SynchronousNetwork.run_round` call performs the paper's
round structure exactly:

1. **send** — every correct processor's :meth:`outgoing` is collected;
2. the adversary, seeing all of that correct traffic (rushing), fixes
   the faulty processors' messages;
3. **receive / state change** — every correct processor's
   :meth:`receive` is invoked with one entry per processor id.

Reliability and synchrony mean a correct processor's message is always
delivered within the round; an omitted or malformed faulty message is
delivered as :data:`BOTTOM`, which the recipient can detect (and the
paper's protocols do: "a single message that contains more than one
value is obviously erroneous and is discarded immediately").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.adversary.base import Adversary, RoundContext
from repro.runtime.message import Envelope
from repro.runtime.metrics import MessageMetrics
from repro.runtime.node import Process
from repro.runtime.trace import ExecutionTrace
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom


def _default_sizer(message: Any) -> int:
    """Fallback message measure: 8 bits per scalar leaf, 2 per node.

    Protocols that make bit-level claims supply an exact sizer built
    from :class:`repro.arrays.encoding.MessageSizer`; this fallback
    keeps metrics meaningful for quick experiments.
    """
    if is_bottom(message):
        return 0
    if isinstance(message, tuple):
        return 2 + sum(_default_sizer(component) for component in message)
    return 8


class SynchronousNetwork:
    """Drives rounds over a set of correct processes plus an adversary."""

    def __init__(
        self,
        config: SystemConfig,
        processes: Mapping[ProcessId, Process],
        adversary: Adversary,
        inputs: Mapping[ProcessId, Value],
        sizer: Optional[Callable[[Any], int]] = None,
        is_null: Optional[Callable[[Any], bool]] = None,
        metrics: Optional[MessageMetrics] = None,
        trace: Optional[ExecutionTrace] = None,
        meter_adversary: bool = False,
    ):
        overlap = set(processes) & set(adversary.faulty_ids)
        if overlap:
            raise ValueError(
                f"processors {sorted(overlap)} are both correct and faulty"
            )
        expected = set(config.process_ids)
        provided = set(processes) | set(adversary.faulty_ids)
        if provided != expected:
            raise ValueError(
                f"processes+faulty must cover 1..{config.n}; "
                f"missing {sorted(expected - provided)}"
            )
        self.config = config
        self.processes = dict(processes)
        self.adversary = adversary
        self.inputs = dict(inputs)
        self.sizer = sizer or _default_sizer
        self.is_null = is_null or is_bottom
        self.metrics = metrics if metrics is not None else MessageMetrics()
        self.trace = trace
        self.meter_adversary = meter_adversary
        self.round_number: Round = 0

    def run_round(self) -> Round:
        """Execute one full round; returns its (1-based) number."""
        self.round_number += 1
        round_number = self.round_number

        # 1. Correct processors send.
        correct_outgoing: Dict[ProcessId, Dict[ProcessId, Any]] = {}
        for process_id, process in self.processes.items():
            correct_outgoing[process_id] = dict(process.outgoing(round_number))

        # 2. The adversary, having seen that traffic, fixes faulty messages.
        context = RoundContext(
            config=self.config,
            round_number=round_number,
            correct_outgoing=correct_outgoing,
            processes=self.processes,
            inputs=self.inputs,
        )
        faulty_outgoing: Dict[ProcessId, Dict[ProcessId, Any]] = {}
        for sender in sorted(self.adversary.faulty_ids):
            faulty_outgoing[sender] = dict(
                self.adversary.outgoing(round_number, sender, context)
            )

        # 3. Deliver and meter; then each correct processor's state change.
        incoming_by_receiver: Dict[ProcessId, Dict[ProcessId, Any]] = {
            receiver: {} for receiver in self.processes
        }
        for sender, per_receiver in correct_outgoing.items():
            self._deliver(round_number, sender, per_receiver,
                          incoming_by_receiver, metered=True)
        for sender, per_receiver in faulty_outgoing.items():
            self._deliver(round_number, sender, per_receiver,
                          incoming_by_receiver, metered=self.meter_adversary)

        self.adversary.observe_round(round_number, context, faulty_outgoing)

        for receiver, process in self.processes.items():
            incoming = incoming_by_receiver[receiver]
            # Every processor id appears exactly once in the map.
            for sender in self.config.process_ids:
                incoming.setdefault(sender, BOTTOM)
            process.receive(round_number, incoming)
            if self.trace is not None:
                self.trace.record_snapshot(
                    round_number, receiver, process.snapshot()
                )
        return round_number

    def _deliver(
        self,
        round_number: Round,
        sender: ProcessId,
        per_receiver: Dict[ProcessId, Any],
        incoming_by_receiver: Dict[ProcessId, Dict[ProcessId, Any]],
        metered: bool,
    ) -> None:
        for receiver, payload in per_receiver.items():
            if receiver not in incoming_by_receiver:
                # Destination is faulty: messages from anyone to faulty
                # processors "do not matter" (Theorem 9) — drop them,
                # but still meter correct senders' cost.
                if metered and not is_bottom(payload):
                    self.metrics.record(
                        round_number, sender, receiver,
                        bits=self.sizer(payload),
                        non_null=not self.is_null(payload),
                    )
                continue
            incoming_by_receiver[receiver][sender] = payload
            if metered and not is_bottom(payload):
                self.metrics.record(
                    round_number, sender, receiver,
                    bits=self.sizer(payload),
                    non_null=not self.is_null(payload),
                )
            if self.trace is not None and not is_bottom(payload):
                self.trace.record_envelope(
                    Envelope(sender, receiver, round_number, payload)
                )
