"""Full execution traces.

A trace records every delivered envelope and every correct processor's
post-round state snapshot.  Traces are what the simulation checker of
:mod:`repro.core.simulation` consumes to verify, round by round, that
``f_p(state(p, i, E')) = state(p, r(i), E)``.

Traces are optional (they hold the entire message history, which for
full-information protocols is exponential) and are enabled per run via
:func:`repro.runtime.engine.run_protocol`.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.runtime.message import Envelope
from repro.types import ProcessId, Round


class ExecutionTrace:
    """Accumulates envelopes and state snapshots per round."""

    def __init__(self) -> None:
        self._envelopes: List[Envelope] = []
        self._snapshots: Dict[Round, Dict[ProcessId, Any]] = {}

    def record_envelope(self, envelope: Envelope) -> None:
        """Record one delivered message."""
        self._envelopes.append(envelope)

    def record_snapshot(
        self, round_number: Round, process_id: ProcessId, state: Any
    ) -> None:
        """Record a correct processor's state after its round-``r`` change."""
        self._snapshots.setdefault(round_number, {})[process_id] = state

    # -- queries ----------------------------------------------------------

    @property
    def envelopes(self) -> List[Envelope]:
        """All recorded envelopes, in delivery order."""
        return list(self._envelopes)

    def messages_in_round(self, round_number: Round) -> List[Envelope]:
        """Envelopes delivered in one round."""
        return [
            envelope
            for envelope in self._envelopes
            if envelope.round_number == round_number
        ]

    def messages_from(self, sender: ProcessId) -> List[Envelope]:
        """Envelopes sent by one processor, across all rounds."""
        return [
            envelope for envelope in self._envelopes if envelope.sender == sender
        ]

    def snapshot(self, round_number: Round, process_id: ProcessId) -> Any:
        """The recorded state of ``process_id`` after round ``round_number``.

        Returns ``None`` when no snapshot was recorded (e.g. the
        processor is faulty).
        """
        return self._snapshots.get(round_number, {}).get(process_id)

    def snapshots_in_round(self, round_number: Round) -> Dict[ProcessId, Any]:
        """All recorded snapshots for one round."""
        return dict(self._snapshots.get(round_number, {}))

    @property
    def rounds(self) -> List[Round]:
        """Rounds with at least one snapshot, ascending."""
        return sorted(self._snapshots)
