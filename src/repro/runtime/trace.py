"""Full execution traces.

A trace records every delivered envelope and every correct processor's
post-round state snapshot.  Traces are what the simulation checker of
:mod:`repro.core.simulation` consumes to verify, round by round, that
``f_p(state(p, i, E')) = state(p, r(i), E)``.

Traces are optional (they hold the entire message history, which for
full-information protocols is exponential) and are enabled per run via
:func:`repro.runtime.engine.run_protocol`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Union

from repro.runtime.message import Envelope
from repro.types import ProcessId, Round

#: Bump when the persisted trace layout changes incompatibly.
TRACE_FORMAT_VERSION = 1


class ExecutionTrace:
    """Accumulates envelopes and state snapshots per round."""

    def __init__(self) -> None:
        self._envelopes: List[Envelope] = []
        self._snapshots: Dict[Round, Dict[ProcessId, Any]] = {}

    def record_envelope(self, envelope: Envelope) -> None:
        """Record one delivered message."""
        self._envelopes.append(envelope)

    def record_snapshot(
        self, round_number: Round, process_id: ProcessId, state: Any
    ) -> None:
        """Record a correct processor's state after its round-``r`` change."""
        self._snapshots.setdefault(round_number, {})[process_id] = state

    # -- queries ----------------------------------------------------------

    @property
    def envelopes(self) -> List[Envelope]:
        """All recorded envelopes, in delivery order."""
        return list(self._envelopes)

    def messages_in_round(self, round_number: Round) -> List[Envelope]:
        """Envelopes delivered in one round."""
        return [
            envelope
            for envelope in self._envelopes
            if envelope.round_number == round_number
        ]

    def messages_from(self, sender: ProcessId) -> List[Envelope]:
        """Envelopes sent by one processor, across all rounds."""
        return [
            envelope for envelope in self._envelopes if envelope.sender == sender
        ]

    def snapshot(self, round_number: Round, process_id: ProcessId) -> Any:
        """The recorded state of ``process_id`` after round ``round_number``.

        Returns ``None`` when no snapshot was recorded (e.g. the
        processor is faulty).
        """
        return self._snapshots.get(round_number, {}).get(process_id)

    def snapshots_in_round(self, round_number: Round) -> Dict[ProcessId, Any]:
        """All recorded snapshots for one round."""
        return dict(self._snapshots.get(round_number, {}))

    @property
    def rounds(self) -> List[Round]:
        """Rounds with at least one snapshot, ascending."""
        return sorted(self._snapshots)

    # -- persistence -------------------------------------------------------

    def to_jsonl(self, path: Union[str, pathlib.Path]) -> None:
        """Persist the trace as JSONL, payloads via the tagged codec.

        The written trace round-trips through :meth:`from_jsonl` with
        full structural equality (interned arrays reload as plain
        tuples, which compare equal), so a recorded execution can be
        re-checked by the simulation checker offline.  One header line
        carries the format version; then one record per envelope in
        delivery order, then one per snapshot in recording order.
        """
        from repro.obs.codec import encode_value

        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w") as handle:
            header = {"kind": "trace", "v": TRACE_FORMAT_VERSION}
            handle.write(json.dumps(header) + "\n")
            for envelope in self._envelopes:
                record: Dict[str, Any] = {
                    "kind": "envelope",
                    "sender": envelope.sender,
                    "receiver": envelope.receiver,
                    "round": envelope.round_number,
                    "payload": encode_value(envelope.payload),
                }
                handle.write(json.dumps(record) + "\n")
            for round_number in sorted(self._snapshots):
                for process_id, state in self._snapshots[
                    round_number
                ].items():
                    record = {
                        "kind": "snapshot",
                        "round": round_number,
                        "process": process_id,
                        "state": encode_value(state),
                    }
                    handle.write(json.dumps(record) + "\n")

    @classmethod
    def from_jsonl(
        cls, path: Union[str, pathlib.Path]
    ) -> "ExecutionTrace":
        """Reload a trace written by :meth:`to_jsonl`."""
        from repro.obs.codec import decode_value

        trace = cls()
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(lines[0])
        if not (
            isinstance(header, dict)
            and header.get("kind") == "trace"
            and header.get("v") == TRACE_FORMAT_VERSION
        ):
            raise ValueError(
                f"{path}: not a version-{TRACE_FORMAT_VERSION} trace file"
            )
        for line in lines[1:]:
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "envelope":
                trace.record_envelope(
                    Envelope(
                        record["sender"],
                        record["receiver"],
                        record["round"],
                        decode_value(record["payload"]),
                    )
                )
            elif kind == "snapshot":
                trace.record_snapshot(
                    record["round"],
                    record["process"],
                    decode_value(record["state"]),
                )
            else:
                raise ValueError(f"{path}: unknown trace record {kind!r}")
        return trace
