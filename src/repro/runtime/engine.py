"""Execution driver.

:func:`run_protocol` wires processes, adversary, network, metrics and
trace together, runs rounds until a stop condition holds, and returns
an :class:`ExecutionResult` — the executable analogue of the paper's
execution tuple ``(k, F, I, M)`` together with everything the
experiments measure (decisions, decision rounds, bits, traces).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

import repro.obs.core as _obs
from repro.adversary.base import Adversary, PassiveAdversary
from repro.errors import ConfigurationError
from repro.runtime.metrics import MessageMetrics
from repro.runtime.network import SynchronousNetwork
from repro.runtime.node import Process
from repro.runtime.rng import derive_rng
from repro.runtime.scheduler import Scheduler, resolve_scheduler
from repro.runtime.trace import ExecutionTrace
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value

# Builds one correct processor: (process_id, config, input_value) -> Process.
ProcessFactory = Callable[[ProcessId, SystemConfig, Value], Process]

# Decides when the execution may stop: (processes, round) -> bool.
StopCondition = Callable[[Mapping[ProcessId, Process], Round], bool]


def all_decided(processes: Mapping[ProcessId, Process], round_number: Round) -> bool:
    """Default stop condition: every correct processor has decided."""
    return all(process.has_decided() for process in processes.values())


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of one complete execution."""

    config: SystemConfig
    inputs: Dict[ProcessId, Value]
    faulty_ids: frozenset
    rounds: Round
    decisions: Dict[ProcessId, Value]
    decision_rounds: Dict[ProcessId, Optional[Round]]
    metrics: MessageMetrics
    trace: Optional[ExecutionTrace]
    processes: Dict[ProcessId, Process]

    @property
    def correct_ids(self) -> Tuple[ProcessId, ...]:
        """Correct processor ids, ascending (faulty ids excluded)."""
        return tuple(sorted(self.processes))

    def decided_values(self) -> set:
        """The set of values decided by correct processors."""
        return {
            value for value in self.decisions.values() if value is not BOTTOM
        }

    def answer_vector(self) -> tuple:
        """The paper's ``ans(E)``: per-processor decision, BOTTOM if faulty.

        Undecided correct processors also contribute BOTTOM; a deciding
        execution has no such entries among correct processors.
        """
        return tuple(
            BOTTOM
            if process_id in self.faulty_ids
            else self.decisions.get(process_id, BOTTOM)
            for process_id in self.config.process_ids
        )

    def is_deciding(self) -> bool:
        """Whether every correct processor has decided."""
        return all(
            self.decisions.get(process_id, BOTTOM) is not BOTTOM
            for process_id in self.correct_ids
        )


def run_protocol(
    factory: ProcessFactory,
    config: SystemConfig,
    inputs: Mapping[ProcessId, Value],
    adversary: Optional[Adversary] = None,
    max_rounds: int = 1000,
    stop_condition: Optional[StopCondition] = None,
    run_full_rounds: Optional[int] = None,
    sizer: Optional[Callable[[Any], int]] = None,
    is_null: Optional[Callable[[Any], bool]] = None,
    record_trace: bool = False,
    seed: int = 0,
    meter_adversary: bool = False,
    scheduler: Union[None, str, Scheduler] = None,
) -> ExecutionResult:
    """Run one execution to completion.

    Parameters
    ----------
    factory:
        Builds each correct processor from its id, the config, and its
        input value.
    config:
        System parameters ``(n, t)``.
    inputs:
        Input value per processor id (faulty ids included — they are
        part of the paper's input vector ``I`` even though the
        adversary need not honour them).
    adversary:
        Fault behaviour; defaults to the fault-free
        :class:`PassiveAdversary`.
    max_rounds:
        Safety bound; exceeding it without stopping raises
        :class:`ConfigurationError` (protocols here have known round
        bounds, so hitting the cap indicates a bug, not slow progress).
    stop_condition:
        Defaults to "all correct processors decided".
    run_full_rounds:
        If given, run exactly this many rounds regardless of decisions
        (used when a later decision rule is applied to final states).
    sizer / is_null:
        Exact message measurement hooks (see the network).
    record_trace:
        Record every envelope and state snapshot (exponential for
        full-information protocols; test scale only).
    seed:
        Seeds the adversary's RNG substream.
    meter_adversary:
        Include faulty processors' traffic in the metrics — a
        diagnostics view; the paper's bounds meter correct traffic
        only (see :mod:`repro.runtime.metrics`).
    scheduler:
        Round-engine backend: a :class:`~repro.runtime.scheduler.
        Scheduler` instance, a backend name (``"lockstep"``,
        ``"async"``, ``"async:<max_delay>[:<salt>]"``), or ``None`` to
        honour the ``REPRO_SCHEDULER`` environment variable (default
        lockstep).  Communication-closed protocols produce the same
        result under every backend; see docs/runtime.md.
    """
    adversary = adversary or PassiveAdversary()
    adversary.bind(config, derive_rng(seed, "adversary"))

    missing = set(config.process_ids) - set(inputs)
    if missing:
        raise ConfigurationError(f"inputs missing for processors {sorted(missing)}")

    processes: Dict[ProcessId, Process] = {
        process_id: factory(process_id, config, inputs[process_id])
        for process_id in config.process_ids
        if process_id not in adversary.faulty_ids
    }

    trace = ExecutionTrace() if record_trace else None
    network = SynchronousNetwork(
        config=config,
        processes=processes,
        adversary=adversary,
        inputs=inputs,
        sizer=sizer,
        is_null=is_null,
        trace=trace,
        meter_adversary=meter_adversary,
        scheduler=resolve_scheduler(scheduler),
        seed=seed,
    )

    observer = _obs.ACTIVE
    if observer is not None:
        observer.begin_run(
            n=config.n,
            t=config.t,
            seed=seed,
            adversary=type(adversary).__name__,
            faulty=sorted(adversary.faulty_ids),
        )

    stop = stop_condition or all_decided
    rounds_run = 0
    with _obs.span("engine.run"):
        while True:
            if run_full_rounds is not None:
                if rounds_run >= run_full_rounds:
                    break
            elif rounds_run > 0 and stop(processes, rounds_run):
                break
            if rounds_run >= max_rounds:
                raise ConfigurationError(
                    f"execution exceeded max_rounds={max_rounds} "
                    "without stopping"
                )
            rounds_run = network.run_round()

    if observer is not None:
        metrics = network.metrics
        observer.end_run(
            rounds=rounds_run,
            decided=sum(
                1 for process in processes.values() if process.has_decided()
            ),
            messages=metrics.total_messages,
            non_null=metrics.total_non_null_messages,
            bits=metrics.total_bits,
        )

    return ExecutionResult(
        config=config,
        inputs=dict(inputs),
        faulty_ids=adversary.faulty_ids,
        rounds=rounds_run,
        decisions={
            process_id: process.decision
            for process_id, process in processes.items()
        },
        decision_rounds={
            process_id: process.decision_round
            for process_id, process in processes.items()
        },
        metrics=network.metrics,
        trace=trace,
        processes=processes,
    )
