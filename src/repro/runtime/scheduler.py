"""Pluggable round schedulers: lockstep reference and async backend.

The paper's model is lockstep synchronous — in every round each
correct processor sends, receives, and changes state, and the round
boundary is global.  But the canonical form's defining property,
*communication-closedness* (every message sent in round ``r`` is
consumed in round ``r`` and nowhere else), is exactly what makes that
round structure recoverable from an asynchronous execution: if a
correct processor simply waits until its round-``r`` closed message
set has been delivered before making its round-``r`` state change,
any admissible asynchronous schedule induces the same per-round
incoming maps — and therefore the same execution — as the lockstep
run.  This is the reduction of Damian/Drăgoi/Widder ("Reducing
asynchrony to synchronized rounds", PAPERS.md), made executable.

A :class:`Scheduler` owns phase 3 of
:meth:`repro.runtime.network.SynchronousNetwork.run_round` — message
delivery ordering, receiver state changes, and round advancement.
Phases 1–2 (collecting correct sends, letting the rushing adversary
fix faulty traffic) stay in the network: the adversary's view of a
full round of correct traffic is a *hook point* both backends share,
and it is what serialises rounds globally — a round's faulty messages
cannot exist until every correct processor has sent, so admissible
schedules permute delivery and state-change order *within* a round
while the send/fix boundary stays a barrier.

Two backends:

* :class:`LockstepScheduler` — the byte-identical reference: delivers
  every row, then runs every receiver's state change in processor-id
  order.  This is exactly the loop the network ran before schedulers
  existed.
* :class:`AsyncScheduler` — the event-driven backend.  Every
  ``(sender, receiver)`` channel delivery is an event carrying a
  bounded logical delay sampled from a dedicated RNG substream
  (``derive_rng(seed, "scheduler", salt, round)`` — per-round, so
  schedules are prefix-stable across different run lengths, which is
  what makes checkpoint resume schedule-faithful).  Events drain in
  logical-time order; a correct processor's round-``r`` state change
  fires the moment its round's closed message set is fully delivered,
  so receivers advance in *schedule* order, skewed against each
  other, not in processor-id order.  Metering and row construction
  happen before the schedule is sampled, in the lockstep-canonical
  order, so an execution's :class:`~repro.runtime.metrics.MessageMetrics`
  (and hence its :class:`~repro.runtime.engine.ExecutionResult`) is
  bit-for-bit the lockstep one whenever the protocol is
  communication-closed.

Equivalence is *tested*, not assumed:
``tests/runtime/test_scheduler_equivalence.py`` asserts
pickle-identical results across backends for every certified-canonical
catalog protocol and every committed fuzz case, and demonstrates
divergence on a deliberately non-closed fixture (the negative
control).  The backend is selected per execution through
``run_protocol(..., scheduler=...)``, per grid through
``sweep(..., scheduler=...)``, or ambiently through the
``REPRO_SCHEDULER`` environment variable (see docs/runtime.md).
"""

from __future__ import annotations

import abc
import heapq
import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

import repro.obs.core as _obs
from repro.adversary.base import RoundContext
from repro.core.rounds import RoundRecovery
from repro.errors import ConfigurationError
from repro.runtime.rng import derive_rng
from repro.types import ProcessId, Round, is_bottom

if TYPE_CHECKING:
    from repro.runtime.network import SynchronousNetwork

#: Environment variable selecting the ambient default backend.
SCHEDULER_ENV = "REPRO_SCHEDULER"

#: Default logical-delay bound for the async backend: small enough to
#: keep event queues cheap, large enough that delivery and state-change
#: order is genuinely permuted (a bound of 0 degenerates to the
#: lockstep order).
DEFAULT_MAX_DELAY = 3

#: Outgoing maps keyed by sender: ``{sender: {receiver: payload}}``.
OutgoingMap = Dict[ProcessId, Dict[ProcessId, Any]]


class Scheduler(abc.ABC):
    """Delivery ordering and round advancement for one execution.

    A scheduler instance is bound to exactly one network (the engine
    builds a fresh one per execution); ``bind`` re-binding an instance
    to a second live network raises, because the async backend carries
    per-execution schedule state.
    """

    #: Stable backend name (``repro run-ba --scheduler`` choices,
    #: bench report fields, test parametrisation).
    name: str = "?"

    def __init__(self) -> None:
        self._network: Optional["SynchronousNetwork"] = None
        self._seed: int = 0

    def bind(self, network: "SynchronousNetwork", seed: int) -> None:
        """Attach the network this scheduler drives (engine calls this)."""
        if self._network is not None and self._network is not network:
            raise ConfigurationError(
                f"{type(self).__name__} is already bound to a network; "
                "build a fresh scheduler per execution"
            )
        self._network = network
        self._seed = int(seed)

    @property
    def network(self) -> "SynchronousNetwork":
        if self._network is None:
            raise ConfigurationError("scheduler used before bind()")
        return self._network

    @abc.abstractmethod
    def dispatch(
        self,
        round_number: Round,
        context: RoundContext,
        correct_outgoing: OutgoingMap,
        faulty_outgoing: OutgoingMap,
    ) -> None:
        """Run phase 3 of the round: deliver, observe, state-change.

        By the time this is called the round's complete traffic is
        fixed (correct sends collected, faulty sends chosen by the
        rushing adversary).  The scheduler decides delivery order and
        when each receiver's state change fires; it must call
        ``adversary.observe_round`` exactly once, after deliveries are
        fixed and before any correct state change, and must leave every
        correct processor advanced through ``round_number`` on return —
        round recovery may reorder, never drop.
        """

    def describe(self) -> str:
        """Human-readable backend description for reports and logs."""
        return self.name


class LockstepScheduler(Scheduler):
    """The paper's synchronous reference backend.

    Delivers every sender's row (correct senders first, in process
    order; faulty senders after, in sorted order), then runs every
    receiver's state change in processor-id order.  Byte-identical to
    the pre-scheduler network loop — the reference every other backend
    is measured against.
    """

    name = "lockstep"

    def dispatch(
        self,
        round_number: Round,
        context: RoundContext,
        correct_outgoing: OutgoingMap,
        faulty_outgoing: OutgoingMap,
    ) -> None:
        network = self.network
        observer = _obs.ACTIVE
        events = observer is not None and observer.events_on
        tracing = events and observer is not None and observer.trace_on

        incoming_by_receiver = network.fresh_delivery_rows()
        for sender, per_receiver in correct_outgoing.items():
            network._deliver(round_number, sender, per_receiver,
                             incoming_by_receiver, metered=True,
                             observer=observer, faulty=False,
                             tracing=tracing)
        for sender, per_receiver in faulty_outgoing.items():
            network._deliver(round_number, sender, per_receiver,
                             incoming_by_receiver,
                             metered=network.meter_adversary,
                             observer=observer, faulty=True,
                             tracing=tracing)

        network.adversary.observe_round(round_number, context, faulty_outgoing)

        if network.trace is None and not events:
            # Fast path: no snapshot or event bookkeeping at all.
            for receiver, process in network.processes.items():
                process.receive(round_number, incoming_by_receiver[receiver])
        else:
            for receiver, process in network.processes.items():
                process.receive(round_number, incoming_by_receiver[receiver])
                network.record_state_change(
                    round_number, receiver, process, observer, events
                )


class AsyncScheduler(Scheduler):
    """Event-driven backend: rounds recovered via closedness.

    Parameters
    ----------
    max_delay:
        Bound on the logical delay of any single delivery (the
        partial-synchrony bound).  ``0`` degenerates to the lockstep
        delivery and state-change order.
    salt:
        Extra key mixed into the schedule substream.  Varying the salt
        re-samples the schedule *without* touching the adversary or
        protocol substreams — the metamorphic axis the conformance
        suite quantifies over.
    """

    name = "async"

    def __init__(self, max_delay: int = DEFAULT_MAX_DELAY, salt: int = 0):
        super().__init__()
        if max_delay < 0:
            raise ConfigurationError(
                f"max_delay must be >= 0, got {max_delay}"
            )
        self.max_delay = int(max_delay)
        self.salt = int(salt)
        #: Per-round skew observed so far: how many state changes fired
        #: out of processor-id order (diagnostics; see docs/runtime.md).
        self.reordered_state_changes = 0
        #: Logical delays sampled so far (diagnostics).
        self.delays_sampled = 0

    def describe(self) -> str:
        return f"async(max_delay={self.max_delay}, salt={self.salt})"

    def round_schedule(
        self, round_number: Round
    ) -> List[Tuple[int, int, ProcessId, ProcessId]]:
        """The round's delivery events, ``(delay, seq, sender, receiver)``.

        Sampled from ``derive_rng(seed, "scheduler", salt, round)`` in
        canonical channel order (sender-major, ascending) so that the
        same execution seed always yields the same schedule — for any
        worker count, and for any total run length (the per-round
        substream keying makes schedules prefix-stable, which is what
        makes a mid-run checkpoint resume schedule-faithful).
        """
        network = self.network
        rng = derive_rng(self._seed, "scheduler", self.salt, round_number)
        schedule: List[Tuple[int, int, ProcessId, ProcessId]] = []
        seq = 0
        receivers = sorted(network.processes)
        for sender in network.config.process_ids:
            for receiver in receivers:
                delay = int(rng.integers(0, self.max_delay + 1))
                schedule.append((delay, seq, sender, receiver))
                seq += 1
        self.delays_sampled += seq
        return schedule

    def dispatch(
        self,
        round_number: Round,
        context: RoundContext,
        correct_outgoing: OutgoingMap,
        faulty_outgoing: OutgoingMap,
    ) -> None:
        network = self.network
        observer = _obs.ACTIVE
        events = observer is not None and observer.events_on
        tracing = events and observer is not None and observer.trace_on

        # Phase A — fix and meter the round's traffic in the lockstep-
        # canonical order.  Metering measures what the protocol *sent*,
        # which no admissible schedule may change, so the meters (and
        # the ExecutionResult they land in) stay bit-for-bit identical
        # to the reference backend.  Deliver trace edges are withheld
        # here; they are emitted below, in schedule order.
        incoming_by_receiver = network.fresh_delivery_rows()
        for sender, per_receiver in correct_outgoing.items():
            network._deliver(round_number, sender, per_receiver,
                             incoming_by_receiver, metered=True,
                             observer=observer, faulty=False,
                             tracing=False)
        for sender, per_receiver in faulty_outgoing.items():
            network._deliver(round_number, sender, per_receiver,
                             incoming_by_receiver,
                             metered=network.meter_adversary,
                             observer=observer, faulty=True,
                             tracing=False)

        network.adversary.observe_round(round_number, context, faulty_outgoing)

        # Phase B — realise one admissible schedule.  Every channel
        # (including silent ones: an omitted message is a detectable
        # BOTTOM arrival in the synchronous reduction) becomes an event
        # with a bounded logical delay; events drain in logical-time
        # order, and a receiver's state change fires the moment its
        # round's closed message set is complete — round advancement is
        # *recovered* from delivery, not imposed by a global barrier.
        heap = self.round_schedule(round_number)
        heapq.heapify(heap)
        recovery = RoundRecovery(network.config.n, network.processes)
        faulty_ids = network.adversary.faulty_ids
        expected_order = iter(sorted(network.processes))
        while heap:
            _delay, _seq, sender, receiver = heapq.heappop(heap)
            payload = incoming_by_receiver[receiver][sender]
            if tracing and not is_bottom(payload):
                network.emit_deliver_edge(
                    round_number, sender, receiver, payload,
                    observer=observer, faulty=sender in faulty_ids,
                )
            if recovery.deliver(receiver):
                # Round recovery: this receiver's closed message set is
                # fully delivered — its round-r state change fires now,
                # possibly before another receiver has all round-r
                # messages (that is the round skew).
                process = network.processes[receiver]
                process.receive(round_number, incoming_by_receiver[receiver])
                network.record_state_change(
                    round_number, receiver, process, observer, events
                )
                if receiver != next(expected_order):
                    self.reordered_state_changes += 1
        if not recovery.complete():
            raise ConfigurationError(
                "schedule drained with incomplete rounds for receivers "
                f"{recovery.incomplete_receivers()}"
            )


def resolve_scheduler(
    spec: Union[None, str, Scheduler] = None,
) -> Scheduler:
    """Build the scheduler an execution should run under.

    ``spec`` may be a ready :class:`Scheduler` (returned as-is), a
    backend name, or ``None`` — in which case the ``REPRO_SCHEDULER``
    environment variable chooses, defaulting to ``lockstep``.  Accepted
    names:

    - ``lockstep`` (aliases ``sync``, ``synchronous``) — the reference;
    - ``async`` (alias ``asynchronous``) — the event-driven backend at
      its default delay bound;
    - ``async:<max_delay>`` or ``async:<max_delay>:<salt>`` — the
      async backend with an explicit partial-synchrony bound and
      schedule salt (e.g. ``async:5:17``).
    """
    if isinstance(spec, Scheduler):
        return spec
    if spec is None:
        spec = os.environ.get(SCHEDULER_ENV) or LockstepScheduler.name
    name = str(spec).strip().lower()
    if name in ("lockstep", "sync", "synchronous"):
        return LockstepScheduler()
    if name in ("async", "asynchronous"):
        return AsyncScheduler()
    if name.startswith("async:"):
        fields = name.split(":")[1:]
        if len(fields) in (1, 2):
            try:
                max_delay = int(fields[0])
                salt = int(fields[1]) if len(fields) == 2 else 0
            except ValueError:
                pass
            else:
                return AsyncScheduler(max_delay=max_delay, salt=salt)
    raise ConfigurationError(
        f"unknown scheduler {spec!r}; expected 'lockstep', 'async', or "
        "'async:<max_delay>[:<salt>]'"
    )


#: The backend names the CLI offers (``--scheduler`` choices; the
#: parametrised ``async:<delay>[:<salt>]`` form is accepted anywhere a
#: name is, but is not enumerable).
SCHEDULER_CHOICES = (LockstepScheduler.name, AsyncScheduler.name)


__all__ = [
    "DEFAULT_MAX_DELAY",
    "SCHEDULER_CHOICES",
    "SCHEDULER_ENV",
    "AsyncScheduler",
    "LockstepScheduler",
    "Scheduler",
    "resolve_scheduler",
]
