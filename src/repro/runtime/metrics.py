"""Per-round, per-link communication meters.

The paper's headline quantity is *message bits*.  The meter records,
for every round:

* messages sent and their measured bit sizes (via a protocol-supplied
  sizer, see :class:`repro.arrays.encoding.MessageSizer`),
* how many of those messages were *non-null* — the unit the avalanche
  coding convention of Section 4 bounds ("each correct processor sends
  at most 3 non-null messages in any execution").

By default only traffic of **correct** processors is metered: the
paper's bounds quantify the protocol's cost, and a Byzantine processor
can send arbitrarily large garbage that says nothing about the
protocol.  Adversary traffic can be included for diagnostics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Tuple

from repro.types import ProcessId, Round


class RoundUsage:
    """Aggregated communication in one round.

    A ``__slots__`` class rather than a dataclass: three counters exist
    per round, per sender, *and* per link, so a metered execution
    allocates thousands of these and the per-instance ``__dict__`` was
    measurable in sweep profiles.  Equality and repr keep the dataclass
    semantics tests rely on.
    """

    __slots__ = ("messages", "non_null_messages", "bits")

    def __init__(
        self, messages: int = 0, non_null_messages: int = 0, bits: int = 0
    ):
        self.messages = messages
        self.non_null_messages = non_null_messages
        self.bits = bits

    def add(self, bits: int, non_null: bool) -> None:
        self.messages += 1
        self.bits += bits
        if non_null:
            self.non_null_messages += 1

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, RoundUsage):
            return NotImplemented
        return (
            self.messages == other.messages
            and self.non_null_messages == other.non_null_messages
            and self.bits == other.bits
        )

    def __repr__(self) -> str:
        return (
            f"RoundUsage(messages={self.messages}, "
            f"non_null_messages={self.non_null_messages}, bits={self.bits})"
        )


class MessageMetrics:
    """Accumulates communication usage across an execution."""

    def __init__(self) -> None:
        self._per_round: Dict[Round, RoundUsage] = defaultdict(RoundUsage)
        self._per_sender: Dict[ProcessId, RoundUsage] = defaultdict(RoundUsage)
        self._per_link: Dict[Tuple[ProcessId, ProcessId], RoundUsage] = defaultdict(
            RoundUsage
        )

    def record(
        self,
        round_number: Round,
        sender: ProcessId,
        receiver: ProcessId,
        bits: int,
        non_null: bool = True,
    ) -> None:
        """Record one transmitted message."""
        self._per_round[round_number].add(bits, non_null)
        self._per_sender[sender].add(bits, non_null)
        self._per_link[(sender, receiver)].add(bits, non_null)

    def sender_round_recorder(
        self, round_number: Round, sender: ProcessId
    ) -> Callable[[ProcessId, int, bool], None]:
        """A per-receiver :meth:`record` with the fixed rows prefetched.

        The network delivers one sender's round traffic in a burst of
        up to ``n`` messages that share the round and sender rows;
        binding those two rows once leaves only the per-link lookup on
        the per-message path.  Semantically identical to calling
        :meth:`record` per message.
        """
        round_usage = self._per_round[round_number]
        sender_usage = self._per_sender[sender]
        per_link = self._per_link

        def record(receiver: ProcessId, bits: int, non_null: bool) -> None:
            link_usage = per_link[(sender, receiver)]
            round_usage.messages += 1
            round_usage.bits += bits
            sender_usage.messages += 1
            sender_usage.bits += bits
            link_usage.messages += 1
            link_usage.bits += bits
            if non_null:
                round_usage.non_null_messages += 1
                sender_usage.non_null_messages += 1
                link_usage.non_null_messages += 1

        return record

    # -- totals -----------------------------------------------------------

    @property
    def total_bits(self) -> int:
        """Total measured bits across all rounds."""
        return sum(usage.bits for usage in self._per_round.values())

    @property
    def total_messages(self) -> int:
        """Total messages, null messages included."""
        return sum(usage.messages for usage in self._per_round.values())

    @property
    def total_non_null_messages(self) -> int:
        """Total non-null messages (the coding-convention unit)."""
        return sum(usage.non_null_messages for usage in self._per_round.values())

    @property
    def rounds_used(self) -> int:
        """Highest round number with any recorded traffic."""
        return max(self._per_round, default=0)

    # -- breakdowns -------------------------------------------------------

    def round_usage(self, round_number: Round) -> RoundUsage:
        """Usage within one round (zeroes if no traffic was recorded)."""
        return self._per_round.get(round_number, RoundUsage())

    def sender_usage(self, sender: ProcessId) -> RoundUsage:
        """Usage attributed to one sending processor."""
        return self._per_sender.get(sender, RoundUsage())

    def non_null_by_sender(self) -> Dict[ProcessId, int]:
        """Non-null message count per sender — Section 4's bound."""
        return {
            sender: usage.non_null_messages
            for sender, usage in self._per_sender.items()
        }

    def bits_by_round(self) -> List[Tuple[Round, int]]:
        """(round, bits) pairs in round order."""
        return sorted(
            (round_number, usage.bits)
            for round_number, usage in self._per_round.items()
        )

    def as_counters(self, prefix: str = "net") -> Dict[str, int]:
        """The totals as instrumentation-registry counter deltas.

        The bridge into :class:`repro.obs.registry.InstrumentRegistry`:
        ``registry.absorb(metrics.as_counters())`` folds an execution's
        meters into the dotted-counter namespace.
        """
        return {
            f"{prefix}.messages": self.total_messages,
            f"{prefix}.non_null_messages": self.total_non_null_messages,
            f"{prefix}.bits": self.total_bits,
        }

    def merge(self, other: "MessageMetrics") -> None:
        """Fold another meter's records into this one."""
        for round_number, usage in other._per_round.items():
            target = self._per_round[round_number]
            target.messages += usage.messages
            target.non_null_messages += usage.non_null_messages
            target.bits += usage.bits
        for sender, usage in other._per_sender.items():
            target = self._per_sender[sender]
            target.messages += usage.messages
            target.non_null_messages += usage.non_null_messages
            target.bits += usage.bits
        for link, usage in other._per_link.items():
            target = self._per_link[link]
            target.messages += usage.messages
            target.non_null_messages += usage.non_null_messages
            target.bits += usage.bits
