"""Saving and restoring execution results.

Long sweeps are cheap to re-run here, but their *outcomes* are worth
keeping: EXPERIMENTS.md points at recorded numbers, and regressions
are easiest to litigate against a stored artifact.  This module
persists :class:`repro.runtime.engine.ExecutionResult` objects to disk
and restores them with full fidelity — including the singleton markers
(:data:`BOTTOM`, null messages, CRASHED) whose ``is``-identity the
library's code relies on, which is why they all implement
``__reduce__``.

Process objects can hold closures (decision rules), which pickle
refuses; the saved form therefore drops the live process objects and
keeps everything else (decisions, rounds, metrics, trace, inputs).
"""

from __future__ import annotations

import dataclasses
import pathlib
import pickle
from typing import Union

import repro.obs.core as _obs
from repro.errors import ConfigurationError
from repro.runtime.engine import ExecutionResult

Pathish = Union[str, pathlib.Path]

# Bump when the saved layout changes incompatibly.
FORMAT_VERSION = 1


def save_result(result: ExecutionResult, path: Pathish) -> None:
    """Persist ``result`` (without live process objects) to ``path``."""
    stripped = dataclasses.replace(result, processes={})
    payload = {"version": FORMAT_VERSION, "result": stripped}
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)
    observer = _obs.ACTIVE
    if observer is not None:
        observer.emit("checkpoint_save", path=str(path))


def load_result(path: Pathish) -> ExecutionResult:
    """Restore a result saved by :func:`save_result`."""
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if not (
        isinstance(payload, dict)
        and payload.get("version") == FORMAT_VERSION
        and isinstance(payload.get("result"), ExecutionResult)
    ):
        raise ConfigurationError(
            f"{path} is not a version-{FORMAT_VERSION} saved execution result"
        )
    observer = _obs.ACTIVE
    if observer is not None:
        observer.emit("checkpoint_load", path=str(path))
    return payload["result"]
