"""Deterministic randomness.

Every execution in this library is replayable: all random choices
(adversary behaviour, Ben-Or's coin flips) flow from a single seed.
Substreams are derived with :func:`derive_rng` so that, e.g., the
adversary's stream is independent of a protocol's stream yet both are
fixed by the top-level seed.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Seedish = Union[int, np.random.Generator, None]


def make_rng(seed: Seedish = None) -> np.random.Generator:
    """Return a generator for ``seed``.

    Accepts an int seed, an existing generator (returned unchanged), or
    ``None`` (seed 0, so that "no seed" still means deterministic — an
    intentional departure from numpy's default, because replayability
    is a core requirement here).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(seed)


def derive_rng(seed: Seedish, *keys: object) -> np.random.Generator:
    """Derive an independent substream from ``seed`` and a key path.

    The same ``(seed, keys)`` always yields the same stream; distinct
    key paths yield (cryptographically) independent streams.  When
    given a generator rather than an int, a stable base is first drawn
    from it — callers who need exact replay should pass ints.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    else:
        base = 0 if seed is None else int(seed)
    digest = hashlib.sha256(
        ("/".join([str(base)] + [repr(key) for key in keys])).encode()
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))
