"""Human-readable views of recorded executions.

Protocol debugging lives and dies by being able to *see* a round:
who sent what kind of thing to whom, who decided when, which messages
were replaced by the adversary.  These renderers turn an
:class:`repro.runtime.trace.ExecutionTrace` into compact monospace
summaries (payloads are summarised, never dumped — full-information
payloads are exponential).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.runtime.engine import ExecutionResult
from repro.types import BOTTOM, is_bottom


def summarise_payload(payload: Any, limit: int = 28) -> str:
    """A short, shape-first description of one message payload."""
    description = _describe(payload)
    if len(description) > limit:
        description = description[: limit - 1] + "…"
    return description


def _describe(payload: Any) -> str:
    if is_bottom(payload):
        return "-"
    if isinstance(payload, tuple):
        depth, width = _shape(payload)
        return f"array[d{depth} w{width}]"
    if isinstance(payload, frozenset):
        return f"items({len(payload)})"
    if isinstance(payload, dict):
        return f"map({len(payload)})"
    type_name = type(payload).__name__
    if type_name == "CompactPayload":
        main = _describe(payload.main)
        return f"core:{main} votes:{len(payload.votes)}"
    if type_name == "CrashPayload":
        return f"core:{_describe(payload.main)} patches:{len(payload.patches)}"
    return repr(payload)


def _shape(array: Any) -> tuple:
    depth = 0
    node = array
    width = len(array) if isinstance(array, tuple) else 0
    while isinstance(node, tuple) and node:
        depth += 1
        node = node[0]
    return depth, width


def render_round(
    result: ExecutionResult,
    round_number: int,
    summarise: Callable[[Any], str] = summarise_payload,
) -> str:
    """One round's traffic as a sender-by-receiver matrix."""
    if result.trace is None:
        return "(no trace recorded — run with record_trace=True)"
    ids = result.config.process_ids
    cells = {
        (envelope.sender, envelope.receiver): summarise(envelope.payload)
        for envelope in result.trace.messages_in_round(round_number)
    }
    width = max(
        [len("snd\\rcv")]
        + [len(cells.get((s, r), "-")) for s in ids for r in ids]
        + [len(str(max(ids)))]
    )
    lines = [f"round {round_number}"]
    header = "snd\\rcv".ljust(width + 2) + " ".join(
        str(r).ljust(width) for r in ids
    )
    lines.append(header)
    for sender in ids:
        marker = "x" if sender in result.faulty_ids else " "
        row = f"{sender}{marker}".ljust(width + 2) + " ".join(
            cells.get((sender, receiver), "-").ljust(width)
            for receiver in ids
        )
        lines.append(row)
    return "\n".join(lines)


def render_decisions(result: ExecutionResult) -> str:
    """A per-processor decision timeline."""
    lines = ["decisions:"]
    for process_id in result.config.process_ids:
        if process_id in result.faulty_ids:
            lines.append(f"  {process_id}: (faulty)")
            continue
        decision = result.decisions.get(process_id, BOTTOM)
        if is_bottom(decision):
            lines.append(f"  {process_id}: undecided")
        else:
            lines.append(
                f"  {process_id}: {decision!r} @ round "
                f"{result.decision_rounds[process_id]}"
            )
    return "\n".join(lines)


def render_execution(
    result: ExecutionResult,
    rounds: Optional[List[int]] = None,
) -> str:
    """Selected rounds plus the decision timeline."""
    if result.trace is None:
        return "(no trace recorded — run with record_trace=True)"
    selected = rounds if rounds is not None else list(
        range(1, result.rounds + 1)
    )
    sections = [render_round(result, r) for r in selected]
    sections.append(render_decisions(result))
    return "\n\n".join(sections)
