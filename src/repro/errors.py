"""Exception hierarchy for the repro library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A protocol or system was configured with invalid parameters.

    Raised, for example, when an avalanche agreement instance is asked
    to tolerate ``t`` faults with fewer than ``3t + 1`` processors.
    """


class ProtocolViolation(ReproError):
    """A correct processor observed behaviour that breaks the protocol.

    This is an *internal consistency* failure: correct processors must
    never trigger it against each other.  Tests use it to assert that
    invariants (e.g. the lemmas of Section 5.4) hold at runtime.
    """


class SimulationMismatch(ReproError):
    """The simulation relation of Section 3.1 failed to hold.

    Raised by the simulation checker when
    ``f_p(state(p, i, E')) != state(p, r(i), E)`` for some correct
    processor ``p`` and round ``i``.
    """


class DecisionError(ReproError):
    """A decision was requested or produced in an illegal way.

    Examples: asking for the decision of a processor that has not
    decided, or a protocol attempting to change an irrevocable
    decision.
    """


class EncodingError(ReproError):
    """A message could not be encoded or measured for transmission."""


class AdversaryError(ReproError):
    """An adversary strategy was used outside its supported model."""
