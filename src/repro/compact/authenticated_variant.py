"""The authenticated-Byzantine compact protocol: no overhead rounds.

The paper's introduction lists "authenticated Byzantine" among the
fault models its framework covers, and develops the transformation for
the harder non-cryptographic model.  This module is the repository's
extension filling in that cell of the matrix: with unforgeable
signatures (:mod:`repro.runtime.crypto`), the compact simulation runs
in blocks of exactly ``k`` rounds — the benign variant's zero round
overhead — while tolerating full Byzantine behaviour.

**Why avalanche agreement becomes unnecessary.**  Protocol 3's two
overhead rounds buy one thing: a *consistent interpretation* of the
compressed reference "processor q's end-of-block CORE" despite
equivocation.  Signatures solve the same problem structurally:

* an end-of-block CORE travels *signed by its owner*; a reference to
  it is the triple ``("ref", q, digest)`` — **content-addressed**, so
  two equivocated versions are two different references, never one
  ambiguous one;
* the signature prevents the one remaining forgery: attributing a
  fabricated CORE to a *correct* processor (which would corrupt the
  simulated execution, since correct processors' messages must be
  exact);
* a faulty owner may sign many versions — harmless: different
  receivers incorporate different digests, which the simulation
  semantics already permit (a faulty processor may send different
  messages to different receivers).

**Propagation** borrows the benign variant's patch rule, hardened:
every processor re-broadcasts, exactly once, each *certificate*
``(owner, block, core, signature)`` it newly **used** (resolved during
a successful validation or its own expansion).  The same induction as
the crash variant shows every reference inside a correct processor's
message is resolvable by all correct receivers when it arrives; the
"used" restriction keeps a certificate-flooding adversary from
amplifying its own garbage through correct processors.

Rounds: ``simul(r) = r`` — a ``(t + 1)``-round protocol stays
``t + 1`` rounds.  Communication: per block each correct processor
broadcasts ``O(n^k log n)`` of CORE plus at most ``O(n^2)`` used
certificates of ``O(n^k log |V|)`` bits — polynomial, like everything
else here.  The decision rule (EIG) still requires ``n >= 3t + 1``.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.arrays.encoding import MessageSizer
from repro.errors import ConfigurationError, ProtocolViolation
from repro.fullinfo.decision import make_eig_decision_rule
from repro.runtime.crypto import SignatureOracle
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom

# A binding key: (block, owner, digest).
BindingKey = Tuple[int, ProcessId, str]

# A wire certificate: ("cert", owner, block, core, signature).
# Payload main at phase-1 rounds: ("signed", core, signature);
# at other rounds: the bare CORE array.


def digest_of(core: Any) -> str:
    """Content address of a CORE array (repr is canonical for tuples)."""
    return hashlib.sha256(repr(core).encode()).hexdigest()[:16]


def _signed_payload(block: int, digest: str) -> Tuple:
    return ("auth-core", block, digest)


#: Protoflow taint: received cores and certificates pass signature +
#: shape + expandability validation before use (docs/statics.md).
TAINT_SANITIZERS = {
    "_learn_certificate": (
        "verifies the owner's signature over (block, digest), checks "
        "the CORE shape and that its references are already defined; "
        "only then does the certificate enter the expansion"
    ),
    "_core_shape_ok": (
        "structural legality of a received CORE: exact depth, exact "
        "width n at every level, alphabet leaves or refs exactly where "
        "the block structure requires them"
    ),
    "digest_of": (
        "a 16-hex-digit sha256 commitment: constant size, collision "
        "checked at learn(); relaying a digest relays no adversarial "
        "content"
    ),
}

#: Protoflow message-size bounds (COM rule family).
MESSAGE_BOUNDS = {
    "AuthCompactProcess": (
        "linear",
        "CORE depth is capped at the block length k (O(n^k) for "
        "constant k) and each used certificate is attached exactly "
        "once, drained through _attached — never the round history",
    ),
}


class AuthExpansion:
    """Content-addressed expansion functions with used-key tracking."""

    def __init__(self, config: SystemConfig, value_alphabet: Sequence[Value]):
        self.config = config
        self._alphabet = frozenset(value_alphabet)
        self._bindings: Dict[BindingKey, Any] = {}
        self._cache: Dict[Tuple[int, Any], Any] = {}
        self.touched: Set[BindingKey] = set()

    def learn(self, key: BindingKey, core: Any) -> bool:
        """Store a certificate's content; returns True when new."""
        if key in self._bindings:
            if self._bindings[key] != core:
                # Same digest, different content: a hash collision or
                # a library bug, never legitimate traffic.
                raise ProtocolViolation(f"digest collision on {key}")
            return False
        self._bindings[key] = core
        return True

    def has(self, key: BindingKey) -> bool:
        return key in self._bindings

    def binding(self, key: BindingKey) -> Any:
        return self._bindings.get(key, BOTTOM)

    def _is_ref(self, scalar: Any) -> bool:
        return (
            isinstance(scalar, tuple)
            and len(scalar) == 3
            and scalar[0] == "ref"
            and isinstance(scalar[1], int)
            and not isinstance(scalar[1], bool)
            and 1 <= scalar[1] <= self.config.n
            and isinstance(scalar[2], str)
        )

    def expand_scalar(self, block: int, scalar: Any) -> Any:
        if block == 1:
            try:
                return scalar if scalar in self._alphabet else BOTTOM
            except TypeError:
                return BOTTOM
        if not self._is_ref(scalar):
            return BOTTOM
        key = (block, scalar[1], scalar[2])
        bound = self._bindings.get(key)
        if bound is None:
            return BOTTOM
        self.touched.add(key)
        return self.expand(block - 1, bound)

    def expand(self, block: int, array: Any) -> Any:
        if is_bottom(array):
            return BOTTOM
        if not isinstance(array, tuple) or self._is_ref(array):
            return self.expand_scalar(block, array)
        try:
            cache_key = (block, array)
            if cache_key in self._cache:
                return self._cache[cache_key]
        except TypeError:
            cache_key = None
        expanded = []
        for component in array:
            result = self.expand(block, component)
            if is_bottom(result):
                return BOTTOM
            expanded.append(result)
        result_tuple = tuple(expanded)
        if cache_key is not None:
            self._cache[cache_key] = result_tuple
        return result_tuple

    def defined(self, block: int, array: Any) -> bool:
        return not is_bottom(self.expand(block, array))


class AuthCompactProcess(Process):
    """One processor of the authenticated compact protocol."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        k: int,
        value_alphabet: Sequence[Value],
        oracle: SignatureOracle,
        decision_rule: Optional[Callable[[Any, int, ProcessId], Value]] = None,
        horizon: Optional[int] = None,
    ):
        super().__init__(process_id, config)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        alphabet = frozenset(value_alphabet)
        if input_value not in alphabet:
            raise ConfigurationError(
                f"input {input_value!r} outside the value alphabet"
            )
        self.k = k
        self._alphabet = alphabet
        self.oracle = oracle
        self.expansion = AuthExpansion(config, value_alphabet)
        self._decision_rule = decision_rule
        self._horizon = horizon
        self.core: Any = input_value
        self.core_boundary: int = 1
        # Certificates by binding key, for (single-shot) re-broadcast.
        self._certificates: Dict[BindingKey, Tuple] = {}
        self._attached: Set[BindingKey] = set()
        self._last_round: Round = 0

    # -- block arithmetic: blocks of exactly k rounds -----------------------

    def _phase(self, round_number: Round) -> int:
        return (round_number - 1) % self.k + 1

    def _block(self, round_number: Round) -> int:
        return (round_number - 1) // self.k + 1

    # -- sending ----------------------------------------------------------------

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        phase = self._phase(round_number)
        if phase == 1 and round_number > 1:
            block = self._block(round_number)
            digest = digest_of(self.core)
            signature = self.oracle.sign(
                self.process_id, _signed_payload(block, digest)
            )
            main: Any = ("signed", self.core, signature)
            # Our own end-of-block CORE is a binding we rely on.
            key = (block, self.process_id, digest)
            self.expansion.learn(key, self.core)
            self.expansion.touched.add(key)
            self._certificates[key] = (
                "cert", self.process_id, block, self.core, signature,
            )
        else:
            main = self.core
        patches = self._fresh_used_certificates()
        return broadcast({"main": main, "patches": patches}, self.config)

    def _fresh_used_certificates(self) -> Tuple:
        fresh = []
        for key in sorted(self.expansion.touched - self._attached):
            certificate = self._certificates.get(key)
            if certificate is not None:
                fresh.append(certificate)
                self._attached.add(key)
        return tuple(fresh)

    # -- receiving -----------------------------------------------------------------

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        phase = self._phase(round_number)
        block = self._block(round_number)
        payloads = {
            sender: message if isinstance(message, dict) else {}
            for sender, message in incoming.items()
        }
        self._absorb_certificates(payloads)

        if phase == 1 and round_number > 1:
            self._rebase(block, payloads)
        else:
            self._exchange(phase, block, payloads)

        self._last_round = round_number
        self._maybe_decide(round_number)

    def _absorb_certificates(self, payloads: Dict[ProcessId, dict]) -> None:
        entries: List[Tuple] = []
        for sender in self.config.process_ids:
            patches = payloads[sender].get("patches", ())
            if isinstance(patches, tuple):
                entries.extend(
                    entry for entry in patches
                    if isinstance(entry, tuple) and len(entry) == 5
                )
        # Lower blocks first: certificates may depend on one another.
        def block_of(entry):
            return entry[2] if isinstance(entry[2], int) else 0

        for entry in sorted(entries, key=block_of):
            self._learn_certificate(entry)

    def _learn_certificate(self, entry: Tuple) -> bool:
        tag, owner, block, core, signature = entry
        if tag != "cert":
            return False
        if not (
            isinstance(owner, int)
            and not isinstance(owner, bool)
            and 1 <= owner <= self.config.n
            and isinstance(block, int)
            and block >= 2
        ):
            return False
        digest = digest_of(core)
        if not self.oracle.verify(
            signature, owner, _signed_payload(block, digest)
        ):
            return False
        if not self._core_shape_ok(core, self.k, block - 1):
            return False
        if not self.expansion.defined(block - 1, core):
            return False
        key = (block, owner, digest)
        if self.expansion.learn(key, core):
            self._certificates[key] = entry
            return True
        return False

    def _rebase(self, block: int, payloads: Dict[ProcessId, dict]) -> None:
        own_digest = digest_of(self.core)
        components = []
        for sender in self.config.process_ids:
            main = payloads[sender].get("main")
            reference = None
            if (
                isinstance(main, tuple)
                and len(main) == 3
                and main[0] == "signed"
            ):
                _, core, signature = main
                if self._learn_certificate(
                    ("cert", sender, block, core, signature)
                ) or self.expansion.has((block, sender, digest_of(core))):
                    reference = ("ref", sender, digest_of(core))
            if reference is None:
                # The Theorem 9 Case 3 substitution: our own state.
                reference = ("ref", self.process_id, own_digest)
            key = (block, reference[1], reference[2])
            self.expansion.touched.add(key)
            components.append(reference)
        self.core = tuple(components)
        self.core_boundary = block
        self._assert_expandable()

    def _exchange(
        self, phase: int, block: int, payloads: Dict[ProcessId, dict]
    ) -> None:
        expected_depth = phase - 1
        components = []
        for sender in self.config.process_ids:
            main = payloads[sender].get("main", BOTTOM)
            if self._core_shape_ok(
                main, expected_depth, block
            ) and self.expansion.defined(block, main):
                components.append(main)
            else:
                components.append(self.core)
        self.core = tuple(components)
        self.core_boundary = block
        self._assert_expandable()

    # -- validation --------------------------------------------------------------------

    def _core_shape_ok(self, array: Any, depth: int, block: int) -> bool:
        if is_bottom(array):
            return False
        if depth == 0:
            if block == 1:
                try:
                    return array in self._alphabet
                except TypeError:
                    return False
            return self.expansion._is_ref(array)
        if self.expansion._is_ref(array):
            return False  # a ref where a tuple level is expected
        if not isinstance(array, tuple) or len(array) != self.config.n:
            return False
        return all(
            self._core_shape_ok(component, depth - 1, block)
            for component in array
        )

    def _assert_expandable(self) -> None:
        if not self.expansion.defined(self.core_boundary, self.core):
            raise ProtocolViolation(
                f"processor {self.process_id}: authenticated CORE became "
                f"non-expandable"
            )

    # -- decisions ------------------------------------------------------------------------

    def full_state(self) -> Any:
        expanded = self.expansion.expand(self.core_boundary, self.core)
        if is_bottom(expanded):
            raise ProtocolViolation("FULL_STATE undefined")
        return expanded

    def _maybe_decide(self, round_number: Round) -> None:
        if self._decision_rule is None or self.has_decided():
            return
        if self._horizon is not None and round_number < self._horizon:
            return
        value = self._decision_rule(
            self.full_state(), round_number, self.process_id
        )
        if value is not BOTTOM:
            self.decide(value, round_number)

    def snapshot(self) -> Any:
        return {
            "core": self.core,
            "core_boundary": self.core_boundary,
            "simul": self._last_round,  # every round is progress
            "decision": self.decision,
        }


def auth_compact_ba_factory(
    config: SystemConfig,
    value_alphabet: Sequence[Value],
    oracle: SignatureOracle,
    k: int,
    default: Optional[Value] = None,
):
    """Authenticated-model Byzantine agreement in exactly t + 1 rounds."""
    if not config.requires_byzantine_quorum():
        raise ConfigurationError(
            f"the EIG decision rule needs n >= 3t+1; got n={config.n}, "
            f"t={config.t}"
        )
    if default is None:
        default = sorted(value_alphabet, key=repr)[0]
    rule = make_eig_decision_rule(
        config.t, default=default, alphabet=value_alphabet
    )

    def factory(
        process_id: ProcessId, system: SystemConfig, input_value: Value
    ) -> AuthCompactProcess:
        return AuthCompactProcess(
            process_id,
            system,
            input_value,
            k=k,
            value_alphabet=value_alphabet,
            oracle=oracle,
            decision_rule=rule,
            horizon=system.t + 1,
        )

    return factory


def auth_sizer(config: SystemConfig, value_alphabet_size: int):
    """Bit measure: arrays as usual, 128-bit digests, 64-bit signatures."""
    sizer = MessageSizer(value_alphabet_size, config.n)
    DIGEST_BITS = 64  # 16 hex chars
    SIGNATURE_BITS = 64

    def measure_core(array: Any) -> int:
        if is_bottom(array):
            return 0
        if isinstance(array, tuple) and len(array) == 3 and array[0] == "ref":
            return sizer.measure(array[1]) + DIGEST_BITS
        if isinstance(array, tuple):
            return 2 + sum(measure_core(component) for component in array)
        return sizer.measure(array)

    def measure(payload: Any) -> int:
        if not isinstance(payload, dict):
            return 0
        total = 0
        main = payload.get("main", BOTTOM)
        if (
            isinstance(main, tuple)
            and len(main) == 3
            and main[0] == "signed"
        ):
            total += measure_core(main[1]) + SIGNATURE_BITS
        else:
            total += measure_core(main)
        for entry in payload.get("patches", ()):
            if isinstance(entry, tuple) and len(entry) == 5:
                total += (
                    sizer.measure(entry[1])
                    + measure_core(entry[3])
                    + SIGNATURE_BITS
                )
        return total

    return measure
