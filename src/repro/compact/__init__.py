"""The compact full-information protocol (Section 5).

The communication-efficient canonical form: a protocol that simulates
the full-information protocol while exchanging only *compressed*
states (``CORE``), expanded on receipt by per-block expansion
functions built from avalanche agreement outcomes.

* :mod:`repro.compact.expansion` — the expansion functions
  ``phi_{b,r,p}`` of Section 5.3, with the OUT tables they are built
  from,
* :mod:`repro.compact.subprotocol` — the Section 5.2 subprotocol
  machinery: a per-block batch of ``n`` avalanche agreement instances
  with null-message coding on the wire,
* :mod:`repro.compact.payload` — the ``(x + 1)``-tuple round messages
  and their exact bit sizer,
* :mod:`repro.compact.protocol` — Protocol 3 itself,
* :mod:`repro.compact.byzantine_agreement` — Corollary 10: Byzantine
  agreement in ``(1 + eps)(t + 1)`` rounds with polynomial
  communication,
* :mod:`repro.compact.crash_variant` — the benign-fault extension with
  *no* round overhead (Section 1's claim, experiment E8).
"""

from repro.compact.expansion import ExpansionState
from repro.compact.subprotocol import AgreementBatch
from repro.compact.payload import CompactPayload, compact_sizer
from repro.compact.protocol import CompactProcess, compact_factory
from repro.compact.byzantine_agreement import (
    compact_ba_factory,
    compact_ba_rounds,
    run_compact_byzantine_agreement,
)
from repro.compact.crash_variant import (
    CrashCompactProcess,
    crash_compact_factory,
    flooding_decision_rule,
)
from repro.compact.lazy_decision import (
    attach_lazy_decision,
    full_state_leaf,
    lazy_compact_ba_factory,
    lazy_eig_decision,
)
from repro.compact.authenticated_variant import (
    AuthCompactProcess,
    auth_compact_ba_factory,
)

__all__ = [
    "ExpansionState",
    "AgreementBatch",
    "CompactPayload",
    "compact_sizer",
    "CompactProcess",
    "compact_factory",
    "compact_ba_factory",
    "compact_ba_rounds",
    "run_compact_byzantine_agreement",
    "CrashCompactProcess",
    "crash_compact_factory",
    "flooding_decision_rule",
    "attach_lazy_decision",
    "full_state_leaf",
    "lazy_compact_ba_factory",
    "lazy_eig_decision",
    "AuthCompactProcess",
    "auth_compact_ba_factory",
]
