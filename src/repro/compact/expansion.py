"""Expansion functions ``phi_{b,r,p}`` (Section 5.3).

At each round each correct processor computes expansion functions from
the results of the avalanche agreement subprotocols it has run.  For
block 1 the expansion is the identity on value arrays; for ``b > 1``
it is the substitutive partial function on index arrays defined on
scalars by::

    phi_b(x) = phi_{b-1}(OUT[b][x])

where ``OUT[b][x]`` is the avalanche-agreed end-of-block-``b - 1``
CORE of processor ``x``.  A scalar outside the function's domain
(a non-value for ``b = 1``, a non-index or an index with no decided
OUT for ``b > 1``) expands to bottom, and by the paper's convention
one bottom component makes the whole expansion bottom.

The state of all OUT tables lives in :class:`ExpansionState`; the
functions get *more defined* over time as avalanche decisions land
(never less — decisions are irrevocable), which is why defined
expansion results can be memoised safely while undefined ones must
not be.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional, Sequence, Tuple

import repro.obs.core as _obs
from repro.arrays import flat as _flat
from repro.arrays import persist as _persist
from repro.arrays.digest import (
    DIGEST_BYTES,
    content_digest,
    value_digest,
    values_fingerprint,
)
from repro.arrays.partial import substitutive_apply
from repro.arrays.store import ArrayStore, InternedArray
from repro.errors import ProtocolViolation
from repro.types import BOTTOM, ProcessId, SystemConfig, Value, is_bottom

#: Protoflow taint: the persistent-cache fast path replays *recorded
#: verdicts*, never raw bytes.  A phi_1 entry is the alphabet-
#: membership verdict the inline filter would compute (keyed by the
#: node's content digest under the alphabet fingerprint), and a deeper
#: entry resolves only through the content digest of a result that a
#: fully legality-filtered expansion produced in an earlier run —
#: anything else decodes to ``None`` and falls back to the inline
#: filter.
TAINT_SANITIZERS = {
    "_restore_expansion": (
        "persistent-cache gate: returns the node only under a "
        "recorded phi_1 alphabet verdict, a digest-resolved prior "
        "expansion result, or None (= recompute through the inline "
        "legality filter)"
    ),
}


class ExpansionState:
    """OUT tables plus memoised expansion, for one processor."""

    def __init__(
        self,
        config: SystemConfig,
        value_alphabet: Sequence[Value],
        store: Optional[ArrayStore] = None,
    ):
        self.config = config
        self._alphabet = frozenset(value_alphabet)
        self._store = store
        # (boundary, sender) -> agreed end-of-block CORE of sender.
        self._out: Dict[Tuple[int, ProcessId], Any] = {}
        # (boundary, array) -> defined expansion result.
        self._cache: Dict[Tuple[int, Any], Any] = {}
        # (boundary, canonical-node key token) -> defined expansion.
        # Canonical sub-arrays are shared across senders and rounds, so
        # this memo turns re-expansion of an already-seen CORE into one
        # dictionary hit per *new* node instead of a full tree walk.
        self._node_cache: Dict[Tuple[int, Any], Any] = {}
        # (boundary, index scalar) -> defined phi_b(scalar).  Same
        # defined-results-only rule: a defined scalar expansion chains
        # only through irrevocable OUT entries, so it never changes,
        # while an undefined one may become defined later.
        self._scalar_cache: Dict[Tuple[int, int], Any] = {}
        # Cross-run persistence keys.  phi_1 verdicts depend only on
        # the alphabet; phi_b for b > 1 is additionally a function of
        # the OUT tables it chains through, so its cache entries carry
        # a fingerprint over every decided (boundary' <= b) slot —
        # equal tables, reached in any order, share entries; unequal
        # tables can never collide.  None alphabet fingerprint means
        # unstable members: persistence stays out of the way.
        self._alpha_fp: Optional[str] = values_fingerprint(self._alphabet)
        self._out_digests: Dict[Tuple[int, ProcessId], Optional[bytes]] = {}
        self._out_fp_cache: Dict[int, Optional[str]] = {}

    # -- OUT table maintenance ---------------------------------------------

    def set_out(self, boundary: int, sender: ProcessId, value: Any) -> None:
        """Record an avalanche decision ``OUT[boundary][sender]``.

        Decisions are irrevocable; recording a *different* value for
        the same slot indicates a broken avalanche layer and raises.
        """
        key = (boundary, sender)
        if key in self._out and self._out[key] != value:
            raise ProtocolViolation(
                f"OUT[{boundary}][{sender}] changed from "
                f"{self._out[key]!r} to {value!r}"
            )
        self._out[key] = value
        self._out_digests[key] = value_digest(value)
        self._out_fp_cache.clear()

    def out(self, boundary: int, sender: ProcessId) -> Any:
        """The agreed value, or bottom if this slot has not decided."""
        return self._out.get((boundary, sender), BOTTOM)

    def has_out(self, boundary: int, sender: ProcessId) -> bool:
        """Whether the avalanche slot has decided at this processor."""
        return (boundary, sender) in self._out

    def out_table(self, boundary: int) -> Dict[ProcessId, Any]:
        """All decided slots of one boundary (a snapshot)."""
        return {
            sender: value
            for (slot_boundary, sender), value in self._out.items()
            if slot_boundary == boundary
        }

    # -- expansion ---------------------------------------------------------

    def expand_scalar(self, boundary: int, scalar: Any) -> Any:
        """``phi_b`` on a scalar; bottom when outside the domain."""
        if boundary == 1:
            try:
                return scalar if scalar in self._alphabet else BOTTOM
            except TypeError:
                return BOTTOM
        if (
            not isinstance(scalar, int)
            or isinstance(scalar, bool)
            or not 1 <= scalar <= self.config.n
        ):
            return BOTTOM
        cached = self._scalar_cache.get((boundary, scalar))
        if cached is not None:
            return cached
        agreed = self._out.get((boundary, scalar))
        if agreed is None:
            return BOTTOM
        result = self.expand(boundary - 1, agreed)
        if not is_bottom(result):
            self._scalar_cache[(boundary, scalar)] = result
        return result

    def expand(self, boundary: int, array: Any) -> Any:
        """``phi_b`` applied substitutively to an array.

        Returns the value array the compressed ``array`` stands for,
        or bottom if any leaf is (currently) outside the domain.
        """
        if is_bottom(array):
            return BOTTOM
        if (
            self._store is not None
            and type(array) is InternedArray
            and array.store is self._store
        ):
            return self._expand_interned(boundary, array)
        cache_key: Optional[Tuple[int, Any]]
        try:
            cache_key = (boundary, array)
            if cache_key in self._cache:
                return self._cache[cache_key]
        except TypeError:
            cache_key = None
        result = substitutive_apply(
            lambda scalar: self.expand_scalar(boundary, scalar), array
        )
        if cache_key is not None and not is_bottom(result):
            # Defined results are stable: OUT entries never change.
            # Undefined results may become defined later, so they are
            # deliberately not cached.
            self._cache[cache_key] = result
        return result

    def _out_fingerprint(self, boundary: int) -> Optional[str]:
        """Hex fingerprint of every decided OUT slot phi_b can reach.

        Order-insensitive over slots (sorted), covering boundaries
        ``2..boundary`` — exactly the entries a boundary-``boundary``
        expansion chains through.  ``None`` (poisoned) when any
        reachable slot holds an undigestable value.
        """
        cached = self._out_fp_cache.get(boundary)
        if cached is not None or boundary in self._out_fp_cache:
            return cached
        hasher = hashlib.blake2b(digest_size=DIGEST_BYTES)
        fingerprint: Optional[str]
        slots = sorted(
            slot for slot in self._out_digests if 2 <= slot[0] <= boundary
        )
        for slot_boundary, sender in slots:
            digest = self._out_digests[(slot_boundary, sender)]
            if digest is None:
                fingerprint = None
                break
            hasher.update(f"{slot_boundary}.{sender}.".encode("ascii"))
            hasher.update(digest)
        else:
            fingerprint = hasher.hexdigest()
        self._out_fp_cache[boundary] = fingerprint
        return fingerprint

    def _persist_key(
        self, boundary: int, node: InternedArray
    ) -> Optional[Tuple[str, str]]:
        """(fingerprint detail, key) for a persistable expansion."""
        if self._alpha_fp is None:
            return None
        digest = content_digest(node)
        if digest is None:
            return None
        if boundary == 1:
            detail = (
                f"compact.phi1;n={self.config.n};alpha={self._alpha_fp}"
            )
        else:
            out_fp = self._out_fingerprint(boundary)
            if out_fp is None:
                return None
            detail = (
                f"compact.expansion;n={self.config.n};"
                f"alpha={self._alpha_fp};b={boundary};out={out_fp}"
            )
        return detail, digest.hex()

    def _restore_expansion(
        self,
        cache: "_persist.PersistentStore",
        boundary: int,
        node: InternedArray,
        stored: Any,
    ) -> Optional[Any]:
        """Decode a persisted expansion entry; ``None`` = treat as miss.

        phi_1 entries are booleans (the node is its own expansion, or
        bottom); deeper entries are the content-digest hex of the
        result node, resolvable only if the cache has the live node —
        otherwise recomputing is cheaper than trusting a dangling ref.
        """
        if boundary == 1:
            if stored is True:
                return node
            if stored is False:
                return BOTTOM
            return None
        if isinstance(stored, str) and self._store is not None:
            return cache.node_for(self._store, stored)
        return None

    def _expand_interned(self, boundary: int, node: InternedArray) -> Any:
        """``phi_b`` over the canonical DAG, memoised per unique node.

        Same defined-results-only caching rule as :meth:`expand`: OUT
        entries are irrevocable, so a defined expansion never changes,
        while an undefined one may become defined as decisions land.
        The persistent cache follows the same rule, except phi_1
        *negative* verdicts are persisted too (alphabet membership
        never changes, so they are stable — mirroring the flat
        kernel's verdict column).
        """
        key = (boundary, node.key_token)
        cached = self._node_cache.get(key)
        if cached is not None:
            observer = _obs.ACTIVE
            if observer is not None:
                observer.count("compact.expansion.hit")
            return cached
        cache = _persist.active()
        persist_key: Optional[Tuple[str, str]] = None
        if cache is not None:
            persist_key = self._persist_key(boundary, node)
            if persist_key is not None:
                stored = cache.map_get(persist_key[0], persist_key[1])
                if stored is not _persist.MISSING:
                    restored = self._restore_expansion(
                        cache, boundary, node, stored
                    )
                    if restored is not None:
                        if not is_bottom(restored):
                            self._node_cache[key] = restored
                        return restored
        flat_kernel = _flat.flat_enabled()
        if boundary == 1:
            # phi_1 is the identity on value arrays; the node IS its
            # own expansion when every distinct leaf is a value.
            if flat_kernel:
                # Served from the store's per-alphabet verdict column:
                # unlike the node cache (defined results only), the
                # column may keep negative verdicts too, because
                # alphabet membership never changes.
                ok = _flat.tables_for(node.store).leaves_ok(
                    node,
                    ("expansion.alphabet", self._alphabet),
                    self._leaf_is_value,
                )
            else:
                ok = all(
                    leaf in self._alphabet for _, leaf in node.leaves_unique
                )
            result: Any = node if ok else BOTTOM
        else:
            if flat_kernel:
                # Substitutive prefilter: one bottom leaf bubbles all
                # the way up, so the root expansion is defined iff
                # every *distinct* leaf expands — O(distinct leaves)
                # to rule out the (frequent, uncacheable) undefined
                # case before paying for the recursive build.
                for _, leaf in node.leaves_unique:
                    if is_bottom(self.expand_scalar(boundary, leaf)):
                        return BOTTOM
            expanded = []
            for component in node:
                if type(component) is InternedArray:
                    piece = self._expand_interned(boundary, component)
                else:
                    piece = self.expand_scalar(boundary, component)
                if is_bottom(piece):
                    return BOTTOM
                expanded.append(piece)
            assert self._store is not None  # guarded by expand()
            result = self._store.intern(tuple(expanded))
        if not is_bottom(result):
            self._node_cache[key] = result
            observer = _obs.ACTIVE
            if observer is not None:
                observer.count("compact.expansion.miss")
            if cache is not None and persist_key is not None:
                self._record_expansion(cache, persist_key, boundary, result)
        elif boundary == 1 and cache is not None and persist_key is not None:
            # Stable negative: alphabet membership never changes.
            cache.map_put(persist_key[0], persist_key[1], False)
        return result

    def _record_expansion(
        self,
        cache: "_persist.PersistentStore",
        persist_key: Tuple[str, str],
        boundary: int,
        result: Any,
    ) -> None:
        if boundary == 1:
            cache.map_put(persist_key[0], persist_key[1], True)
            return
        if type(result) is not InternedArray or self._store is None:
            return
        digest_hex = cache.register_node(self._store, result)
        if digest_hex is not None:
            cache.map_put(persist_key[0], persist_key[1], digest_hex)

    def _leaf_is_value(self, leaf: Any) -> bool:
        """Whether one leaf is in ``V`` (the ``phi_1`` domain test)."""
        try:
            return leaf in self._alphabet
        except TypeError:  # unhashable leaf (plain-tuple path only)
            return False

    def defined(self, boundary: int, array: Any) -> bool:
        """Whether ``phi_b`` is defined on ``array`` right now."""
        return not is_bottom(self.expand(boundary, array))
