"""Expansion functions ``phi_{b,r,p}`` (Section 5.3).

At each round each correct processor computes expansion functions from
the results of the avalanche agreement subprotocols it has run.  For
block 1 the expansion is the identity on value arrays; for ``b > 1``
it is the substitutive partial function on index arrays defined on
scalars by::

    phi_b(x) = phi_{b-1}(OUT[b][x])

where ``OUT[b][x]`` is the avalanche-agreed end-of-block-``b - 1``
CORE of processor ``x``.  A scalar outside the function's domain
(a non-value for ``b = 1``, a non-index or an index with no decided
OUT for ``b > 1``) expands to bottom, and by the paper's convention
one bottom component makes the whole expansion bottom.

The state of all OUT tables lives in :class:`ExpansionState`; the
functions get *more defined* over time as avalanche decisions land
(never less — decisions are irrevocable), which is why defined
expansion results can be memoised safely while undefined ones must
not be.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import repro.obs.core as _obs
from repro.arrays import flat as _flat
from repro.arrays.partial import substitutive_apply
from repro.arrays.store import ArrayStore, InternedArray
from repro.errors import ProtocolViolation
from repro.types import BOTTOM, ProcessId, SystemConfig, Value, is_bottom


class ExpansionState:
    """OUT tables plus memoised expansion, for one processor."""

    def __init__(
        self,
        config: SystemConfig,
        value_alphabet: Sequence[Value],
        store: Optional[ArrayStore] = None,
    ):
        self.config = config
        self._alphabet = frozenset(value_alphabet)
        self._store = store
        # (boundary, sender) -> agreed end-of-block CORE of sender.
        self._out: Dict[Tuple[int, ProcessId], Any] = {}
        # (boundary, array) -> defined expansion result.
        self._cache: Dict[Tuple[int, Any], Any] = {}
        # (boundary, canonical-node key token) -> defined expansion.
        # Canonical sub-arrays are shared across senders and rounds, so
        # this memo turns re-expansion of an already-seen CORE into one
        # dictionary hit per *new* node instead of a full tree walk.
        self._node_cache: Dict[Tuple[int, Any], Any] = {}
        # (boundary, index scalar) -> defined phi_b(scalar).  Same
        # defined-results-only rule: a defined scalar expansion chains
        # only through irrevocable OUT entries, so it never changes,
        # while an undefined one may become defined later.
        self._scalar_cache: Dict[Tuple[int, int], Any] = {}

    # -- OUT table maintenance ---------------------------------------------

    def set_out(self, boundary: int, sender: ProcessId, value: Any) -> None:
        """Record an avalanche decision ``OUT[boundary][sender]``.

        Decisions are irrevocable; recording a *different* value for
        the same slot indicates a broken avalanche layer and raises.
        """
        key = (boundary, sender)
        if key in self._out and self._out[key] != value:
            raise ProtocolViolation(
                f"OUT[{boundary}][{sender}] changed from "
                f"{self._out[key]!r} to {value!r}"
            )
        self._out[key] = value

    def out(self, boundary: int, sender: ProcessId) -> Any:
        """The agreed value, or bottom if this slot has not decided."""
        return self._out.get((boundary, sender), BOTTOM)

    def has_out(self, boundary: int, sender: ProcessId) -> bool:
        """Whether the avalanche slot has decided at this processor."""
        return (boundary, sender) in self._out

    def out_table(self, boundary: int) -> Dict[ProcessId, Any]:
        """All decided slots of one boundary (a snapshot)."""
        return {
            sender: value
            for (slot_boundary, sender), value in self._out.items()
            if slot_boundary == boundary
        }

    # -- expansion ---------------------------------------------------------

    def expand_scalar(self, boundary: int, scalar: Any) -> Any:
        """``phi_b`` on a scalar; bottom when outside the domain."""
        if boundary == 1:
            try:
                return scalar if scalar in self._alphabet else BOTTOM
            except TypeError:
                return BOTTOM
        if (
            not isinstance(scalar, int)
            or isinstance(scalar, bool)
            or not 1 <= scalar <= self.config.n
        ):
            return BOTTOM
        cached = self._scalar_cache.get((boundary, scalar))
        if cached is not None:
            return cached
        agreed = self._out.get((boundary, scalar))
        if agreed is None:
            return BOTTOM
        result = self.expand(boundary - 1, agreed)
        if not is_bottom(result):
            self._scalar_cache[(boundary, scalar)] = result
        return result

    def expand(self, boundary: int, array: Any) -> Any:
        """``phi_b`` applied substitutively to an array.

        Returns the value array the compressed ``array`` stands for,
        or bottom if any leaf is (currently) outside the domain.
        """
        if is_bottom(array):
            return BOTTOM
        if (
            self._store is not None
            and type(array) is InternedArray
            and array.store is self._store
        ):
            return self._expand_interned(boundary, array)
        cache_key: Optional[Tuple[int, Any]]
        try:
            cache_key = (boundary, array)
            if cache_key in self._cache:
                return self._cache[cache_key]
        except TypeError:
            cache_key = None
        result = substitutive_apply(
            lambda scalar: self.expand_scalar(boundary, scalar), array
        )
        if cache_key is not None and not is_bottom(result):
            # Defined results are stable: OUT entries never change.
            # Undefined results may become defined later, so they are
            # deliberately not cached.
            self._cache[cache_key] = result
        return result

    def _expand_interned(self, boundary: int, node: InternedArray) -> Any:
        """``phi_b`` over the canonical DAG, memoised per unique node.

        Same defined-results-only caching rule as :meth:`expand`: OUT
        entries are irrevocable, so a defined expansion never changes,
        while an undefined one may become defined as decisions land.
        """
        key = (boundary, node.key_token)
        cached = self._node_cache.get(key)
        if cached is not None:
            observer = _obs.ACTIVE
            if observer is not None:
                observer.count("compact.expansion.hit")
            return cached
        flat_kernel = _flat.flat_enabled()
        if boundary == 1:
            # phi_1 is the identity on value arrays; the node IS its
            # own expansion when every distinct leaf is a value.
            if flat_kernel:
                # Served from the store's per-alphabet verdict column:
                # unlike the node cache (defined results only), the
                # column may keep negative verdicts too, because
                # alphabet membership never changes.
                ok = _flat.tables_for(node.store).leaves_ok(
                    node,
                    ("expansion.alphabet", self._alphabet),
                    self._leaf_is_value,
                )
            else:
                ok = all(
                    leaf in self._alphabet for _, leaf in node.leaves_unique
                )
            result: Any = node if ok else BOTTOM
        else:
            if flat_kernel:
                # Substitutive prefilter: one bottom leaf bubbles all
                # the way up, so the root expansion is defined iff
                # every *distinct* leaf expands — O(distinct leaves)
                # to rule out the (frequent, uncacheable) undefined
                # case before paying for the recursive build.
                for _, leaf in node.leaves_unique:
                    if is_bottom(self.expand_scalar(boundary, leaf)):
                        return BOTTOM
            expanded = []
            for component in node:
                if type(component) is InternedArray:
                    piece = self._expand_interned(boundary, component)
                else:
                    piece = self.expand_scalar(boundary, component)
                if is_bottom(piece):
                    return BOTTOM
                expanded.append(piece)
            assert self._store is not None  # guarded by expand()
            result = self._store.intern(tuple(expanded))
        if not is_bottom(result):
            self._node_cache[key] = result
            observer = _obs.ACTIVE
            if observer is not None:
                observer.count("compact.expansion.miss")
        return result

    def _leaf_is_value(self, leaf: Any) -> bool:
        """Whether one leaf is in ``V`` (the ``phi_1`` domain test)."""
        try:
            return leaf in self._alphabet
        except TypeError:  # unhashable leaf (plain-tuple path only)
            return False

    def defined(self, boundary: int, array: Any) -> bool:
        """Whether ``phi_b`` is defined on ``array`` right now."""
        return not is_bottom(self.expand(boundary, array))
