"""The benign-fault compact protocol: no round overhead (Section 1).

The paper claims that "in more benign fault models like
failure-by-omission and fail-stop there is a simple extension of our
transformation that causes no increase in the number of rounds", with
no construction given.  This module is our reconstruction, validated
by experiment E8.

**Why benign faults make the overhead rounds unnecessary.**  The two
overhead rounds of Protocol 3 exist to let avalanche agreement build a
*consistent* expansion function despite equivocation.  A crash- or
omission-faulty processor never lies: every copy of its end-of-block
CORE in the system is identical, so "agreement" on expansions is free
— each processor simply *remembers* the end-of-block COREs it
receives, and blocks shrink to exactly ``k`` progress rounds
(``simul(r) = r``: literally no round increase).

**The gap that remains, and the patch rule that closes it.**  A
processor that crashes mid-broadcast reaches only some receivers, so
receiver ``p`` may lack a binding (an end-of-block CORE) that receiver
``u`` holds and references.  The fix: every processor attaches to each
round's message a *patch* — the full values of all bindings it learned
in the previous round.  An induction then shows every reference in a
received message is expandable: a sender alive in round ``s`` either
learned the binding in round ``s - 1`` (its patch rides along in this
very message) or learned it earlier — in which case the sender
completed its own patch broadcast in a round it did not crash in, so
every correct processor already holds the binding.  Patches keep
messages polynomial (``O(n^(k+1) log |V|)`` in the worst round), and
the round count is exactly that of the simulated protocol.

A missing transmission is recorded as the :data:`CRASHED` marker —
the honest "no message" of the crash-model full-information protocol —
rather than substituted, so the reconstructed ``FULL_STATE`` is a
genuine crash-model full-information state and the classic flooding
decision rule (:func:`flooding_decision_rule`) applies: after ``t + 1``
rounds all correct processors hold the same leaf-value set and decide
its canonical minimum.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.arrays.encoding import MessageSizer
from repro.arrays.value_array import array_leaves, is_index_scalar
from repro.errors import ConfigurationError, ProtocolViolation
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom


class _Crashed:
    """Marker leaf: "this transmission never arrived" (fail-stop gap)."""

    _instance = None

    def __new__(cls) -> "_Crashed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "CRASHED"

    def __reduce__(self):
        return (_Crashed, ())


CRASHED = _Crashed()

BindingKey = Tuple[int, ProcessId]  # (boundary, sender)


@dataclasses.dataclass(frozen=True)
class CrashPayload:
    """One round's message: the CORE plus freshly learned bindings."""

    main: Any
    patches: Tuple[Tuple[BindingKey, Any], ...] = ()


class CrashExpansion:
    """Expansion functions for the benign variant: a binding store.

    ``phi_1`` is the identity on values (and on :data:`CRASHED`);
    ``phi_b(q) = phi_{b-1}(binding[(b, q)])`` as in the Byzantine
    construction, except the bindings come from remembered broadcasts
    and patches instead of avalanche agreement.
    """

    def __init__(self, config: SystemConfig, value_alphabet: Sequence[Value]):
        self.config = config
        self._alphabet = frozenset(value_alphabet)
        self._bindings: Dict[BindingKey, Any] = {}
        self._cache: Dict[Tuple[int, Any], Any] = {}

    def learn(self, key: BindingKey, value: Any) -> bool:
        """Store a binding; returns True when it is new.

        In a crash model two copies of one binding can never differ; a
        difference means the execution is not benign and raises.
        """
        if key in self._bindings:
            if self._bindings[key] != value:
                raise ProtocolViolation(
                    f"binding {key} has two distinct values — the fault "
                    f"model is not benign"
                )
            return False
        self._bindings[key] = value
        return True

    def has(self, key: BindingKey) -> bool:
        return key in self._bindings

    def binding(self, key: BindingKey) -> Any:
        return self._bindings.get(key, BOTTOM)

    def expand_scalar(self, boundary: int, scalar: Any) -> Any:
        if scalar is CRASHED:
            return CRASHED
        if boundary == 1:
            try:
                return scalar if scalar in self._alphabet else BOTTOM
            except TypeError:
                return BOTTOM
        if not is_index_scalar(scalar, self.config.n):
            return BOTTOM
        bound = self._bindings.get((boundary, scalar))
        if bound is None:
            return BOTTOM
        return self.expand(boundary - 1, bound)

    def expand(self, boundary: int, array: Any) -> Any:
        if is_bottom(array):
            return BOTTOM
        if not isinstance(array, tuple):
            return self.expand_scalar(boundary, array)
        try:
            cache_key = (boundary, array)
            if cache_key in self._cache:
                return self._cache[cache_key]
        except TypeError:
            cache_key = None
        expanded = []
        for component in array:
            result = self.expand(boundary, component)
            if is_bottom(result):
                return BOTTOM
            expanded.append(result)
        result_tuple = tuple(expanded)
        if cache_key is not None:
            self._cache[cache_key] = result_tuple
        return result_tuple

    def defined(self, boundary: int, array: Any) -> bool:
        return not is_bottom(self.expand(boundary, array))


#: Protoflow message-size bound (COM rule family).
MESSAGE_BOUNDS = {
    "CrashCompactProcess": (
        "linear",
        "the payload is a depth<=k CORE plus fresh patches drained "
        "every round; nothing accumulates across blocks",
    ),
}


class CrashCompactProcess(Process):
    """One processor of the benign-fault compact protocol."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        k: int,
        value_alphabet: Sequence[Value],
        decision_rule: Optional[Callable[[Any, int, ProcessId], Value]] = None,
        horizon: Optional[int] = None,
    ):
        super().__init__(process_id, config)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        alphabet = frozenset(value_alphabet)
        if input_value not in alphabet:
            raise ConfigurationError(
                f"input {input_value!r} outside the value alphabet"
            )
        self.k = k
        self._alphabet = alphabet
        self.expansion = CrashExpansion(config, value_alphabet)
        self._decision_rule = decision_rule
        self._horizon = horizon
        self.core: Any = input_value
        self.core_boundary: int = 1
        self._fresh: List[Tuple[BindingKey, Any]] = []
        self._last_round: Round = 0

    # -- block arithmetic: blocks of exactly k rounds ----------------------

    def _phase(self, round_number: Round) -> int:
        return (round_number - 1) % self.k + 1

    def _block(self, round_number: Round) -> int:
        return (round_number - 1) // self.k + 1

    # -- sending -------------------------------------------------------------

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        patches = tuple(self._fresh)
        self._fresh = []
        return broadcast(
            CrashPayload(main=self.core, patches=patches), self.config
        )

    # -- receiving --------------------------------------------------------------

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        phase = self._phase(round_number)
        block = self._block(round_number)
        payloads = {
            sender: message
            if isinstance(message, CrashPayload)
            else CrashPayload(main=BOTTOM)
            for sender, message in incoming.items()
        }

        self._absorb_patches(payloads)

        if round_number == 1:
            self._build_initial_core(payloads)
        elif phase == 1:
            self._store_bindings_and_rebase(block, payloads)
        else:
            self._exchange(phase, block, payloads)

        self._last_round = round_number
        self._maybe_decide(round_number)

    def _absorb_patches(self, payloads: Dict[ProcessId, CrashPayload]) -> None:
        # Patches can depend on one another within a round (a binding
        # for boundary b references boundary b-1 bindings a peer may
        # only have learned last round too); absorbing in ascending
        # boundary order resolves every such chain in one pass.
        entries: List[Tuple[BindingKey, Any]] = []
        for sender in self.config.process_ids:
            patches = payloads[sender].patches
            if not isinstance(patches, tuple):
                continue
            for entry in patches:
                if not (isinstance(entry, tuple) and len(entry) == 2):
                    continue
                key, value = entry
                if (
                    isinstance(key, tuple)
                    and len(key) == 2
                    and isinstance(key[0], int)
                    and not isinstance(key[0], bool)
                    and is_index_scalar(key[1], self.config.n)
                ):
                    entries.append(((key[0], key[1]), value))
        entries.sort(key=lambda item: item[0][0])
        for key, value in entries:
            if self._valid_binding(key[0], value) and self.expansion.learn(
                key, value
            ):
                self._fresh.append((key, value))

    def _build_initial_core(self, payloads: Dict[ProcessId, CrashPayload]) -> None:
        components = []
        for sender in self.config.process_ids:
            message = payloads[sender].main
            if self._valid_core(message, expected_depth=0, block=1):
                components.append(message)
            else:
                components.append(CRASHED)
        self.core = tuple(components)
        self.core_boundary = 1

    def _store_bindings_and_rebase(
        self, block: int, payloads: Dict[ProcessId, CrashPayload]
    ) -> None:
        # The phase-1 message from each live sender is its end-of-
        # previous-block CORE: simultaneously this round's simulated
        # exchange and the binding table for boundary ``block``.
        components = []
        for sender in self.config.process_ids:
            message = payloads[sender].main
            if self._valid_binding(block, message):
                if self.expansion.learn((block, sender), message):
                    self._fresh.append(((block, sender), message))
                components.append(sender)
            else:
                components.append(CRASHED)
        self.core = tuple(components)
        self.core_boundary = block

    def _exchange(
        self, phase: int, block: int, payloads: Dict[ProcessId, CrashPayload]
    ) -> None:
        expected_depth = phase - 1
        components = []
        for sender in self.config.process_ids:
            message = payloads[sender].main
            if self._valid_core(message, expected_depth, block):
                components.append(message)
            else:
                components.append(CRASHED)
        self.core = tuple(components)
        self.core_boundary = block

    # -- validation ---------------------------------------------------------------

    def _leaf_ok(self, leaf: Any, block: int) -> bool:
        if block == 1:
            try:
                return leaf in self._alphabet
            except TypeError:
                return False
        return is_index_scalar(leaf, self.config.n)

    def _shape_ok(self, message: Any, expected_depth: int, block: int) -> bool:
        """Crash-model shape check: CRASHED is a subtree of any depth.

        A missing transmission leaves a hole where a whole sub-array
        would be, so crash-model arrays are not uniform-depth; the
        marker is accepted in place of any component.
        """
        if message is CRASHED:
            return True
        if expected_depth == 0:
            return self._leaf_ok(message, block)
        if not isinstance(message, tuple) or len(message) != self.config.n:
            return False
        return all(
            self._shape_ok(component, expected_depth - 1, block)
            for component in message
        )

    def _valid_core(self, message: Any, expected_depth: int, block: int) -> bool:
        if is_bottom(message):
            return False
        if not self._shape_ok(message, expected_depth, block):
            return False
        return self.expansion.defined(block, message)

    def _valid_binding(self, boundary: int, message: Any) -> bool:
        """A binding is an end-of-block CORE: depth ``k`` for the
        boundary's previous block."""
        if is_bottom(message) or boundary < 2:
            return False
        return self._shape_ok(
            message, self.k, boundary - 1
        ) and self.expansion.defined(boundary - 1, message)

    # -- simulated state and decisions -----------------------------------------

    def full_state(self) -> Any:
        expanded = self.expansion.expand(self.core_boundary, self.core)
        if is_bottom(expanded):
            raise ProtocolViolation(
                f"processor {self.process_id}: FULL_STATE undefined in the "
                f"benign variant — the patch invariant was violated"
            )
        return expanded

    def _maybe_decide(self, round_number: Round) -> None:
        if self._decision_rule is None or self.has_decided():
            return
        if self._horizon is not None and round_number < self._horizon:
            return
        # Every round is a progress round: simul(r) = r.
        value = self._decision_rule(self.full_state(), round_number, self.process_id)
        if value is not BOTTOM:
            self.decide(value, round_number)

    def snapshot(self) -> Any:
        return {
            "core": self.core,
            "core_boundary": self.core_boundary,
            "simul": self._last_round,
            "decision": self.decision,
        }


def flooding_decision_rule(t: int) -> Callable[[Any, int, ProcessId], Value]:
    """Crash-model consensus: decide the canonical minimum value seen.

    After ``t + 1`` rounds of crash-model full information, every
    correct processor's leaf-value set is identical (the classic
    flooding argument: some round among the ``t + 1`` is crash-free
    and equalises the sets).  All processors then decide the same
    element; we pick the minimum under ``repr`` ordering, which is
    total for any hashable alphabet.
    """

    def rule(state: Any, simulated_round: int, process_id: ProcessId) -> Value:
        if simulated_round < t + 1:
            return BOTTOM
        values = {
            leaf for leaf in array_leaves(state) if leaf is not CRASHED
        }
        if not values:
            raise ProtocolViolation(
                "no values survived flooding — more crashes than processors?"
            )
        return sorted(values, key=repr)[0]

    return rule


def crash_compact_factory(
    k: int,
    value_alphabet: Sequence[Value],
    t: int,
):
    """A run_protocol factory for benign-model compact consensus."""
    rule = flooding_decision_rule(t)

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> CrashCompactProcess:
        return CrashCompactProcess(
            process_id,
            config,
            input_value,
            k=k,
            value_alphabet=value_alphabet,
            decision_rule=rule,
            horizon=t + 1,
        )

    return factory


def crash_sizer(
    config: SystemConfig, value_alphabet_size: int
) -> Callable[[Any], int]:
    """Exact bit measure for benign-variant payloads."""
    sizer = MessageSizer(value_alphabet_size, config.n)

    def measure(payload: Any) -> int:
        if not isinstance(payload, CrashPayload):
            return 0 if is_bottom(payload) else sizer.measure(payload)
        total = 0 if is_bottom(payload.main) else sizer.measure(payload.main)
        for key, value in payload.patches:
            total += sizer.measure(key) + sizer.measure(value)
        return total

    return measure
