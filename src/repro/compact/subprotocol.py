"""Subprotocol machinery (Section 5.2).

At the end of each block the compact protocol starts ``n`` avalanche
agreement instances — one per sender ``q``, with each processor's
input being the (validated) end-of-block CORE it received from ``q``,
or bottom if that message was unusable.  The instances run in parallel
with the main protocol: if ``x`` subprotocols are active, round
messages are ``(x + 1)``-tuples, one component per subprotocol plus
one for the main protocol.  Decisions become available at the start of
the local-state-change portion of the round in which they occur.

:class:`AgreementBatch` bundles the ``n`` instances of one block
boundary, applies the Section 4 null-message coding to their votes on
the sending side, and decodes peers' votes on the receiving side.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.avalanche.coding import NULL_MESSAGE, NullEncoder
from repro.avalanche.protocol import AvalancheInstance, Thresholds
from repro.types import BOTTOM, ProcessId, SystemConfig, Value


class AgreementBatch:
    """``n`` avalanche instances for one block boundary, with coding."""

    def __init__(
        self,
        config: SystemConfig,
        boundary: int,
        inputs: Dict[ProcessId, Any],
        thresholds: Thresholds,
    ):
        """
        Parameters
        ----------
        boundary:
            The block number ``b + 1`` whose expansion function these
            agreements will feed (``OUT[., b + 1]`` in the paper).
        inputs:
            Per subject processor ``q``, this processor's input to the
            instance agreeing on ``q``'s end-of-block CORE — the
            validated message received from ``q`` in the rebroadcast
            round, or bottom.
        """
        self.config = config
        self.boundary = boundary
        self.instances: Dict[ProcessId, AvalancheInstance] = {
            subject: AvalancheInstance(
                config,
                input_value=inputs.get(subject, BOTTOM),
                thresholds=thresholds,
            )
            for subject in config.process_ids
        }
        self._encoders: Dict[ProcessId, NullEncoder] = {
            subject: NullEncoder() for subject in config.process_ids
        }
        # Receiver-side null-decoding state, one row per sender in
        # ``process_ids`` order: ``row[subject_index]`` is the last
        # real (non-null) vote that sender transmitted for the subject.
        # BOTTOM doubles as "never sent", matching NullDecoder — a null
        # from a silent sender decodes to bottom either way.
        self._last_votes: List[List[Any]] = [
            [BOTTOM] * config.n for _ in config.process_ids
        ]
        self._reported: set = set()
        self.rounds_stepped = 0

    # -- sending ------------------------------------------------------------

    def outgoing_votes(self) -> Tuple[Any, ...]:
        """This round's null-encoded votes, one slot per subject."""
        return tuple(
            self._encoders[subject].encode(self.instances[subject].message())
            for subject in self.config.process_ids
        )

    # -- receiving -----------------------------------------------------------

    def step(
        self, votes_by_sender: Dict[ProcessId, Any]
    ) -> List[Tuple[ProcessId, Value]]:
        """Feed one round of received vote components to the instances.

        ``votes_by_sender[s]`` is the raw component from sender ``s``:
        expected to be an ``n``-tuple of (possibly null-coded) votes,
        but arbitrary garbage from a faulty sender is tolerated — a
        malformed component contributes bottom votes for every
        subject.  Returns the (subject, value) pairs newly decided in
        this step.
        """
        n = self.config.n
        self.rounds_stepped += 1
        decided: List[Tuple[ProcessId, Value]] = []
        process_ids = self.config.process_ids
        # Null-decoding inlined (one pass per sender component): the
        # per-(subject, sender) decode calls of the NullDecoder
        # formulation dominated compact-sweep profiles.  A malformed
        # component (not an n-tuple) contributes bottom for every
        # subject; `live` tracks subjects that received anything
        # other than bottom this round.
        votes_by_subject: List[List[Any]] = [[BOTTOM] * n for _ in range(n)]
        live = [False] * n
        for s_index, sender in enumerate(process_ids):
            component = votes_by_sender.get(sender, BOTTOM)
            if not (isinstance(component, tuple) and len(component) == n):
                continue
            last_row = self._last_votes[s_index]
            for index in range(n):
                vote = component[index]
                if vote is NULL_MESSAGE:
                    vote = last_row[index]
                else:
                    last_row[index] = vote
                if vote is not BOTTOM:
                    votes_by_subject[index][s_index] = vote
                    live[index] = True
        for index, subject in enumerate(process_ids):
            instance = self.instances[subject]
            if live[index]:
                instance.step(votes_by_subject[index])
            else:
                # All-bottom round, inlined: an empty tally adopts and
                # decides nothing, and in round 1 resets VAL to bottom
                # (count 0 is below every quorum).
                instance.rounds_completed += 1
                if instance.rounds_completed == 1:
                    instance.val = BOTTOM
            if instance.has_decided() and subject not in self._reported:
                self._reported.add(subject)
                decided.append((subject, instance.decision))
        return decided

    def decided_subjects(self) -> Tuple[ProcessId, ...]:
        """Subjects whose instance has decided at this processor."""
        return tuple(sorted(self._reported))
