"""Protocol 3: the compact full-information protocol (Section 5.3).

The paper's listing of Protocol 3 is not present in the source text we
work from (only steps 5, 6 and 11 are referenced by the lemmas); the
implementation below is reconstructed from Lemmas 6-8 and the proof of
Theorem 9, whose obligations are enforced here as runtime invariants
and covered by tests.  The reconstruction, round by round (blocks of
``k + overhead`` rounds, phases numbered from 1):

* **round 1** — broadcast the input value; build ``CORE`` as the
  n-vector of received values, substituting the processor's *own*
  previous CORE for any message that is malformed or not expandable
  (the substitution Theorem 9's Case 3 legitimises: the expansion of
  the substitute is a value array the faulty sender could have sent);
* **phases 2..k** (progress) — broadcast ``CORE``; rebuild it from the
  received messages with the same validate-or-substitute rule, where
  "valid" means correctly shaped for the phase *and* expandable by the
  current expansion function ``phi_b`` (the paper's step 5/6);
* **phase 1 of block b > 1** (progress) — no main broadcast: rebase
  ``CORE`` to the index array ``(c_1, ..., c_n)`` with ``c_q = q``
  when the avalanche agreement on ``q``'s end-of-previous-block CORE
  has decided and expanded (Theorem 9's Case 1), else ``c_q`` = the
  processor's own index (Case 3 again);
* **phase k + 1** (overhead) — re-broadcast the end-of-block ``CORE``;
  validate each received copy by expandability (the paper's step 11)
  and stage it as the avalanche input for that sender, bottom if
  unusable;
* **phase k + 2** (overhead; with the fast variant this round is
  folded into the next block's phase 1) — the block's batch of ``n``
  avalanche agreements takes its first step, voting on the staged
  inputs; by the consensus condition every correct sender's CORE is
  agreed in time for the next rebase (Lemma 8).

Every avalanche decision lands in the processor's
:class:`repro.compact.expansion.ExpansionState` at the start of the
local-state-change portion of its round (Section 5.2's availability
rule), so rebasing and validation always see the freshest ``OUT``.

``FULL_STATE = phi_b(CORE)`` reconstructs the simulated
full-information state (Section 5.5); decision rules are evaluated on
it at progress rounds once the simulated horizon is reached.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.avalanche.fast import fast_thresholds
from repro.avalanche.protocol import Thresholds, standard_thresholds
from repro.arrays.store import ArrayStore, shared_store
from repro.arrays.value_array import is_index_scalar, validate_array
from repro.compact.expansion import ExpansionState
from repro.compact.payload import CompactPayload
from repro.compact.subprotocol import AgreementBatch
from repro.core.rounds import BlockSchedule
from repro.errors import ConfigurationError, ProtocolViolation
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom

# (full_state, simulated_round, process_id) -> value or BOTTOM.
DecisionRule = Callable[[Any, int, ProcessId], Value]

# Avalanche batches are never retired: Lemma 7 (each correct
# processor's expansion function extends every correct processor's
# previous-round one) leans on the avalanche condition's one-round
# propagation window staying open, so instances keep stepping until
# the protocol ends.  The Section 4 null-message coding keeps the cost
# of an already-settled instance at zero bits.


#: Protoflow message-size bound (COM rule family): the whole point of
#: the construction (Theorem 5) — CORE depth is capped by the block
#: length, so per-round payloads stay polynomial while the *simulated*
#: state is the full-information history.
MESSAGE_BOUNDS = {
    "CompactProcess": (
        "linear",
        "CORE depth is capped at k + overhead within a block and "
        "rebased to references at block boundaries (O(n^k) for "
        "constant k); avalanche votes are scalars",
    ),
}


class CompactProcess(Process):
    """One processor of the compact full-information protocol."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        k: int,
        value_alphabet: Sequence[Value],
        decision_rule: Optional[DecisionRule] = None,
        horizon: Optional[int] = None,
        overhead: int = 2,
        thresholds: Optional[Thresholds] = None,
        expose_full_state: bool = False,
        intern: bool = True,
    ):
        """
        Parameters
        ----------
        k:
            Progress rounds per block — the time/communication
            tradeoff parameter (message size grows as ``n ** k``).
        value_alphabet:
            The simulated protocol's input set ``V``.
        decision_rule:
            Evaluated on ``FULL_STATE`` at progress rounds with
            simulated round >= ``horizon``; first non-bottom result is
            decided.
        overhead:
            2 for the standard construction (needs ``n >= 3t + 1``);
            1 for the Section 5.6 fast variant (needs ``n >= 4t + 1``).
        thresholds:
            Avalanche quorums; defaults to the standard or fast
            thresholds matching ``overhead``.
        expose_full_state:
            Include the (exponential) expanded state in snapshots, for
            the simulation checker.  Test scale only.
        intern:
            Hash-cons COREs through the shared store (the default);
            honest messages then validate and expand through O(1)
            canonical-node fast paths.  ``False`` keeps plain tuples.
        """
        super().__init__(process_id, config)
        alphabet = frozenset(value_alphabet)
        if input_value not in alphabet:
            raise ConfigurationError(
                f"input {input_value!r} outside V={sorted(map(repr, alphabet))}"
            )
        if thresholds is None:
            thresholds = (
                standard_thresholds(config)
                if overhead == 2
                else fast_thresholds(config)
            )
        self.schedule = BlockSchedule(k, overhead)
        self.k = k
        self._store: Optional[ArrayStore] = (
            shared_store(config.n) if intern else None
        )
        self.expansion = ExpansionState(config, value_alphabet, store=self._store)
        self._alphabet = alphabet
        self._thresholds = thresholds
        self._decision_rule = decision_rule
        self._horizon = horizon
        self._expose_full_state = expose_full_state

        self.core: Any = input_value  # depth-0 value array
        self.core_boundary: int = 1  # the phi_b that expands self.core
        self._batches: Dict[int, AgreementBatch] = {}
        self._candidates: Dict[ProcessId, Any] = {}
        self._last_round: Round = 0

    # -- sending ----------------------------------------------------------

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        phase = self.schedule.phase(round_number)
        main: Any = BOTTOM
        if round_number == 1 or 2 <= phase <= self.k + 1:
            # Progress exchanges and the phase-(k+1) rebroadcast carry
            # the CORE; rebase rounds (phase 1, block > 1) and the
            # avalanche-only phase k+2 carry no main component.
            main = self.core
        votes = tuple(
            (boundary, self._batches[boundary].outgoing_votes())
            for boundary in sorted(self._batches)
        )
        return broadcast(CompactPayload(main=main, votes=votes), self.config)

    # -- receiving ---------------------------------------------------------

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        phase = self.schedule.phase(round_number)
        block = self.schedule.block(round_number)
        payloads = {
            sender: message
            if isinstance(message, CompactPayload)
            else CompactPayload(main=BOTTOM)
            for sender, message in incoming.items()
        }

        # Subprotocol state changes run before the main protocol's
        # (Section 5.2), so rebasing and validation see fresh OUTs.
        self._step_batches(round_number, payloads)

        if phase == 1 and round_number > 1:
            self._rebase_core(block)
        elif round_number == 1 or 2 <= phase <= self.k:
            self._exchange_core(phase, block, payloads)
        elif phase == self.k + 1:
            self._collect_candidates(block, payloads)
            self._start_batch(block + 1, round_number)
        # Phase k + 2 (standard overhead) has avalanche traffic only.

        self._last_round = round_number
        self._maybe_decide(round_number)

    # -- avalanche plumbing ---------------------------------------------------

    def _step_batches(
        self, round_number: Round, payloads: Dict[ProcessId, CompactPayload]
    ) -> None:
        for boundary in sorted(self._batches):
            batch = self._batches[boundary]
            votes_by_sender = {
                sender: payload.votes_for(boundary)
                for sender, payload in payloads.items()
            }
            for subject, value in batch.step(votes_by_sender):
                self.expansion.set_out(boundary, subject, value)

    def _start_batch(self, boundary: int, round_number: Round) -> None:
        self._batches[boundary] = AgreementBatch(
            self.config,
            boundary=boundary,
            inputs=dict(self._candidates),
            thresholds=self._thresholds,
        )
        self._candidates = {}

    # -- main-component state changes ---------------------------------------

    def _exchange_core(
        self, phase: int, block: int, payloads: Dict[ProcessId, CompactPayload]
    ) -> None:
        expected_depth = phase - 1
        components = []
        for sender in self.config.process_ids:
            message = payloads.get(
                sender, CompactPayload(main=BOTTOM)
            ).main
            if self._valid_core_message(message, expected_depth, block):
                components.append(message)
            else:
                # Substitute the receiver's own previous CORE — the
                # right shape and expandable by construction.
                components.append(self.core)
        self._set_core(tuple(components), block)

    def _rebase_core(self, block: int) -> None:
        components = []
        for sender in self.config.process_ids:
            if self.expansion.has_out(block, sender) and not is_bottom(
                self.expansion.expand_scalar(block, sender)
            ):
                components.append(sender)
            else:
                components.append(self.process_id)
        self._set_core(tuple(components), block)

    def _set_core(self, core: Any, block: int) -> None:
        self.core = self._store.intern(core) if self._store is not None else core
        self.core_boundary = block
        self._assert_core_expandable()

    def _collect_candidates(
        self, block: int, payloads: Dict[ProcessId, CompactPayload]
    ) -> None:
        self._candidates = {}
        for sender in self.config.process_ids:
            message = payloads.get(sender, CompactPayload(main=BOTTOM)).main
            if self._valid_core_message(message, self.k, block):
                self._candidates[sender] = message
            else:
                self._candidates[sender] = BOTTOM

    def _valid_core_message(
        self, message: Any, expected_depth: int, block: int
    ) -> bool:
        if is_bottom(message):
            return False
        if block == 1:
            leaf_ok = lambda leaf: self._leaf_in_alphabet(leaf)  # noqa: E731
        else:
            leaf_ok = lambda leaf: is_index_scalar(leaf, self.config.n)  # noqa: E731
        if not validate_array(
            message, self.config.n, depth=expected_depth, leaf_ok=leaf_ok
        ):
            return False
        return self.expansion.defined(block, message)

    def _leaf_in_alphabet(self, leaf: Any) -> bool:
        try:
            return leaf in self._alphabet
        except TypeError:
            return False

    def _assert_core_expandable(self) -> None:
        # The paper's step-5 invariant: phi_b(CORE) is always defined
        # at its owner.  A failure here is a library bug, never an
        # adversary achievement.
        if not self.expansion.defined(self.core_boundary, self.core):
            raise ProtocolViolation(
                f"processor {self.process_id}: CORE became non-expandable "
                f"at boundary {self.core_boundary}"
            )

    # -- simulated state and decisions ---------------------------------------

    def full_state(self) -> Any:
        """``FULL_STATE = phi_b(CORE)`` — the simulated state.

        Exponential in the simulated round; call at decision time or
        from checkers only.
        """
        expanded = self.expansion.expand(self.core_boundary, self.core)
        if is_bottom(expanded):
            raise ProtocolViolation(
                f"processor {self.process_id}: FULL_STATE undefined"
            )
        return expanded

    def _maybe_decide(self, round_number: Round) -> None:
        if self._decision_rule is None or self.has_decided():
            return
        if not self.schedule.is_progress_round(round_number):
            return
        simulated = self.schedule.simul(round_number)
        if self._horizon is not None and simulated < self._horizon:
            return
        value = self._decision_rule(self.full_state(), simulated, self.process_id)
        if value is not BOTTOM:
            self.decide(value, round_number)

    def snapshot(self) -> Any:
        snapshot = {
            "core": self.core,
            "core_boundary": self.core_boundary,
            "simul": (
                self.schedule.simul(self._last_round) if self._last_round else 0
            ),
            "decision": self.decision,
        }
        if self._expose_full_state and self._last_round:
            if self.schedule.is_progress_round(self._last_round):
                snapshot["full_state"] = self.full_state()
            # The OUT tables define this round's expansion functions;
            # recording them lets checkers test Lemma 7's extension
            # property directly across processors and rounds.
            snapshot["out"] = {
                boundary: self.expansion.out_table(boundary)
                for boundary in range(2, self.core_boundary + 2)
                if self.expansion.out_table(boundary)
            }
        return snapshot


def compact_factory(
    k: int,
    value_alphabet: Sequence[Value],
    decision_rule: Optional[DecisionRule] = None,
    horizon: Optional[int] = None,
    overhead: int = 2,
    thresholds: Optional[Thresholds] = None,
    expose_full_state: bool = False,
    intern: bool = True,
):
    """A run_protocol factory for Protocol 3."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> CompactProcess:
        return CompactProcess(
            process_id,
            config,
            input_value,
            k=k,
            value_alphabet=value_alphabet,
            decision_rule=decision_rule,
            horizon=horizon,
            overhead=overhead,
            thresholds=thresholds,
            expose_full_state=expose_full_state,
            intern=intern,
        )

    return factory
