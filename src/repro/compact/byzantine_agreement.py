"""Corollary 10: communication-efficient Byzantine agreement.

Running the compact full-information protocol for ``t + 1`` simulated
rounds and applying the decision rule of an exponential-communication
``(t + 1)``-round protocol (the EIG resolution of Lamport et al.)
yields Byzantine agreement in ``(1 + eps)(t + 1)`` actual rounds with
``O(t * n^(k+3) * log |V|)`` message bits, where ``k = ceil(2/eps)``.

This module packages that composition: pick ``k`` directly or via
``eps``, run, decide.  Resilience: ``n >= 3t + 1``, the corollary's
Byzantine bound.  With ``overhead=1`` (and ``n >= 4t + 1``) the
Section 5.6 fast variant applies and ``k = ceil(1/eps)`` suffices.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.adversary.base import Adversary
from repro.compact.payload import compact_sizer, payload_is_null
from repro.compact.protocol import compact_factory
from repro.core.rounds import BlockSchedule, k_for_epsilon
from repro.errors import ConfigurationError
from repro.fullinfo.decision import make_eig_decision_rule
from repro.runtime.engine import ExecutionResult, run_protocol
from repro.types import SystemConfig, Value


def resolve_k(
    config: SystemConfig,
    k: Optional[int] = None,
    epsilon: Optional[float] = None,
    overhead: int = 2,
) -> int:
    """The block parameter: given directly, or derived from ``eps``."""
    if (k is None) == (epsilon is None):
        raise ConfigurationError("give exactly one of k and epsilon")
    if k is not None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return k
    return k_for_epsilon(epsilon, overhead=overhead)


def compact_ba_rounds(
    t: int, k: int, overhead: int = 2
) -> int:
    """Actual rounds to a decision: ``t + 1`` simulated rounds' worth."""
    return BlockSchedule(k, overhead).actual_rounds_for(t + 1)


def compact_ba_factory(
    config: SystemConfig,
    value_alphabet: Sequence[Value],
    default: Value,
    k: Optional[int] = None,
    epsilon: Optional[float] = None,
    overhead: int = 2,
    expose_full_state: bool = False,
):
    """A run_protocol factory for the Corollary 10 protocol.

    ``default`` is the value every correct processor adopts where the
    EIG resolution finds no strict majority; it must be common
    knowledge (any fixed element of ``V`` works).
    """
    block_parameter = resolve_k(config, k=k, epsilon=epsilon, overhead=overhead)
    rule = make_eig_decision_rule(
        config.t, default=default, alphabet=value_alphabet
    )
    return compact_factory(
        k=block_parameter,
        value_alphabet=value_alphabet,
        decision_rule=rule,
        horizon=config.t + 1,
        overhead=overhead,
        expose_full_state=expose_full_state,
    )


def run_compact_byzantine_agreement(
    config: SystemConfig,
    inputs,
    value_alphabet: Sequence[Value],
    k: Optional[int] = None,
    epsilon: Optional[float] = None,
    overhead: int = 2,
    adversary: Optional[Adversary] = None,
    default: Optional[Value] = None,
    seed: int = 0,
    record_trace: bool = False,
    expose_full_state: bool = False,
    meter_adversary: bool = False,
    scheduler: Optional[str] = None,
) -> ExecutionResult:
    """Run one execution of the Corollary 10 protocol, fully metered."""
    if default is None:
        default = sorted(value_alphabet, key=repr)[0]
    block_parameter = resolve_k(config, k=k, epsilon=epsilon, overhead=overhead)
    factory = compact_ba_factory(
        config,
        value_alphabet,
        default=default,
        k=block_parameter,
        overhead=overhead,
        expose_full_state=expose_full_state,
    )
    deadline = compact_ba_rounds(config.t, block_parameter, overhead)
    return run_protocol(
        factory,
        config,
        inputs,
        adversary=adversary,
        max_rounds=deadline + 1,
        sizer=compact_sizer(config, len(set(value_alphabet))),
        is_null=payload_is_null,
        seed=seed,
        record_trace=record_trace,
        meter_adversary=meter_adversary,
        scheduler=scheduler,
    )
