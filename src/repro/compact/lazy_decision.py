"""Polynomial-space decision evaluation on compressed states.

Resilience: ``n >= 3t + 1``, inherited from the compact protocol and
the EIG decision rule it evaluates.

The paper concedes a limitation: "A complete reconstruction of the
local state of processors in a full-information protocol requires
exponential space and time.  It is straightforward to devise an
efficient data representation that requires only a polynomial amount
of space; however, the question of how much time is required to reach
a decision remains open."

This module is that straightforward representation made concrete, plus
an observation that resolves the *time* question for the paper's own
corollary: the EIG Byzantine decision rule only ever reads leaves at
**distinct-label** relay chains — `n * (n-1) * ... * (n-t)` of them —
never the full `n^(t+1)` leaf set.  Reading one leaf of
``FULL_STATE = phi_b(CORE)`` does not require expanding anything: a
leaf address can be *pushed through the compression*, descending into
``CORE`` and, each time a scalar index `x` is met, continuing the
descent inside the agreed array ``OUT[b][x]`` at boundary ``b - 1``
(substitutivity makes this exact).  Each leaf read costs ``O(t + k)``
dictionary hops, so the whole decision runs in time polynomial in the
number of distinct chains — no exponential expansion ever happens.

:func:`full_state_leaf` is the lazy reader; :func:`lazy_eig_decision`
is the EIG rule running on top of it.  Tests assert equality with the
eager path (`tests/compact/test_lazy_decision.py`), and the ablation
benchmark measures the node-count gap.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from repro.compact.expansion import ExpansionState
from repro.errors import ProtocolViolation
from repro.types import BOTTOM, ProcessId, Value, is_bottom

Path = Tuple[ProcessId, ...]


def full_state_leaf(
    expansion: ExpansionState,
    boundary: int,
    core: Any,
    path: Path,
    _counter: Optional[list] = None,
) -> Any:
    """The leaf of ``phi_boundary(core)`` at ``path``, computed lazily.

    Never materialises the expansion: descends ``core`` component by
    component, and whenever the descent reaches a scalar index it
    re-roots inside the corresponding OUT entry one boundary down.  A
    scalar *value* is only legal once the path is exhausted (values
    are the leaves of the fully simulated state).

    Returns :data:`BOTTOM` where the expansion is (currently)
    undefined.  ``_counter``, when given a one-element list, counts
    structure-node visits for the ablation benchmark.
    """
    node = core
    level = boundary
    remaining = tuple(path)
    while True:
        if _counter is not None:
            _counter[0] += 1
        if is_bottom(node):
            return BOTTOM
        if isinstance(node, tuple):
            if not remaining:
                raise ProtocolViolation(
                    f"path {path} too short: stopped at an array level"
                )
            head = remaining[0]
            if not 1 <= head <= len(node):
                raise ProtocolViolation(
                    f"path component {head} outside 1..{len(node)}"
                )
            node = node[head - 1]
            remaining = remaining[1:]
            continue
        # A scalar.  At boundary 1 it is a value (or junk): the path
        # must be exhausted.  At higher boundaries it is an index to
        # chase through the OUT table.
        if level == 1:
            if remaining:
                raise ProtocolViolation(
                    f"path {path} too long: hit a value with "
                    f"{len(remaining)} components left"
                )
            return expansion.expand_scalar(1, node)
        if (
            not isinstance(node, int)
            or isinstance(node, bool)
            or not 1 <= node <= expansion.config.n
        ):
            return BOTTOM
        agreed = expansion.out(level, node)
        if is_bottom(agreed):
            return BOTTOM
        node = agreed
        level -= 1


def lazy_eig_decision(
    expansion: ExpansionState,
    boundary: int,
    core: Any,
    n: int,
    t: int,
    default: Value,
    alphabet: Optional[Sequence[Value]] = None,
    _counter: Optional[list] = None,
) -> Value:
    """The EIG Byzantine decision rule over a *compressed* state.

    Semantics identical to
    :func:`repro.fullinfo.decision.eig_byzantine_decision` applied to
    ``phi_boundary(core)`` (which must represent a depth-``t + 1``
    simulated state), but leaves are fetched lazily with
    :func:`full_state_leaf`, so the exponential array never exists.
    """
    depth = t + 1
    legal = frozenset(alphabet) if alphabet is not None else None

    def normalise(leaf: Any) -> Value:
        if is_bottom(leaf):
            return default
        if legal is None:
            return leaf
        try:
            return leaf if leaf in legal else default
        except TypeError:
            return default

    memo: Dict[Path, Value] = {}

    def resolve(path: Path) -> Value:
        if path in memo:
            return memo[path]
        if len(path) == depth:
            value = normalise(
                full_state_leaf(expansion, boundary, core, path, _counter)
            )
            memo[path] = value
            return value
        tally: Dict[Hashable, int] = {}
        children = 0
        for relayer in range(1, n + 1):
            if relayer in path:
                continue
            children += 1
            vote = resolve((relayer,) + path)
            tally[vote] = tally.get(vote, 0) + 1
        best_value, best_count = default, 0
        for vote, count in sorted(tally.items(), key=lambda item: repr(item[0])):
            if count > best_count:
                best_value, best_count = vote, count
        value = best_value if best_count * 2 > children else default
        memo[path] = value
        return value

    return resolve(())


def make_lazy_eig_decision_rule(
    t: int, default: Value, alphabet: Optional[Sequence[Value]] = None
):
    """A drop-in decision rule for :class:`CompactProcess` that never
    expands FULL_STATE.

    Unlike the eager rule it receives the *process*, not the state —
    use via :func:`attach_lazy_decision`.
    """

    def rule(process, simulated_round: int) -> Value:
        if simulated_round < t + 1:
            return BOTTOM
        return lazy_eig_decision(
            process.expansion,
            process.core_boundary,
            process.core,
            n=process.config.n,
            t=t,
            default=default,
            alphabet=alphabet,
        )

    return rule


class LazyDecisionAdapter:
    """Adapts a lazy rule to the ``(state, round, pid)`` interface.

    :class:`CompactProcess` hands decision rules the expanded
    FULL_STATE; to keep polynomial space the adapter is installed with
    a back-reference to the process and *ignores* the state argument —
    pair it with ``CompactProcess``'s ``decision_rule`` slot via
    :func:`attach_lazy_decision`, which also suppresses the eager
    expansion.
    """

    def __init__(self, process, t: int, default: Value,
                 alphabet: Optional[Sequence[Value]] = None):
        self._process = process
        self._t = t
        self._default = default
        self._alphabet = alphabet

    def __call__(self, state: Any, simulated_round: int, process_id) -> Value:
        if simulated_round < self._t + 1:
            return BOTTOM
        return lazy_eig_decision(
            self._process.expansion,
            self._process.core_boundary,
            self._process.core,
            n=self._process.config.n,
            t=self._t,
            default=self._default,
            alphabet=self._alphabet,
        )


def attach_lazy_decision(
    process,
    t: int,
    default: Value,
    alphabet: Optional[Sequence[Value]] = None,
) -> None:
    """Install a polynomial-space decision rule on a CompactProcess.

    Replaces the process's decision machinery so that at the horizon
    it resolves directly on the compressed state; ``full_state()`` is
    never called on the decision path.
    """
    adapter = LazyDecisionAdapter(process, t, default, alphabet)
    process._decision_rule = adapter
    process._horizon = t + 1

    # Suppress the eager expansion in _maybe_decide by routing the
    # state argument as BOTTOM-safe: CompactProcess calls
    # self._decision_rule(self.full_state(), ...), so we replace
    # _maybe_decide with a lazy-aware version.
    def _maybe_decide(round_number):
        if process.has_decided():
            return
        if not process.schedule.is_progress_round(round_number):
            return
        simulated = process.schedule.simul(round_number)
        if simulated < t + 1:
            return
        value = adapter(None, simulated, process.process_id)
        if value is not BOTTOM:
            process.decide(value, round_number)

    process._maybe_decide = _maybe_decide


def lazy_compact_ba_factory(
    value_alphabet: Sequence[Value],
    default: Value,
    k: int,
    overhead: int = 2,
):
    """Corollary 10's protocol with the polynomial-space decision path.

    A drop-in alternative to
    :func:`repro.compact.byzantine_agreement.compact_ba_factory` whose
    processes never materialise FULL_STATE.
    """
    from repro.compact.protocol import CompactProcess

    def factory(process_id, config, input_value):
        process = CompactProcess(
            process_id,
            config,
            input_value,
            k=k,
            value_alphabet=value_alphabet,
            overhead=overhead,
        )
        attach_lazy_decision(process, config.t, default, value_alphabet)
        return process

    return factory
