"""Round messages of the compact protocol, and their exact bit sizes.

Per Section 5.2, when ``x`` subprotocols are active every round
message is an ``(x + 1)``-tuple: one component for the main protocol
(a CORE array, or nothing in rounds with no main broadcast) and one
component per active avalanche batch (an ``n``-tuple of votes, each a
CORE-sized array, a bottom, or the 0-bit null marker).

The sizer charges exactly what Section 5.6 counts:

* CORE / vote arrays — per-leaf alphabet bits plus per-node framing
  (values for block 1, processor indices afterwards),
* null-coded votes — 0 bits,
* absent components — 0 bits.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Tuple

from repro.arrays.encoding import MessageSizer
from repro.avalanche.coding import is_null_message
from repro.types import BOTTOM, SystemConfig, is_bottom


@dataclasses.dataclass(frozen=True)
class CompactPayload:
    """One round's message: main CORE component plus batch votes.

    ``votes`` holds ``(boundary, vote_tuple)`` pairs for each active
    batch, in boundary order, so the structure is identical at all
    correct processors (they start the same subprotocols at the same
    rounds).
    """

    main: Any
    votes: Tuple[Tuple[int, Tuple[Any, ...]], ...] = ()

    def votes_for(self, boundary: int) -> Any:
        """The vote tuple for one batch, or bottom if absent."""
        for slot_boundary, vote_tuple in self.votes:
            if slot_boundary == boundary:
                return vote_tuple
        return BOTTOM


def compact_sizer(
    config: SystemConfig, value_alphabet_size: int
) -> Callable[[Any], int]:
    """Exact measured size, in bits, of a compact-protocol payload."""
    sizer = MessageSizer(value_alphabet_size, config.n)

    def measure_component(component: Any) -> int:
        if is_bottom(component) or is_null_message(component):
            return 0
        return sizer.measure(component)

    def measure(payload: Any) -> int:
        if not isinstance(payload, CompactPayload):
            return measure_component(payload)
        total = measure_component(payload.main)
        for _, vote_tuple in payload.votes:
            if isinstance(vote_tuple, tuple):
                total += sum(measure_component(vote) for vote in vote_tuple)
            else:
                total += measure_component(vote_tuple)
        return total

    return measure


def payload_is_null(payload: Any) -> bool:
    """Whether a payload carries no billable content at all."""
    if not isinstance(payload, CompactPayload):
        return is_bottom(payload) or is_null_message(payload)
    if not (is_bottom(payload.main) or is_null_message(payload.main)):
        return False
    for _, vote_tuple in payload.votes:
        if not isinstance(vote_tuple, tuple):
            if not (is_bottom(vote_tuple) or is_null_message(vote_tuple)):
                return False
            continue
        for vote in vote_tuple:
            if not (is_bottom(vote) or is_null_message(vote)):
                return False
    return True
