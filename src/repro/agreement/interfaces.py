"""A catalog of the library's agreement protocols.

One registry with uniform metadata — resilience requirement, round
bound, factory builder — so tools can enumerate protocols instead of
hard-coding them: the conformance sweep in
``tests/integration/test_catalog.py`` runs *every* catalogued protocol
against the full adversary gallery, and new protocols get that
coverage by registering.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from repro.types import SystemConfig, Value

#: Factories that deliberately stay out of :func:`catalog`, with the
#: reason.  The contract pass of :mod:`repro.statics.contracts`
#: requires every ``*_factory`` in the protocol packages to appear in
#: the catalog or here, so opting out of the conformance sweep is an
#: explicit, reviewed decision rather than an omission.
CATALOG_EXEMPT = {
    "approximate_factory": "approximate agreement converges on reals; "
    "the sweep's exact-agreement predicate does not apply",
    "avalanche_factory": "avalanche agreement (Protocol 2) is the "
    "paper's graded primitive with its own conditions in "
    "tests/avalanche; it does not solve the sweep's BA task",
    "compact_factory": "the canonical-form combinator: it wraps an "
    "inner automaton and has no protocol of its own to catalog",
    "crash_compact_factory": "benign/crash-model variant; the "
    "Byzantine adversary gallery is outside its fault model",
    "crusader_factory": "crusader agreement may decide 'suspect', a "
    "weaker task than the sweep's BA predicate",
    "early_stopping_factory": "crash-model consensus; the Byzantine "
    "gallery is outside its fault model",
    "firing_squad_factory": "solves simultaneous firing, not the "
    "decision task the sweep's predicate checks",
    "turpin_coan_factory": "a multivalued-to-binary reduction that "
    "needs an inner binary BA factory as argument; covered through "
    "the protocols it wraps",
    "weak_agreement_factory": "weak agreement permits disagreement "
    "when correct inputs differ; the BA predicate would reject it",
}


@dataclasses.dataclass(frozen=True)
class ProtocolEntry:
    """Metadata and constructor for one agreement protocol.

    ``build(config, alphabet, seed)`` returns a run_protocol factory;
    ``rounds(t)`` the decision-round bound (``None`` if randomized);
    ``supports(config)`` the resilience requirement; ``binary_only``
    marks protocols restricted to ``{0, 1}`` inputs.
    """

    name: str
    build: Callable[[SystemConfig, Sequence[Value], int], Callable]
    rounds: Callable[[int], Optional[int]]
    supports: Callable[[SystemConfig], bool]
    binary_only: bool = False
    randomized: bool = False
    notes: str = ""


def catalog() -> List[ProtocolEntry]:
    """All deterministic-interface agreement protocols, one entry each."""
    from repro.agreement.ben_or import ben_or_factory
    from repro.agreement.dolev_strong import (
        dolev_strong_factory,
        dolev_strong_rounds,
    )
    from repro.agreement.eig_agreement import eig_agreement_factory
    from repro.agreement.phase_king import (
        phase_king_factory,
        phase_king_rounds,
        phase_queen_factory,
        phase_queen_rounds,
    )
    from repro.agreement.srikanth_toueg import (
        st_agreement_factory,
        st_agreement_rounds,
    )
    from repro.compact.byzantine_agreement import (
        compact_ba_factory,
        compact_ba_rounds,
    )
    from repro.compact.lazy_decision import lazy_compact_ba_factory
    from repro.runtime.crypto import SignatureOracle

    def default_of(alphabet: Sequence[Value]) -> Value:
        return sorted(alphabet, key=repr)[0]

    def _auth_compact(config, alphabet):
        from repro.compact.authenticated_variant import (
            auth_compact_ba_factory,
        )

        return auth_compact_ba_factory(
            config, alphabet, SignatureOracle(), k=1,
            default=default_of(alphabet),
        )

    return [
        ProtocolEntry(
            name="exponential EIG",
            build=lambda config, alphabet, seed: eig_agreement_factory(
                config, alphabet, default=default_of(alphabet)
            ),
            rounds=lambda t: t + 1,
            supports=lambda config: config.requires_byzantine_quorum(),
            notes="Lamport et al. [13]: optimal rounds, exponential bits",
        ),
        ProtocolEntry(
            name="compact BA (k=1)",
            build=lambda config, alphabet, seed: compact_ba_factory(
                config, alphabet, default=default_of(alphabet), k=1
            ),
            rounds=lambda t: compact_ba_rounds(t, 1),
            supports=lambda config: config.requires_byzantine_quorum(),
            notes="Corollary 10 with the smallest messages",
        ),
        ProtocolEntry(
            name="compact BA (k=2)",
            build=lambda config, alphabet, seed: compact_ba_factory(
                config, alphabet, default=default_of(alphabet), k=2
            ),
            rounds=lambda t: compact_ba_rounds(t, 2),
            supports=lambda config: config.requires_byzantine_quorum(),
            notes="Corollary 10 at eps = 1",
        ),
        ProtocolEntry(
            name="compact BA (lazy, k=1)",
            build=lambda config, alphabet, seed: lazy_compact_ba_factory(
                alphabet, default=default_of(alphabet), k=1
            ),
            rounds=lambda t: compact_ba_rounds(t, 1),
            supports=lambda config: config.requires_byzantine_quorum(),
            notes="polynomial-space decision path",
        ),
        ProtocolEntry(
            name="compact BA (fast, k=1)",
            build=lambda config, alphabet, seed: compact_ba_factory(
                config, alphabet, default=default_of(alphabet), k=1,
                overhead=1,
            ),
            rounds=lambda t: compact_ba_rounds(t, 1, overhead=1),
            supports=lambda config: config.requires_fast_quorum(),
            notes="Section 5.6 variant, blocks of k + 1",
        ),
        ProtocolEntry(
            name="Srikanth-Toueg style",
            build=lambda config, alphabet, seed: st_agreement_factory(
                default=default_of(alphabet)
            ),
            rounds=lambda t: st_agreement_rounds(t),
            supports=lambda config: config.requires_byzantine_quorum(),
            notes="witnessed broadcasts, no signatures",
        ),
        ProtocolEntry(
            name="Phase King",
            build=lambda config, alphabet, seed: phase_king_factory(),
            rounds=lambda t: phase_king_rounds(t),
            supports=lambda config: config.requires_byzantine_quorum(),
            binary_only=True,
        ),
        ProtocolEntry(
            name="Phase Queen",
            build=lambda config, alphabet, seed: phase_queen_factory(),
            rounds=lambda t: phase_queen_rounds(t),
            supports=lambda config: config.requires_fast_quorum(),
            binary_only=True,
        ),
        ProtocolEntry(
            name="Ben-Or",
            build=lambda config, alphabet, seed: ben_or_factory(seed=seed),
            rounds=lambda t: None,
            supports=lambda config: config.requires_byzantine_quorum(),
            binary_only=True,
            randomized=True,
        ),
        ProtocolEntry(
            name="compact BA (authenticated, k=1)",
            build=lambda config, alphabet, seed: _auth_compact(
                config, alphabet
            ),
            rounds=lambda t: t + 1,
            supports=lambda config: config.requires_byzantine_quorum(),
            notes="authenticated model: zero overhead rounds; gallery "
            "strategies cannot sign, signing attacks are tested in "
            "tests/compact/test_authenticated_variant.py",
        ),
        ProtocolEntry(
            name="Dolev-Strong (authenticated)",
            build=lambda config, alphabet, seed: dolev_strong_factory(
                SignatureOracle(), default=default_of(alphabet)
            ),
            rounds=lambda t: dolev_strong_rounds(t),
            supports=lambda config: config.n >= 2 * config.t + 1,
            notes="fault-free and silent faults only under the generic "
            "adversary makers (other strategies need oracle wiring)",
        ),
    ]


def entries_supporting(config: SystemConfig) -> List[ProtocolEntry]:
    """Catalog entries runnable at ``config``."""
    return [entry for entry in catalog() if entry.supports(config)]
