"""Ben-Or's randomized agreement (synchronous form).

Protocol 2's informal description credits "previously known randomized
protocols" — Ben-Or [1] first among them — for its vote/adopt/decide
structure.  This module implements the synchronous version of that
ancestor, both as a baseline and to make the lineage testable: the
thresholds below are exactly avalanche agreement's, with a coin flip
where avalanche tolerates non-termination.  Resilience:
``n >= 3t + 1``, as for avalanche agreement itself.

Each phase is two rounds:

* **report** — broadcast the current value; a value seen more than
  ``(n + t) / 2`` times becomes this processor's *proposal* (two
  different proposals would need two quorums sharing a correct
  processor, so at most one value is proposed by correct processors);
* **propose** — broadcast the proposal (or none); on receiving
  ``2t + 1`` matching proposals decide that value, on ``t + 1`` adopt
  it, otherwise flip a fair coin.

Agreement: a first decision implies at least ``t + 1`` correct
proposers, so every correct processor adopts the value and the next
phase decides unanimously.  Validity: a unanimous start proposes and
decides in phase 1.  Termination is probabilistic (the adversary can
force coin flips), so executions are bounded by ``max_phases`` and the
tests drive the RNG.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.node import Process, broadcast
from repro.runtime.rng import derive_rng
from repro.types import ProcessId, Round, SystemConfig, Value

_NO_PROPOSAL = "no-proposal"

#: Protoflow message-size bound (COM rule family): each round sends
#: one bit (or the no-proposal marker).
MESSAGE_BOUNDS = {
    "BenOrProcess": "constant",
}


class BenOrProcess(Process):
    """Binary randomized agreement for ``n >= 3t + 1``."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        rng: np.random.Generator,
    ):
        super().__init__(process_id, config)
        if not config.requires_byzantine_quorum():
            raise ConfigurationError(
                f"Ben-Or needs n >= 3t+1; got n={config.n}, t={config.t}"
            )
        if input_value not in (0, 1) or isinstance(input_value, bool):
            raise ConfigurationError(f"Ben-Or is binary; got {input_value!r}")
        self.value = int(input_value)
        self._rng = rng
        self._proposal: Any = _NO_PROPOSAL

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        if round_number % 2 == 1:  # report round
            return broadcast(("report", self.value), self.config)
        return broadcast(("propose", self._proposal), self.config)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        config = self.config
        if round_number % 2 == 1:
            counts = [0, 0]
            for sender in config.process_ids:
                bit = self._parse(incoming[sender], "report")
                if bit is not None:
                    counts[bit] += 1
            quorum = (config.n + config.t) // 2 + 1
            self._proposal = _NO_PROPOSAL
            for bit in (0, 1):
                if counts[bit] >= quorum:
                    self._proposal = bit
        else:
            counts = [0, 0]
            for sender in config.process_ids:
                bit = self._parse(incoming[sender], "propose")
                if bit is not None:
                    counts[bit] += 1
            leader = 0 if counts[0] >= counts[1] else 1
            if counts[leader] >= 2 * config.t + 1:
                self.value = leader
                if not self.has_decided():
                    self.decide(leader, round_number)
            elif counts[leader] >= config.t + 1:
                self.value = leader
            elif not self.has_decided():
                self.value = int(self._rng.integers(0, 2))

    @staticmethod
    def _parse(message: Any, expected_tag: str) -> Optional[int]:
        if (
            isinstance(message, tuple)
            and len(message) == 2
            and message[0] == expected_tag
            and message[1] in (0, 1)
            and not isinstance(message[1], bool)
        ):
            return int(message[1])
        return None

    def snapshot(self) -> Any:
        return {"value": self.value, "decision": self.decision}


def ben_or_factory(seed: int = 0):
    """A run_protocol factory; each processor gets a derived coin stream."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> BenOrProcess:
        return BenOrProcess(
            process_id,
            config,
            input_value,
            rng=derive_rng(seed, "ben-or", process_id),
        )

    return factory
