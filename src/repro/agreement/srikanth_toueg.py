"""Srikanth–Toueg-style agreement: witnessed broadcasts, no signatures.

Section 5.6 compares the paper's protocol against "the protocol of
Srikanth and Toueg [18] (which uses the smallest number of rounds of
any previously known [communication-efficient] protocol and which only
requires that ``n >= 3t + 1``)": ``2t + 1`` rounds and
``O(t * n^2 * log n * log |V|)`` message bits.  Reference [18]'s text
is not available to this reproduction; this module implements its two
published ingredients from their standard descriptions:

**The broadcast primitive** (:class:`WitnessedBroadcast`) simulates
authenticated broadcast without cryptography.  An instance is keyed
``(broadcaster, payload, phase)``; phase ``k`` spans rounds ``2k - 1``
and ``2k``:

* the broadcaster sends an *init* in round ``2k - 1``;
* a processor that received exactly one init from that broadcaster for
  that phase sends an *echo* in round ``2k`` (two different inits are
  proof of a fault and kill the echo);
* a processor that has accumulated ``t + 1`` distinct echoes echoes
  too (it might never have seen the init);
* an instance is *accepted* once ``2t + 1`` distinct echoes have
  accumulated.

For ``n >= 3t + 1`` this gives the three authenticated-broadcast
properties — correctness (a correct broadcaster's message is accepted
by everyone within its phase), unforgeability (nothing is ever
accepted on behalf of a correct processor that did not broadcast), and
relay (an acceptance anywhere is an acceptance everywhere one round
later) — each covered directly by tests.

**The agreement protocol** on top is the signature-free Dolev–Strong
simulation: every processor broadcasts its input as source in phase 1;
a processor *extracts* value ``v`` for source ``s`` at the end of
phase ``j`` once it has accepted supporting broadcasts from ``j``
distinct processors including ``s``, and then confirms ``(s, v)`` with
its own broadcast in phase ``j + 1``.  After ``t + 1`` phases all
correct processors have extracted identical value sets per source
(the classic chain argument, with unforgeability standing in for
signatures); each source resolves to its unique extracted value or a
default, and the decision is the majority over the resolved vector.

Rounds: ``2(t + 1)`` — one more than the ``2t + 1`` the paper quotes
for [18] (their presentation merges a half-phase; we keep the clean
two-rounds-per-phase structure and report the measured count in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Set, Tuple

from repro.errors import ConfigurationError
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value

# Wire items.  A round message is a frozenset of these.
# ("init", broadcaster, payload, phase) / ("echo", broadcaster, payload, phase)
Item = Tuple[str, ProcessId, Any, int]

#: Protoflow taint: every received item passes the shape/legality
#: filter before entering echo bookkeeping (docs/statics.md).
TAINT_SANITIZERS = {
    "_well_formed": (
        "accepts only 4-tuples with a known kind, an in-range "
        "broadcaster id, a positive phase and a hashable payload; "
        "everything downstream counts distinct echoers against t+1 / "
        "2t+1 quorums"
    ),
}

#: Protoflow message-size bounds (COM rule family).
MESSAGE_BOUNDS = {
    "STAgreementProcess": (
        "linear",
        "a round message is the frozenset of this round's init/echo "
        "items: at most one init plus one echo per active broadcast "
        "instance, O(n) instances per phase",
    ),
}

# Primitive instance key.
InstanceKey = Tuple[ProcessId, Any, int]


def st_agreement_rounds(t: int) -> int:
    """Total rounds: ``t + 1`` phases of 2 rounds each."""
    return 2 * (t + 1)


class WitnessedBroadcast:
    """One processor's state for all broadcast-primitive instances."""

    def __init__(self, process_id: ProcessId, config: SystemConfig):
        self.process_id = process_id
        self.config = config
        # Instances this processor will init, keyed by phase.
        self._pending_inits: Dict[int, List[Tuple[Any,]]] = {}
        # (broadcaster, payload, phase) -> set of echoers seen.
        self._echoes: Dict[InstanceKey, Set[ProcessId]] = {}
        # Instances this processor has already echoed.
        self._echoed: Set[InstanceKey] = set()
        # Echo items to send next round.
        self._outgoing_echoes: Set[Item] = set()
        # Accepted instances, with the round of acceptance.
        self.accepted: Dict[InstanceKey, Round] = {}

    # -- sending ------------------------------------------------------------

    def schedule_broadcast(self, payload: Any, phase: int) -> None:
        """Arrange to init ``payload`` in ``phase`` (as broadcaster)."""
        self._pending_inits.setdefault(phase, []).append((payload,))

    def outgoing_items(self, round_number: Round) -> FrozenSet[Item]:
        items: Set[Item] = set(self._outgoing_echoes)
        self._outgoing_echoes = set()
        if round_number % 2 == 1:  # round 2k - 1 of phase k
            phase = (round_number + 1) // 2
            for (payload,) in self._pending_inits.pop(phase, []):
                items.add(("init", self.process_id, payload, phase))
                # The broadcaster echoes its own init immediately (it
                # trivially "received" it), keeping quorum arithmetic
                # uniform.
                key = (self.process_id, payload, phase)
                if key not in self._echoed:
                    self._echoed.add(key)
                    items.add(("echo", self.process_id, payload, phase))
        return frozenset(items)

    # -- receiving -------------------------------------------------------------

    def absorb(
        self, round_number: Round, items_by_sender: Dict[ProcessId, Any]
    ) -> List[InstanceKey]:
        """Process one round's items; returns newly accepted instances."""
        inits_seen: Dict[Tuple[ProcessId, int], Set[Any]] = {}
        for sender in self.config.process_ids:
            items = items_by_sender.get(sender, BOTTOM)
            if not isinstance(items, frozenset):
                continue
            for item in items:
                if not self._well_formed(item):
                    continue
                kind, broadcaster, payload, phase = item
                if kind == "init":
                    # An init is only valid from its broadcaster, in
                    # the first round of its phase.
                    if sender == broadcaster and round_number == 2 * phase - 1:
                        inits_seen.setdefault((broadcaster, phase), set()).add(
                            payload
                        )
                elif kind == "echo":
                    self._echoes.setdefault(
                        (broadcaster, payload, phase), set()
                    ).add(sender)

        # Echo rule 1: exactly one init from a broadcaster for a phase.
        for (broadcaster, phase), payloads in inits_seen.items():
            if len(payloads) != 1:
                continue  # conflicting inits: proof of fault, no echo
            (payload,) = payloads
            self._queue_echo((broadcaster, payload, phase))

        # Echo rule 2: t + 1 echoes persuade a processor to echo too.
        for key, echoers in self._echoes.items():
            if len(echoers) >= self.config.t + 1:
                self._queue_echo(key)

        # Acceptance at 2t + 1 echoes.
        newly_accepted: List[InstanceKey] = []
        for key, echoers in self._echoes.items():
            if key not in self.accepted and len(echoers) >= 2 * self.config.t + 1:
                self.accepted[key] = round_number
                newly_accepted.append(key)
        return newly_accepted

    def _queue_echo(self, key: InstanceKey) -> None:
        if key in self._echoed:
            return
        self._echoed.add(key)
        broadcaster, payload, phase = key
        self._outgoing_echoes.add(("echo", broadcaster, payload, phase))
        # Our own echo counts toward our own tally immediately.
        self._echoes.setdefault(key, set()).add(self.process_id)

    def _well_formed(self, item: Any) -> bool:
        if not (isinstance(item, tuple) and len(item) == 4):
            return False
        kind, broadcaster, payload, phase = item
        if kind not in ("init", "echo"):
            return False
        if not (
            isinstance(broadcaster, int)
            and not isinstance(broadcaster, bool)
            and 1 <= broadcaster <= self.config.n
        ):
            return False
        if not (isinstance(phase, int) and phase >= 1):
            return False
        try:
            hash(payload)
        except TypeError:
            return False
        return True


class STAgreementProcess(Process):
    """Polynomial agreement via witnessed broadcasts (the comparator)."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        default: Value = 0,
    ):
        super().__init__(process_id, config)
        if not config.requires_byzantine_quorum():
            raise ConfigurationError(
                f"ST agreement needs n >= 3t+1; got n={config.n}, t={config.t}"
            )
        self.default = default
        self.primitive = WitnessedBroadcast(process_id, config)
        # Source broadcasts carry ("val", source, value) payloads.
        self.primitive.schedule_broadcast(("val", process_id, input_value), 1)
        # (source, value) -> set of broadcasters accepted in support.
        self._support: Dict[Tuple[ProcessId, Value], Set[ProcessId]] = {}
        # (source, value) pairs extracted so far.
        self._extracted: Set[Tuple[ProcessId, Value]] = set()

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        return broadcast(self.primitive.outgoing_items(round_number), self.config)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        for key in self.primitive.absorb(round_number, incoming):
            broadcaster, payload, _ = key
            if (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == "val"
            ):
                _, source, value = payload
                if (
                    isinstance(source, int)
                    and not isinstance(source, bool)
                    and 1 <= source <= self.config.n
                ):
                    self._support.setdefault((source, value), set()).add(
                        broadcaster
                    )

        phase, step = (round_number - 1) // 2 + 1, (round_number - 1) % 2 + 1
        if step == 2:  # end of a phase: try to extract
            self._extract(phase)
        if round_number == st_agreement_rounds(self.config.t):
            self.decide(self._resolve(), round_number)

    def _extract(self, phase: int) -> None:
        for (source, value), supporters in self._support.items():
            if (source, value) in self._extracted:
                continue
            if source in supporters and len(supporters) >= phase:
                self._extracted.add((source, value))
                if phase + 1 <= self.config.t + 1:
                    self.primitive.schedule_broadcast(
                        ("val", source, value), phase + 1
                    )

    def _resolve(self) -> Value:
        per_source: Dict[ProcessId, List[Value]] = {}
        for source, value in self._extracted:
            per_source.setdefault(source, []).append(value)
        vector = []
        for source in self.config.process_ids:
            values = per_source.get(source, [])
            vector.append(values[0] if len(values) == 1 else self.default)
        tally: Dict[Value, int] = {}
        for value in vector:
            tally[value] = tally.get(value, 0) + 1
        return min(tally, key=lambda value: (-tally[value], repr(value)))

    def snapshot(self) -> Any:
        return {
            "extracted": sorted(self._extracted, key=repr),
            "decision": self.decision,
        }


def st_agreement_factory(default: Value = 0):
    """A run_protocol factory for the ST-style comparator."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> STAgreementProcess:
        return STAgreementProcess(process_id, config, input_value, default=default)

    return factory


def st_sizer(config: SystemConfig, value_alphabet_size: int):
    """Bit measure for ST traffic: per item, ids + value + phase tag.

    An item names a kind (2 bits), a broadcaster (``log n``), a phase
    (``log`` of the round bound) and a ``("val", source, value)``
    payload (``log n + log |V|``).
    """
    import math

    from repro.arrays.encoding import bits_for_alphabet

    index_bits = bits_for_alphabet(config.n)
    value_bits = bits_for_alphabet(value_alphabet_size)
    phase_bits = max(1, math.ceil(math.log2(config.t + 2)))
    item_bits = 2 + index_bits + phase_bits + index_bits + value_bits

    def measure(message: Any) -> int:
        if isinstance(message, frozenset):
            return item_bits * len(message)
        return 0

    return measure
