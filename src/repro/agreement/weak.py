"""Lamport's weak Byzantine agreement [12].

Weak agreement keeps the agreement condition but weakens validity: the
input must be decided only when *no processor is faulty* and all
inputs agree.  The classic construction: one exchange round to test
apparent unanimity, then ordinary binary agreement on the result.

* **round 1** — broadcast the input; set ``x = input`` if *all* ``n``
  received messages equal it (anything less is possible evidence of a
  fault), else ``x = default``;
* run a binary agreement protocol on ``bit = 1 if x == input else 0``
  … in the binary-input case it is simpler still: run the binary
  protocol directly on ``x`` (here inputs are required binary, so
  ``x`` is a legal binary input).

Agreement follows from the inner protocol's agreement.  Weak validity:
with no faults and unanimous inputs ``v``, every processor's round-1
view is all-``v``, so every ``x = v`` and the inner protocol's
validity forces a ``v`` decision.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.runtime.node import Process, broadcast
from repro.types import ProcessId, Round, SystemConfig, Value

BinaryFactory = Callable[[ProcessId, SystemConfig, int], Process]

#: Protoflow message-size bounds (COM rule family).
MESSAGE_BOUNDS = {
    "WeakAgreementProcess": (
        "constant",
        "round 1 broadcasts the input value; later rounds relay the "
        "embedded binary process's payload, certified on its own class",
    ),
}


class WeakAgreementProcess(Process):
    """Binary weak agreement wrapping a binary agreement protocol."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        binary_factory: BinaryFactory,
        default: int = 0,
    ):
        super().__init__(process_id, config)
        if input_value not in (0, 1) or isinstance(input_value, bool):
            raise ConfigurationError(
                f"weak agreement here is binary; got {input_value!r}"
            )
        self.input_value = int(input_value)
        self.default = default
        self._binary_factory = binary_factory
        self._inner: Optional[Process] = None

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        if round_number == 1:
            return broadcast(self.input_value, self.config)
        return self._inner.outgoing(round_number - 1)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        if round_number == 1:
            unanimous = all(
                incoming[sender] == self.input_value
                for sender in self.config.process_ids
            )
            x = self.input_value if unanimous else self.default
            self._inner = self._binary_factory(self.process_id, self.config, x)
            return
        self._inner.receive(round_number - 1, incoming)
        if self._inner.has_decided() and not self.has_decided():
            self.decide(self._inner.decision, round_number)

    def snapshot(self) -> Any:
        return {"decision": self.decision}


def weak_agreement_factory(binary_factory: BinaryFactory, default: int = 0):
    """A run_protocol factory for weak agreement."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> WeakAgreementProcess:
        return WeakAgreementProcess(
            process_id,
            config,
            input_value,
            binary_factory=binary_factory,
            default=default,
        )

    return factory
