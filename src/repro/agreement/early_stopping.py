"""Early-stopping crash consensus: ``min(f + 2, t + 1)`` rounds.

The benign-model companion to the paper's round-count story (Dolev,
Reischuk and Strong showed the ``min(f + 2, t + 1)`` bound, with ``f``
the number of faults that *actually occur*): a protocol tuned to ``t``
worst-case faults should not pay for them when the execution is
benign.  The compact crash variant decides in exactly ``t + 1`` rounds
(experiment E8); this protocol decides in 2 rounds when nothing
crashes at all.

**Protocol** (flooding with failure discovery), for crash faults:

* every round, broadcast the set of values seen so far;
* track ``heard(r)`` — the senders whose round-``r`` message arrived.
  Under crash faults the heard set only ever shrinks;
* decide ``min`` of the value set at the end of round ``r >= 2`` if
  ``heard(r) = heard(r - 1)`` (a *quiet* round: no failure became
  visible), or unconditionally at round ``t + 1``;
* keep broadcasting after deciding (late deciders still need input).

Why a quiet round suffices: hiding a value from processor ``p`` for
one more round costs one crash *visible to p* — the hider was heard in
the previous round (it was alive and broadcasting) and missing from
this one.  So if ``p`` sees no new failure, ``p``'s set is already
complete (contains every value any live processor holds), every later
set everywhere is a subset of what ``p`` flooded onward, and all
decisions equal ``min`` of the same complete set.  With ``f`` crashes
there are at most ``f`` shrink-steps, so some round in ``2..f + 2`` is
quiet for everyone.

This rule is **crash-only**: under message *omission* the heard set
can shrink and regrow, which would fake quiet rounds — the protocol
refuses nothing at runtime (it cannot see the model) but the guarantee
is stated, and the test suite exercises exactly the crash model.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional

from repro.errors import ConfigurationError
from repro.runtime.node import Process, broadcast
from repro.types import ProcessId, Round, SystemConfig, Value


#: Protoflow message-size bound (COM rule family): the flooded set
#: holds at most one input value per processor, so |values| <= n even
#: though the analysis sees an accumulating union.
MESSAGE_BOUNDS = {
    "EarlyStoppingCrashProcess": (
        "linear",
        "the value set only unions in received inputs; with n inputs "
        "in the system it holds at most n elements, not a round history",
    ),
}


def early_stopping_rounds(f: int, t: int) -> int:
    """The decision-round bound for ``f`` actual crashes."""
    return min(f + 2, t + 1)


class EarlyStoppingCrashProcess(Process):
    """One processor of early-stopping crash consensus."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
    ):
        super().__init__(process_id, config)
        if config.t < 1 and config.n < 1:
            raise ConfigurationError("empty system")
        try:
            hash(input_value)
        except TypeError:
            raise ConfigurationError(
                f"values must be hashable, got {input_value!r}"
            )
        self.values = frozenset({input_value})
        self._previous_heard: Optional[FrozenSet[ProcessId]] = None

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        return broadcast(self.values, self.config)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        heard = frozenset(
            sender
            for sender in self.config.process_ids
            if isinstance(incoming[sender], frozenset)
        )
        merged = set(self.values)
        for sender in heard:
            merged |= incoming[sender]
        self.values = frozenset(merged)

        quiet = (
            self._previous_heard is not None and heard == self._previous_heard
        )
        self._previous_heard = heard
        if not self.has_decided() and (
            quiet or round_number >= self.config.t + 1
        ):
            self.decide(min(self.values, key=repr), round_number)

    def snapshot(self) -> Any:
        return {
            "values": set(self.values),
            "heard": set(self._previous_heard or ()),
            "decision": self.decision,
        }


def early_stopping_factory():
    """A run_protocol factory for early-stopping crash consensus."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> EarlyStoppingCrashProcess:
        return EarlyStoppingCrashProcess(process_id, config, input_value)

    return factory
