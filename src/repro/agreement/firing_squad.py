"""The Byzantine firing squad problem (named in the paper's intro).

Processors receive external GO stimuli at arbitrary (possibly
different, possibly no) rounds; correct processors must eventually
**fire**, and must do so *simultaneously*:

* **simultaneity** — all correct processors fire in the same round;
* **safety** — if no correct processor ever receives GO, no correct
  processor fires;
* **liveness** — if every correct processor receives GO by round
  ``r``, all fire by round ``r + t + 1``.

**Construction** (the staggered-instances reduction of Burns–Lynch):
starting at every round ``r``, all processors run one fresh instance
of a *simultaneous-decision* Byzantine agreement protocol — here the
``t + 1``-round EIG protocol, whose correct processors all decide in
the same round — with input "have I received GO by round ``r``?".
Instance start rounds are common knowledge (every round has one), so
no agreement about starting is needed; everyone fires at the decision
round of the earliest instance that decides 1.

The conditions follow from Byzantine agreement's own: agreement makes
the firing instance common; EIG's fixed decision round makes firing
simultaneous; validity gives safety (all-0 inputs decide 0) and
liveness (the instance of the first round where every correct
processor has GO decides 1 by validity... decided value 1 requires at
least one correct GO — see :meth:`FiringSquadProcess._decide_fire` —
so a fire implies a stimulus, and unanimous GO forces one).

Cost: at most ``t + 2`` concurrent instances matter before the first
possible fire; we cap concurrency at ``t + 2`` live instances and
retire decided ones, keeping each round's traffic bounded.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.arrays.value_array import validate_array
from repro.errors import ConfigurationError
from repro.fullinfo.decision import eig_byzantine_decision
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom


#: Protoflow message-size bound (COM rule family).
MESSAGE_BOUNDS = {
    "FiringSquadProcess": (
        "history",
        "each live EIG instance relays its depth-r view; instances "
        "retire after t + 1 rounds, so at most t + 1 run at once and "
        "each is bounded by the EIG horizon, not an unbounded history",
    ),
}


class _AgreementInstance:
    """One staggered EIG agreement instance, binary, simultaneous."""

    def __init__(self, config: SystemConfig, start_round: Round, my_input: int):
        self.config = config
        self.start_round = start_round
        self.state: Any = my_input
        self.rounds_done = 0
        self.decision: Optional[int] = None

    def outgoing(self) -> Any:
        return self.state

    def receive(self, messages: Dict[ProcessId, Any]) -> None:
        expected_depth = self.rounds_done
        components = []
        for sender in self.config.process_ids:
            message = messages.get(sender, BOTTOM)
            if is_bottom(message) or not validate_array(
                message,
                self.config.n,
                depth=expected_depth,
                leaf_ok=lambda leaf: leaf in (0, 1),
            ):
                message = self.state
            components.append(message)
        self.state = tuple(components)
        self.rounds_done += 1
        if self.rounds_done == self.config.t + 1:
            self.decision = eig_byzantine_decision(
                self.state,
                self.config.n,
                self.config.t,
                process_id=0,
                default=0,
                alphabet=[0, 1],
            )


class FiringSquadProcess(Process):
    """One processor of the Byzantine firing squad.

    The input value is the round at which this processor's external GO
    arrives (:data:`BOTTOM` for "never").  "Firing" is modelled as the
    irrevocable decision ``"FIRE"``.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
    ):
        super().__init__(process_id, config)
        if not config.requires_byzantine_quorum():
            raise ConfigurationError(
                f"firing squad needs n >= 3t+1; got n={config.n}, t={config.t}"
            )
        if not (is_bottom(input_value) or (
            isinstance(input_value, int)
            and not isinstance(input_value, bool)
            and input_value >= 1
        )):
            raise ConfigurationError(
                f"input must be a GO round >= 1 or BOTTOM, got {input_value!r}"
            )
        self.go_round = input_value
        self._instances: Dict[Round, _AgreementInstance] = {}

    # -- stimuli ---------------------------------------------------------

    def _go_received_by(self, round_number: Round) -> bool:
        return not is_bottom(self.go_round) and self.go_round <= round_number

    # -- round structure -----------------------------------------------------

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        # Open this round's instance (its first send happens now).
        self._instances[round_number] = _AgreementInstance(
            self.config,
            start_round=round_number,
            my_input=1 if self._go_received_by(round_number) else 0,
        )
        payload = {
            start: instance.outgoing()
            for start, instance in self._instances.items()
        }
        return broadcast(payload, self.config)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        for start in sorted(self._instances):
            instance = self._instances[start]
            messages = {}
            for sender in self.config.process_ids:
                payload = incoming.get(sender, BOTTOM)
                if isinstance(payload, dict):
                    messages[sender] = payload.get(start, BOTTOM)
                else:
                    messages[sender] = BOTTOM
            instance.receive(messages)
        self._decide_fire(round_number)
        # Retire decided instances; once fired, everything can go.
        for start in list(self._instances):
            if self._instances[start].decision is not None:
                del self._instances[start]
        if self.has_decided():
            self._instances.clear()

    def _decide_fire(self, round_number: Round) -> None:
        if self.has_decided():
            return
        for start in sorted(self._instances):
            instance = self._instances[start]
            if instance.decision == 1:
                self.decide("FIRE", round_number)
                return

    def snapshot(self) -> Any:
        return {
            "go_round": self.go_round,
            "live_instances": sorted(self._instances),
            "decision": self.decision,
        }


def firing_squad_factory():
    """A run_protocol factory for the Byzantine firing squad."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> FiringSquadProcess:
        return FiringSquadProcess(process_id, config, input_value)

    return factory


def fire_deadline(go_round: Round, t: int) -> Round:
    """Latest firing round when all correct GOs arrive by ``go_round``:
    that round's instance decides after its ``t + 1`` exchanges."""
    return go_round + t + 1 - 1  # instance at r finishes at r + t
