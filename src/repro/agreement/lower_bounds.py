"""Known lower bounds the paper measures itself against.

* ``t + 1`` rounds for deterministic Byzantine agreement (Fischer and
  Lynch [10]) — the bound Corollary 10 approaches within a factor
  arbitrarily close to 1,
* ``3t + 1`` processors for Byzantine agreement and for avalanche
  agreement (Section 4: "straightforward to use standard techniques
  like those of Fischer, Lynch, and Merritt [11]"),
* ``4t + 1`` processors for the one-round-consensus avalanche variant
  (Section 4: "if ``n <= 4t`` there is no solution to this variant").

These are formulas, not proofs; the tests use them to assert every
protocol in the library sits on the correct side of each bound, and
the benchmarks plot protocols against them.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def min_rounds_for_agreement(t: int) -> int:
    """Fischer–Lynch: ``t + 1`` rounds in the worst case."""
    if t < 0:
        raise ConfigurationError(f"t must be non-negative, got {t}")
    return t + 1


def min_processors_for_agreement(t: int) -> int:
    """Pease–Shostak–Lamport / Fischer–Lynch–Merritt: ``3t + 1``."""
    if t < 0:
        raise ConfigurationError(f"t must be non-negative, got {t}")
    return 3 * t + 1


def min_processors_for_fast_avalanche(t: int) -> int:
    """Section 4's variant bound: ``4t + 1``."""
    if t < 0:
        raise ConfigurationError(f"t must be non-negative, got {t}")
    return 4 * t + 1
