"""Agreement protocols: the paper's comparators and applications.

* :mod:`repro.agreement.eig_agreement` — the exponential-communication
  ``t + 1``-round Byzantine agreement protocol (Lamport et al. [13]),
  both as runnable processes and as the automaton the canonical-form
  transformation consumes,
* :mod:`repro.agreement.srikanth_toueg` — the witnessed-broadcast
  simulation of authenticated protocols [18] and the Dolev–Strong-
  style polynomial agreement built on it (the paper's round-count
  comparator),
* :mod:`repro.agreement.phase_king` — Phase King (``n >= 3t + 1``,
  3 rounds/phase) and Phase Queen (``n >= 4t + 1``, 2 rounds/phase):
  simple polynomial-communication baselines,
* :mod:`repro.agreement.ben_or` — randomized binary agreement; the
  vote/adopt/decide skeleton avalanche agreement borrows from,
* :mod:`repro.agreement.turpin_coan` — the multivalued-to-binary
  reduction [19] the paper cites as an orthogonal optimisation,
* :mod:`repro.agreement.crusader` — Dolev's crusader agreement [5],
  discussed in Section 4's comparison with avalanche agreement,
* :mod:`repro.agreement.weak` — Lamport's weak agreement [12],
* :mod:`repro.agreement.approximate` — synchronous approximate
  agreement (the paper's "greater applicability" example, Fekete [9]),
* :mod:`repro.agreement.firing_squad` — the Byzantine firing squad
  problem named in the paper's introduction,
* :mod:`repro.agreement.dolev_strong` — authenticated agreement over
  the ideal signature oracle (the [18] context),
* :mod:`repro.agreement.early_stopping` — crash consensus in
  ``min(f + 2, t + 1)`` rounds,
* :mod:`repro.agreement.interfaces` — the protocol catalog backing the
  conformance sweep,
* :mod:`repro.agreement.lower_bounds` — the known bounds the paper
  measures itself against.
"""

from repro.agreement.eig_agreement import (
    ExponentialAgreementAutomaton,
    eig_agreement_factory,
    run_eig_agreement,
)
from repro.agreement.phase_king import (
    PhaseKingProcess,
    PhaseQueenProcess,
    phase_king_factory,
    phase_king_rounds,
    phase_queen_factory,
    phase_queen_rounds,
)
from repro.agreement.srikanth_toueg import (
    STAgreementProcess,
    WitnessedBroadcast,
    st_agreement_factory,
    st_agreement_rounds,
)
from repro.agreement.ben_or import BenOrProcess, ben_or_factory
from repro.agreement.turpin_coan import TurpinCoanProcess, turpin_coan_factory
from repro.agreement.crusader import CrusaderProcess, SENDER_FAULTY, crusader_factory
from repro.agreement.weak import WeakAgreementProcess, weak_agreement_factory
from repro.agreement.approximate import (
    ApproximateAgreementAutomaton,
    ApproximateProcess,
    approximate_factory,
    rounds_for_precision,
)
from repro.agreement.dolev_strong import (
    DolevStrongProcess,
    dolev_strong_factory,
    dolev_strong_rounds,
)
from repro.agreement.early_stopping import (
    EarlyStoppingCrashProcess,
    early_stopping_factory,
    early_stopping_rounds,
)
from repro.agreement.interfaces import ProtocolEntry, catalog, entries_supporting
from repro.agreement.firing_squad import (
    FiringSquadProcess,
    fire_deadline,
    firing_squad_factory,
)
from repro.agreement.lower_bounds import (
    min_processors_for_agreement,
    min_processors_for_fast_avalanche,
    min_rounds_for_agreement,
)

__all__ = [
    "ExponentialAgreementAutomaton",
    "eig_agreement_factory",
    "run_eig_agreement",
    "PhaseKingProcess",
    "PhaseQueenProcess",
    "phase_king_factory",
    "phase_king_rounds",
    "phase_queen_factory",
    "phase_queen_rounds",
    "STAgreementProcess",
    "WitnessedBroadcast",
    "st_agreement_factory",
    "st_agreement_rounds",
    "BenOrProcess",
    "ben_or_factory",
    "TurpinCoanProcess",
    "turpin_coan_factory",
    "CrusaderProcess",
    "SENDER_FAULTY",
    "crusader_factory",
    "WeakAgreementProcess",
    "weak_agreement_factory",
    "ApproximateAgreementAutomaton",
    "ApproximateProcess",
    "approximate_factory",
    "rounds_for_precision",
    "DolevStrongProcess",
    "dolev_strong_factory",
    "dolev_strong_rounds",
    "EarlyStoppingCrashProcess",
    "early_stopping_factory",
    "early_stopping_rounds",
    "ProtocolEntry",
    "catalog",
    "entries_supporting",
    "FiringSquadProcess",
    "fire_deadline",
    "firing_squad_factory",
    "min_processors_for_agreement",
    "min_processors_for_fast_avalanche",
    "min_rounds_for_agreement",
]
