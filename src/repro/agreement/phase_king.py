"""Phase King and Phase Queen: simple polynomial baselines.

Two classic rotating-coordinator protocols (Berman, Garay, Perry) for
*binary* Byzantine agreement, included as the polynomial-communication
comparison class the paper positions itself in.  Both run ``t + 1``
phases so that at least one phase has a correct coordinator.

**Phase King** (``n >= 3t + 1``, 3 rounds per phase):

1. broadcast your value; count votes per bit;
2. broadcast a *proposal* for any bit you saw ``n - t`` times (else a
   null proposal); adopt a bit proposed at least ``t + 1`` times (at
   most one bit can be proposed by any correct processor, since two
   ``n - t`` vote quorums would share a correct voter);
3. the phase's king broadcasts its value; processors whose adopted bit
   had fewer than ``n - t`` proposals defer to the king.

Persistence: a unanimous correct population stays unanimous through
any phase (everyone proposes the bit, sees ``>= n - t`` proposals, and
ignores the king).  A phase with a correct king ends in unanimity:
either some correct processor saw ``n - t`` proposals for ``b`` — then
at least ``n - 2t >= t + 1`` correct proposed ``b``, so *every*
correct processor (the king included) adopted ``b`` — or nobody was
strong and everyone takes the king's bit.

**Phase Queen** (``n >= 4t + 1``, 2 rounds per phase):

1. broadcast your value; prefer the majority bit, marking yourself
   *strong* if it reached ``n - t`` votes;
2. the queen broadcasts its preference; weak processors adopt it.

If any correct processor is strong on ``b``, then at least ``n - 2t``
correct processors hold ``b``, so every correct processor counts at
least ``n - 2t > 2t`` votes for ``b`` and at most ``2t`` for the other
bit — the queen's preference is ``b`` too, and the phase ends
unanimous.  ``n > 4t`` is exactly what makes ``n - 2t > 2t``.

Both protocols decide after their last phase; rounds are ``3(t + 1)``
and ``2(t + 1)`` respectively, with ``O(1)``-bit messages.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.runtime.node import Process, broadcast
from repro.types import ProcessId, Round, SystemConfig, Value

# The round-2 "no proposal" marker of Phase King.
_NO_PROPOSAL = "no-proposal"


def _as_bit(message: Any) -> Optional[int]:
    """Parse a received payload as a bit; None for anything else."""
    if message in (0, 1) and not isinstance(message, bool):
        return int(message)
    return None


#: Protoflow taint: every reception is parsed through the bit filter.
TAINT_SANITIZERS = {
    "_as_bit": (
        "accepts only the literals 0 and 1 (bools excluded); every "
        "vote count and king/queen proposal downstream is over parsed "
        "bits compared against n - t / n/2 + t quorums"
    ),
}

#: Protoflow message-size bounds (COM rule family).
MESSAGE_BOUNDS = {
    "PhaseKingProcess": "constant",
    "PhaseQueenProcess": "constant",
}


def phase_king_rounds(t: int) -> int:
    """Total rounds: ``t + 1`` phases of 3 rounds."""
    return 3 * (t + 1)


def phase_queen_rounds(t: int) -> int:
    """Total rounds: ``t + 1`` phases of 2 rounds."""
    return 2 * (t + 1)


class PhaseKingProcess(Process):
    """Binary Phase King for ``n >= 3t + 1``."""

    def __init__(
        self, process_id: ProcessId, config: SystemConfig, input_value: Value
    ):
        super().__init__(process_id, config)
        if not config.requires_byzantine_quorum():
            raise ConfigurationError(
                f"phase king needs n >= 3t+1; got n={config.n}, t={config.t}"
            )
        bit = _as_bit(input_value)
        if bit is None:
            raise ConfigurationError(f"phase king is binary; got {input_value!r}")
        self.value = bit
        self._proposal_support = 0

    # Rounds are numbered 1..3(t+1); phase p occupies rounds 3p-2..3p
    # and its king is processor p.

    def _phase(self, round_number: Round) -> int:
        return (round_number - 1) // 3 + 1

    def _step(self, round_number: Round) -> int:
        return (round_number - 1) % 3 + 1

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        step = self._step(round_number)
        if step == 1:
            return broadcast(self.value, self.config)
        if step == 2:
            return broadcast(self._proposal, self.config)
        king = self._phase(round_number)
        if king == self.process_id:
            return broadcast(self.value, self.config)
        return {}

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        config = self.config
        step = self._step(round_number)
        if step == 1:
            counts = [0, 0]
            for sender in config.process_ids:
                bit = _as_bit(incoming[sender])
                if bit is not None:
                    counts[bit] += 1
            strong = [bit for bit in (0, 1) if counts[bit] >= config.n - config.t]
            self._proposal = strong[0] if strong else _NO_PROPOSAL
        elif step == 2:
            proposals = [0, 0]
            for sender in config.process_ids:
                bit = _as_bit(incoming[sender])
                if bit is not None:
                    proposals[bit] += 1
            # At most one bit can reach t+1 correct proposers.
            leader = 0 if proposals[0] >= proposals[1] else 1
            if proposals[leader] >= config.t + 1:
                self.value = leader
            self._proposal_support = proposals[leader]
        else:
            king = self._phase(round_number)
            king_bit = _as_bit(incoming[king])
            if self._proposal_support < config.n - config.t:
                self.value = king_bit if king_bit is not None else 0
            if self._phase(round_number) == config.t + 1:
                self.decide(self.value, round_number)

    def snapshot(self) -> Any:
        return {"value": self.value, "decision": self.decision}


class PhaseQueenProcess(Process):
    """Binary Phase Queen for ``n >= 4t + 1``."""

    def __init__(
        self, process_id: ProcessId, config: SystemConfig, input_value: Value
    ):
        super().__init__(process_id, config)
        if not config.requires_fast_quorum():
            raise ConfigurationError(
                f"phase queen needs n >= 4t+1; got n={config.n}, t={config.t}"
            )
        bit = _as_bit(input_value)
        if bit is None:
            raise ConfigurationError(f"phase queen is binary; got {input_value!r}")
        self.value = bit
        self._strong = False

    def _phase(self, round_number: Round) -> int:
        return (round_number - 1) // 2 + 1

    def _step(self, round_number: Round) -> int:
        return (round_number - 1) % 2 + 1

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        if self._step(round_number) == 1:
            return broadcast(self.value, self.config)
        queen = self._phase(round_number)
        if queen == self.process_id:
            return broadcast(self.value, self.config)
        return {}

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        config = self.config
        if self._step(round_number) == 1:
            counts = [0, 0]
            for sender in config.process_ids:
                bit = _as_bit(incoming[sender])
                if bit is not None:
                    counts[bit] += 1
            self.value = 0 if counts[0] >= counts[1] else 1
            self._strong = counts[self.value] >= config.n - config.t
        else:
            queen = self._phase(round_number)
            queen_bit = _as_bit(incoming[queen])
            if not self._strong:
                self.value = queen_bit if queen_bit is not None else 0
            if queen == config.t + 1:
                self.decide(self.value, round_number)

    def snapshot(self) -> Any:
        return {"value": self.value, "decision": self.decision}


def phase_king_factory():
    """A run_protocol factory for Phase King."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> PhaseKingProcess:
        return PhaseKingProcess(process_id, config, input_value)

    return factory


def phase_queen_factory():
    """A run_protocol factory for Phase Queen."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> PhaseQueenProcess:
        return PhaseQueenProcess(process_id, config, input_value)

    return factory
