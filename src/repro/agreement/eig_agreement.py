"""The exponential-communication Byzantine agreement baseline.

Corollary 10 leans on "known (t + 1)-round exponential-message
Byzantine agreement protocols, for example the protocol of Lamport et
al. [13]".  Here that protocol is the composition of Protocol 1 (full
information for ``t + 1`` rounds) with the EIG resolution rule of
:func:`repro.fullinfo.decision.eig_byzantine_decision` — exactly the
"decision rule to apply to the final state" the corollary's proof
invokes, running on real exchanged states instead of reconstructed
ones.  Resilience: ``n >= 3t + 1``, the bound of Lamport et al. that
every EIG-resolved protocol here inherits.

Two forms are provided:

* runnable processes (:func:`eig_agreement_factory` /
  :func:`run_eig_agreement`) for measuring the exponential
  communication the compact protocol eliminates (experiment E3),
* :class:`ExponentialAgreementAutomaton`, the same protocol in the
  Section 3.1 formalism — the canonical input to
  :func:`repro.core.transform.canonical_form`, closing the loop:
  transforming it reproduces Corollary 10's protocol.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.adversary.base import Adversary
from repro.fullinfo.decision import make_eig_decision_rule
from repro.fullinfo.protocol import (
    FullInformationAutomaton,
    full_information_factory,
    full_information_sizer,
)
from repro.runtime.engine import ExecutionResult, run_protocol
from repro.types import SystemConfig, Value


def eig_agreement_factory(
    config: SystemConfig,
    value_alphabet: Sequence[Value],
    default: Optional[Value] = None,
    intern: bool = True,
):
    """A run_protocol factory for the exponential baseline."""
    if default is None:
        default = sorted(value_alphabet, key=repr)[0]
    rule = make_eig_decision_rule(
        config.t, default=default, alphabet=value_alphabet
    )
    return full_information_factory(
        value_alphabet=value_alphabet,
        decision_rule=rule,
        horizon=config.t + 1,
        intern=intern,
    )


def run_eig_agreement(
    config: SystemConfig,
    inputs,
    value_alphabet: Sequence[Value],
    adversary: Optional[Adversary] = None,
    default: Optional[Value] = None,
    seed: int = 0,
    record_trace: bool = False,
    intern: bool = True,
) -> ExecutionResult:
    """Run the ``t + 1``-round exponential protocol, fully metered."""
    factory = eig_agreement_factory(
        config, value_alphabet, default=default, intern=intern
    )
    return run_protocol(
        factory,
        config,
        inputs,
        adversary=adversary,
        max_rounds=config.t + 2,
        sizer=full_information_sizer(len(set(value_alphabet)), config.n),
        seed=seed,
        record_trace=record_trace,
    )


#: Protoflow message-size bound (COM rule family): this automaton *is*
#: the exponential baseline the compact transform repairs.
MESSAGE_BOUNDS = {
    "ExponentialAgreementAutomaton": (
        "history",
        "inherits Protocol 1's full-information relay; the "
        "exponential growth is the comparison point for Theorem 5's "
        "compact simulation",
    ),
}


class ExponentialAgreementAutomaton(FullInformationAutomaton):
    """The exponential protocol as an automaton, for the transform.

    ``rounds_to_decide`` is ``t + 1``, so
    :func:`repro.core.transform.canonical_form` knows the horizon
    without being told.
    """

    def __init__(
        self,
        config: SystemConfig,
        input_values: Sequence[Value],
        default: Optional[Value] = None,
    ):
        if default is None:
            default = sorted(input_values, key=repr)[0]
        rule = make_eig_decision_rule(
            config.t, default=default, alphabet=input_values
        )
        super().__init__(
            config,
            input_values,
            decision_rule=rule,
            horizon=config.t + 1,
        )

    @property
    def rounds_to_decide(self) -> int:
        return self.config.t + 1
