"""Dolev's crusader agreement [5].

Section 4 contrasts avalanche agreement with crusader agreement: "the
two problems are incomparable.  Crusader agreement is a harder problem
in that all executions of a protocol must be deciding executions.
Avalanche agreement is harder in that the answer, if it exists, must
be unique" — a crusader execution may split correct processors between
*one* common value and the verdict "the sender is faulty".

Single-source, two rounds, ``n >= 3t + 1``:

* **round 1** — the source broadcasts its value;
* **round 2** — every processor echoes what it received; a processor
  decides a value echoed at least ``n - t`` times, else decides
  :data:`SENDER_FAULTY`.

If the source is correct every processor sees ``n - t`` echoes of its
value.  Two correct processors can never decide *different values*:
two ``n - t`` echo quorums would overlap in ``n - 2t >= t + 1``
processors, one of them correct and echoing consistently.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom


#: Protoflow taint: values from ``incoming`` must pass a legality
#: filter before they reach state or a payload (docs/statics.md).
TAINT_SANITIZERS = {
    "_scalar": (
        "rejects BOTTOM, tuples and unhashable junk; what remains is a "
        "hashable scalar the quorum count in round 2 can only decide "
        "when n - t processors echoed it"
    ),
}

#: Protoflow message-size bound (COM rule family).
MESSAGE_BOUNDS = {
    "CrusaderProcess": "constant",
}


class _SenderFaulty:
    """The crusader verdict "the sender is faulty"."""

    _instance = None

    def __new__(cls) -> "_SenderFaulty":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "SENDER_FAULTY"

    def __reduce__(self):
        return (_SenderFaulty, ())


SENDER_FAULTY = _SenderFaulty()


class CrusaderProcess(Process):
    """One processor of two-round crusader agreement."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        source: ProcessId,
    ):
        super().__init__(process_id, config)
        if not config.requires_byzantine_quorum():
            raise ConfigurationError(
                f"crusader agreement needs n >= 3t+1; got n={config.n}, "
                f"t={config.t}"
            )
        self.source = source
        self.input_value = input_value
        self._received: Value = BOTTOM

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        if round_number == 1:
            if self.process_id == self.source:
                return broadcast(self.input_value, self.config)
            return {}
        return broadcast(self._received, self.config)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        if round_number == 1:
            message = incoming[self.source]
            if self._scalar(message):
                self._received = message
            return
        if round_number != 2:
            return
        counts: Dict[Value, int] = {}
        for sender in self.config.process_ids:
            echo = incoming[sender]
            if self._scalar(echo):
                counts[echo] = counts.get(echo, 0) + 1
        for value, count in counts.items():
            if count >= self.config.n - self.config.t:
                self.decide(value, round_number)
                return
        self.decide(SENDER_FAULTY, round_number)

    @staticmethod
    def _scalar(value: Any) -> bool:
        if is_bottom(value) or isinstance(value, tuple):
            return False
        try:
            hash(value)
        except TypeError:
            return False
        return True

    def snapshot(self) -> Any:
        return {"received": self._received, "decision": self.decision}


def crusader_factory(source: ProcessId):
    """A run_protocol factory for crusader agreement with ``source``."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> CrusaderProcess:
        return CrusaderProcess(process_id, config, input_value, source=source)

    return factory
