"""Synchronous approximate agreement (Fekete [9], Dolev et al. [7]).

The paper names approximate agreement twice: Fekete's protocol as an
example of exponential communication the transformation can repair
(Section 5.6: "our technique is more general and may therefore have
greater applicability, e.g., reducing the communications cost of the
approximate agreement protocol of Fekete"), and the problem itself as
one of the consensus problems the formalism covers.

Correct processors hold numeric inputs and must decide values that are
(a) within ``epsilon`` of one another and (b) inside the range of the
correct inputs.  One exchange round with the *fault-tolerant
midpoint* reduction achieves both with a per-round convergence factor
of 1/2 for ``n >= 3t + 1``:

* broadcast the current value; substitute your own value for missing
  or malformed receptions (so the multiset always has ``n`` entries);
* sort, discard the ``t`` lowest and ``t`` highest (with at most ``t``
  faulty entries, what survives lies inside the correct range);
* move to the midpoint of the surviving range.

Two correct processors' trimmed ranges overlap (they share at least
``n - 2t`` correct entries), so their midpoints differ by at most half
the correct spread — running ``ceil(log2(range / epsilon))`` rounds
lands everyone within ``epsilon``.

Provided both as runnable processes over floats
(:class:`ApproximateProcess`) and, for the canonical-form transform
(which needs a finite alphabet), as an automaton over a fixed-point
grid (:class:`ApproximateAgreementAutomaton`) whose rounding adds at
most one grid step to the final spread.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.automaton import AutomatonProtocol
from repro.errors import ConfigurationError
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value


#: Protoflow taint: every reception is coerced through the numeric
#: legality filter (or replaced by the processor's own value).
TAINT_SANITIZERS = {
    "_as_number": (
        "accepts only finite ints/floats (bools excluded); anything "
        "else is replaced by the receiver's own current value before "
        "the trimmed midpoint"
    ),
    "_trimmed_midpoint": (
        "discards the t lowest and t highest entries; with at most t "
        "faulty values the surviving range lies inside the correct "
        "inputs' range"
    ),
}

#: Protoflow message-size bounds (COM rule family).
MESSAGE_BOUNDS = {
    "ApproximateProcess": "constant",
    "ApproximateAgreementAutomaton": "constant",
}


def rounds_for_precision(initial_range: float, epsilon: float) -> int:
    """Rounds of halving needed to shrink ``initial_range`` to ``epsilon``."""
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    if initial_range <= epsilon:
        return 1
    return max(1, math.ceil(math.log2(initial_range / epsilon)))


def _trimmed_midpoint(values: List[float], t: int) -> float:
    """The fault-tolerant midpoint: trim ``t`` from each end, then mid."""
    ordered = sorted(values)
    trimmed = ordered[t : len(ordered) - t] if t else ordered
    return (trimmed[0] + trimmed[-1]) / 2.0


def _as_number(message: Any) -> Optional[float]:
    if isinstance(message, bool):
        return None
    if isinstance(message, (int, float)) and math.isfinite(message):
        return float(message)
    return None


class ApproximateProcess(Process):
    """Float-valued approximate agreement for ``n >= 3t + 1``."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        rounds: int,
    ):
        super().__init__(process_id, config)
        if not config.requires_byzantine_quorum():
            raise ConfigurationError(
                f"approximate agreement needs n >= 3t+1; got n={config.n}, "
                f"t={config.t}"
            )
        number = _as_number(input_value)
        if number is None:
            raise ConfigurationError(f"numeric input required; got {input_value!r}")
        self.value = number
        self.rounds = rounds

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        return broadcast(self.value, self.config)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        values = []
        for sender in self.config.process_ids:
            number = _as_number(incoming[sender])
            values.append(number if number is not None else self.value)
        self.value = _trimmed_midpoint(values, self.config.t)
        if round_number >= self.rounds:
            self.decide(self.value, round_number)

    def snapshot(self) -> Any:
        return {"value": self.value, "decision": self.decision}


def approximate_factory(rounds: int):
    """A run_protocol factory for float approximate agreement."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> ApproximateProcess:
        return ApproximateProcess(process_id, config, input_value, rounds=rounds)

    return factory


class ApproximateAgreementAutomaton(AutomatonProtocol):
    """Approximate agreement over a fixed-point grid, for the transform.

    The alphabet is ``{low, low + step, ..., high}`` represented as
    integers scaled by ``1 / step``.  Transitions compute the
    fault-tolerant midpoint and round it back to the grid; rounding
    introduces at most ``step / 2`` of drift per round, so the final
    spread is at most ``epsilon + step``.
    """

    def __init__(
        self,
        config: SystemConfig,
        grid: Sequence[int],
        rounds: int,
    ):
        ordered = sorted(set(int(value) for value in grid))
        super().__init__(config, ordered)
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        self._grid = ordered
        self._rounds = rounds

    @property
    def rounds_to_decide(self) -> int:
        return self._rounds

    # States after round 0 are ("approx", round, value) triples so the
    # automaton itself knows when its horizon has passed; the initial
    # state is the bare input value, as the formalism requires.

    def message(self, sender: ProcessId, receiver: ProcessId, state: Any) -> Any:
        return state

    def transition(self, process_id: ProcessId, messages: Tuple[Any, ...]) -> Any:
        own_round, own_value = self._parse(messages[process_id - 1])
        if own_value is None:
            own_round, own_value = 0, self._grid[0]
        values = []
        for message in messages:
            _, value = self._parse(message)
            values.append(float(value) if value is not None else float(own_value))
        midpoint = _trimmed_midpoint(values, self.config.t)
        return ("approx", own_round + 1, self._snap(midpoint))

    def decision(self, process_id: ProcessId, state: Any) -> Value:
        round_number, value = self._parse(state)
        if value is None or round_number < self._rounds:
            return BOTTOM
        return value

    def _parse(self, state: Any) -> Tuple[int, Optional[int]]:
        """(round, value) from a state or message; (0, None) if junk."""
        if self._on_grid(state):
            return 0, int(state)
        if (
            isinstance(state, tuple)
            and len(state) == 3
            and state[0] == "approx"
            and isinstance(state[1], int)
            and not isinstance(state[1], bool)
            and state[1] >= 1
            and self._on_grid(state[2])
        ):
            return state[1], int(state[2])
        return 0, None

    def _on_grid(self, value: Any) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and value in self.input_values
        )

    def _snap(self, value: float) -> int:
        return min(self._grid, key=lambda point: (abs(point - value), point))
