"""The Turpin–Coan multivalued-to-binary reduction [19].

Section 5.6 cites this (with Perry [16]) as an optimisation with "a
similar (and small) impact on both protocols" being compared — it
turns any binary Byzantine agreement protocol into a multivalued one
at the cost of two extra rounds, for ``n >= 3t + 1``:

* **round 1** — broadcast the (multivalued) input; remember any value
  seen at least ``n - t`` times (at most one can exist);
* **round 2** — broadcast that candidate (or nothing); let ``g`` be
  the most frequent candidate received, ``c`` its count.  Every
  correct processor's non-null round-2 message carries the *same*
  value (two different ones would need two ``n - t`` round-1 quorums
  sharing a correct processor), so if ``c >= t + 1`` then ``g`` is
  that common value;
* run the binary protocol on ``b = 1 if c >= n - t else 0``; if it
  decides 1, decide ``g`` (the 1-decision implies some correct
  processor had ``c >= n - t``, hence everyone had
  ``c >= n - 2t >= t + 1`` and the same ``g``); otherwise decide the
  common default.

Validity: a unanimous input ``v`` makes every count ``n - t``, every
``b = 1``, and every ``g = v``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom

# Builds the embedded binary process from (process_id, config, bit).
BinaryFactory = Callable[[ProcessId, SystemConfig, int], Process]

#: Protoflow message-size bounds (COM rule family): two prefix rounds
#: carry one value each, then the embedded binary protocol's traffic.
MESSAGE_BOUNDS = {
    "TurpinCoanProcess": (
        "constant",
        "prefix rounds send a single value / vote; later rounds relay "
        "the embedded binary process's payload, certified on its own "
        "class",
    ),
}


class TurpinCoanProcess(Process):
    """Multivalued agreement wrapping a binary protocol."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        binary_factory: BinaryFactory,
        default: Value,
    ):
        super().__init__(process_id, config)
        if not config.requires_byzantine_quorum():
            raise ConfigurationError(
                f"Turpin-Coan needs n >= 3t+1; got n={config.n}, t={config.t}"
            )
        self.input_value = input_value
        self.default = default
        self._binary_factory = binary_factory
        self._candidate_broadcast: Value = BOTTOM
        self._candidate: Value = BOTTOM
        self._inner: Optional[Process] = None

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        if round_number == 1:
            return broadcast(self.input_value, self.config)
        if round_number == 2:
            return broadcast(self._candidate_broadcast, self.config)
        return self._inner.outgoing(round_number - 2)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        config = self.config
        if round_number == 1:
            counts: Dict[Value, int] = {}
            for sender in config.process_ids:
                value = incoming[sender]
                if self._scalar(value):
                    counts[value] = counts.get(value, 0) + 1
            self._candidate_broadcast = BOTTOM
            for value, count in counts.items():
                if count >= config.n - config.t:
                    self._candidate_broadcast = value
        elif round_number == 2:
            counts = {}
            for sender in config.process_ids:
                value = incoming[sender]
                if self._scalar(value):
                    counts[value] = counts.get(value, 0) + 1
            if counts:
                best = min(
                    counts, key=lambda value: (-counts[value], repr(value))
                )
                best_count = counts[best]
            else:
                best, best_count = BOTTOM, 0
            if best_count >= config.t + 1:
                self._candidate = best
            bit = 1 if best_count >= config.n - config.t else 0
            self._inner = self._binary_factory(self.process_id, config, bit)
        else:
            self._inner.receive(round_number - 2, incoming)
            if self._inner.has_decided() and not self.has_decided():
                if self._inner.decision == 1 and not is_bottom(self._candidate):
                    self.decide(self._candidate, round_number)
                else:
                    self.decide(self.default, round_number)

    @staticmethod
    def _scalar(value: Any) -> bool:
        if is_bottom(value) or isinstance(value, tuple):
            return False
        try:
            hash(value)
        except TypeError:
            return False
        return True

    def snapshot(self) -> Any:
        return {"candidate": self._candidate, "decision": self.decision}


def turpin_coan_factory(binary_factory: BinaryFactory, default: Value):
    """A run_protocol factory for the reduction."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> TurpinCoanProcess:
        return TurpinCoanProcess(
            process_id,
            config,
            input_value,
            binary_factory=binary_factory,
            default=default,
        )

    return factory
