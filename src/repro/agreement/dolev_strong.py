"""Dolev–Strong authenticated agreement (the [18] context).

The protocol Srikanth–Toueg's simulation is usually applied to: with
unforgeable signatures, Byzantine broadcast takes ``t + 1`` rounds for
*any* ``n > t + 1`` — no ``3t + 1`` bound — with polynomial
communication.  Reference [18]'s theorem ("simulating authenticated
broadcasts") removes the signatures at a cost of one extra round per
phase; comparing this module against
:mod:`repro.agreement.srikanth_toueg` exhibits exactly that 2x round
relationship.  The catalog registers it at ``n >= 2t + 1``: the
protocol itself needs only ``n > t + 1``, but the shared conformance
sweep counts decisions of correct processors against quorums of
faulty ones, and a majority of correct processors keeps its generic
adversary gallery meaningful.

**The broadcast protocol** (source ``s``, value set ``V``):

* round 1 — ``s`` sends ``(v, [sig_s(v)])`` to everyone;
* round ``r`` — a processor holding a *valid chain* for ``v`` of ``r``
  signatures from ``r`` distinct processors starting with ``s`` (and
  not having relayed ``v`` before) adds ``v`` to its extracted set,
  appends its own signature and relays; each processor relays at most
  two distinct values (two are already proof the source is faulty);
* after round ``t + 1`` — decide the single extracted value, or the
  default if zero or several were extracted.

Agreement: if a correct processor extracts ``v`` at round ``r <= t``,
its relay hands everyone a valid ``r + 1``-chain; at round ``t + 1``,
a valid chain of ``t + 1`` signatures contains a correct signer whose
own earlier relay already informed everyone.  Validity: a correct
source signs only its input, and no chain for another value can exist
(unforgeability).

**Consensus** wrapper: everyone broadcasts as source in parallel;
decide the majority of the agreed vector (deterministic tie-break).
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.errors import ConfigurationError
from repro.runtime.crypto import SignatureOracle
from repro.runtime.node import Process, broadcast
from repro.types import ProcessId, Round, SystemConfig, Value

# A relayed claim: ("claim", source, value, (sig_1, ..., sig_r)).
# Signature i is by the chain's i-th signer over ("ds", source, value).


def dolev_strong_rounds(t: int) -> int:
    """``t + 1`` rounds, the authenticated-model optimum."""
    return t + 1


def _signed_payload(source: ProcessId, value: Value) -> Tuple:
    return ("ds", source, value)


#: Protoflow message-size bound (COM rule family).  Signature chains
#: are genuinely round-indexed, but their length is capped by the
#: protocol's t + 1 rounds, not by an unbounded history.
MESSAGE_BOUNDS = {
    "DolevStrongProcess": (
        "history",
        "a round-r relay carries r signatures by construction; the "
        "chain length is capped at t + 1 (dolev_strong_rounds), which "
        "is the authenticated-model optimum, not accidental growth",
    ),
}


class DolevStrongProcess(Process):
    """Authenticated consensus: n parallel Dolev–Strong broadcasts."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        oracle: SignatureOracle,
        default: Value = 0,
    ):
        super().__init__(process_id, config)
        # The broadcast primitive needs only n >= t + 2; the majority
        # step of the consensus wrapper needs a correct majority.
        if config.n < 2 * config.t + 1:
            raise ConfigurationError(
                f"Dolev-Strong consensus needs n >= 2t + 1; got "
                f"n={config.n}, t={config.t}"
            )
        self.oracle = oracle
        self.default = default
        self.input_value = input_value
        # (source, value) -> extracted?
        self._extracted: Set[Tuple[ProcessId, Value]] = set()
        # sources for which we've relayed 2 values already
        self._relays_per_source: Dict[ProcessId, int] = {}
        self._outbox: List[Any] = []
        # Own broadcast, queued for round 1.
        signature = oracle.sign(
            process_id, _signed_payload(process_id, input_value)
        )
        self._outbox.append(
            ("claim", process_id, input_value, (signature,))
        )
        self._extracted.add((process_id, input_value))
        self._relays_per_source[process_id] = 1

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        items, self._outbox = self._outbox, []
        return broadcast(tuple(items), self.config)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        for sender in self.config.process_ids:
            payload = incoming[sender]
            if not isinstance(payload, tuple):
                continue
            for item in payload:
                self._consider(item, round_number)
        if round_number == dolev_strong_rounds(self.config.t):
            self.decide(self._resolve(), round_number)

    # -- chain validation -----------------------------------------------------

    def _consider(self, item: Any, round_number: Round) -> None:
        if not (
            isinstance(item, tuple)
            and len(item) == 4
            and item[0] == "claim"
        ):
            return
        _, source, value, chain = item
        if (source, value) in self._extracted:
            return
        if not self._valid_chain(source, value, chain, round_number):
            return
        self._extracted.add((source, value))
        relays = self._relays_per_source.get(source, 0)
        if relays < 2 and round_number + 1 <= dolev_strong_rounds(self.config.t):
            self._relays_per_source[source] = relays + 1
            extended = tuple(chain) + (
                self.oracle.sign(
                    self.process_id, _signed_payload(source, value)
                ),
            )
            self._outbox.append(("claim", source, value, extended))

    def _valid_chain(
        self, source: Any, value: Any, chain: Any, round_number: Round
    ) -> bool:
        if not (
            isinstance(source, int)
            and not isinstance(source, bool)
            and 1 <= source <= self.config.n
        ):
            return False
        if not isinstance(chain, tuple) or len(chain) != round_number:
            return False
        payload = _signed_payload(source, value)
        signers = []
        for signature in chain:
            signer = getattr(signature, "signer", None)
            if signer is None or not self.oracle.verify(
                signature, signer, payload
            ):
                return False
            signers.append(signer)
        if signers[0] != source:
            return False
        if len(set(signers)) != len(signers):
            return False
        if self.process_id in signers:
            return False  # we never signed this; a replay of our sig
        return True

    # -- decision ----------------------------------------------------------------

    def _resolve(self) -> Value:
        per_source: Dict[ProcessId, List[Value]] = {}
        for source, value in self._extracted:
            per_source.setdefault(source, []).append(value)
        vector = []
        for source in self.config.process_ids:
            values = per_source.get(source, [])
            vector.append(values[0] if len(values) == 1 else self.default)
        tally: Dict[Value, int] = {}
        for value in vector:
            tally[value] = tally.get(value, 0) + 1
        return min(tally, key=lambda value: (-tally[value], repr(value)))

    def snapshot(self) -> Any:
        return {
            "extracted": sorted(self._extracted, key=repr),
            "decision": self.decision,
        }


def dolev_strong_factory(oracle: SignatureOracle, default: Value = 0):
    """A run_protocol factory; all processes share one oracle."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> DolevStrongProcess:
        return DolevStrongProcess(
            process_id, config, input_value, oracle=oracle, default=default
        )

    return factory
